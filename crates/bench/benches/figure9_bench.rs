//! Criterion bench for the Figure 9 "Time (s)" column: full analysis time
//! per benchmark (parse → translate → infer → solve), mirroring the
//! paper's per-program measurements.

use ffisafe_bench::corpus::generate;
use ffisafe_bench::figure9::analyze_benchmark;
use ffisafe_bench::harness::{BenchmarkId, Criterion};
use ffisafe_bench::spec::paper_benchmarks;
use ffisafe_bench::{criterion_group, criterion_main};
use ffisafe_core::AnalysisOptions;
use std::hint::black_box;

fn bench_figure9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9");
    group.sample_size(10);
    for spec in paper_benchmarks() {
        // generation is excluded from the measurement, like the paper's
        // compile-time measurements exclude writing the code
        let bench = generate(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &bench, |b, bench| {
            b.iter(|| {
                let report = analyze_benchmark(black_box(bench), AnalysisOptions::default());
                black_box(report.diagnostics.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure9);
criterion_main!(benches);
