//! Microbenchmark of the flow-sensitive dataflow: the Figure 2/8 tag
//! dispatch analyzed with and without flow-sensitivity (ablation E5), and
//! a deep-branching stress case for the label fixpoint.

use ffisafe_bench::harness::Criterion;
use ffisafe_bench::{criterion_group, criterion_main};
use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus};
use std::hint::black_box;

const FIG2_ML: &str = r#"
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"#;

const FIG2_C: &str = r#"
value ml_examine(value x) {
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: return Val_int(10);
        case 1: return Val_int(11);
        }
    } else {
        switch (Tag_val(x)) {
        case 0: return Field(x, 0);
        case 1: return Field(x, 1);
        }
    }
    return Val_int(0);
}
"#;

fn deep_branches(n: usize) -> String {
    // n sequential if/else diamonds over one value: stresses env joins
    let mut c = String::from("value ml_deep(value x, value flags) {\n    long acc = 0;\n");
    for i in 0..n {
        c.push_str(&format!(
            "    if (Int_val(flags) == {i}) {{ acc = acc + {i}; }} else {{ acc = acc - 1; }}\n"
        ));
    }
    c.push_str("    return Val_int(acc);\n}\n");
    c
}

fn analyze(ml: &str, c: &str, options: AnalysisOptions) -> usize {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let report = AnalysisService::new()
        .analyze(&AnalysisRequest::new(corpus).options(options))
        .expect("in-memory corpus analysis cannot fail");
    report.diagnostics.len()
}

fn bench_dataflow(c: &mut Criterion) {
    c.bench_function("dataflow/figure2_flow_sensitive", |b| {
        b.iter(|| black_box(analyze(FIG2_ML, FIG2_C, AnalysisOptions::default())))
    });
    c.bench_function("dataflow/figure2_flow_insensitive", |b| {
        b.iter(|| {
            black_box(analyze(
                FIG2_ML,
                FIG2_C,
                AnalysisOptions {
                    flow_sensitive: false,
                    gc_effects: true,
                    ..AnalysisOptions::default()
                },
            ))
        })
    });
    let deep_c = deep_branches(64);
    let deep_ml = r#"external deep : int -> int -> int = "ml_deep""#;
    c.bench_function("dataflow/64_branch_diamonds", |b| {
        b.iter(|| black_box(analyze(deep_ml, &deep_c, AnalysisOptions::default())))
    });
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
