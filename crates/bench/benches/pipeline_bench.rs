//! `cargo bench --bench pipeline_bench` — measures the analysis pipeline
//! at `jobs = 1` vs `jobs = available parallelism` over the Figure 9
//! corpus plus a 12k-LoC scaling workload, adds a cold-vs-warm cache pair
//! per workload, and writes the machine-readable `BENCH_pipeline.json` at
//! the workspace root.

use ffisafe_bench::pipeline_bench;

fn main() {
    let wide = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let widths: Vec<usize> = if wide > 1 { vec![1, wide] } else { vec![1, 8] };
    eprintln!("pipeline bench: jobs widths {widths:?} + cold/warm cache pair");
    let result = pipeline_bench::run(&widths);
    for row in &result.rows {
        eprintln!(
            "{:>16} jobs={:<2} cache={:<4} {:>7.3}s (infer {:>7.3}s) {:>5} fns {:>6} passes {:>4} diags",
            row.name,
            row.jobs,
            row.cache,
            row.seconds,
            row.infer_seconds,
            row.functions,
            row.passes,
            row.diagnostics
        );
    }
    eprintln!("overall speedup: {:.2}x (host cores: {wide})", result.overall_speedup());
    eprintln!("work/critical-path bound: {:.2}x", result.work_speedup_bound());
    eprintln!("warm-over-cold speedup: {:.2}x", result.warm_speedup());
    let regressions = result.warm_regressions();
    if regressions.is_empty() {
        eprintln!("warm run strictly faster than cold on every workload");
    } else {
        eprintln!("WARNING: warm run not faster on: {}", regressions.join(", "));
    }

    let json = result.to_json();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_pipeline.json");
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    eprintln!("wrote {}", path.display());
}
