//! Scaling sweep (DESIGN.md E6): analysis time vs. C LoC on defect-free
//! synthetic glue, 100 → 6000 lines. Supports the shape of Figure 9's
//! time column (roughly linear in code size, dominated by C-side
//! inference).

use ffisafe_bench::figure9::analyze_benchmark;
use ffisafe_bench::harness::{BenchmarkId, Criterion, Throughput};
use ffisafe_bench::runner::scaling_benchmark;
use ffisafe_bench::{criterion_group, criterion_main};
use ffisafe_core::AnalysisOptions;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for loc in [100usize, 300, 1000, 3000, 6000] {
        let bench = scaling_benchmark(loc);
        group.throughput(Throughput::Elements(loc as u64));
        group.bench_with_input(BenchmarkId::from_parameter(loc), &bench, |b, bench| {
            b.iter(|| {
                let report = analyze_benchmark(black_box(bench), AnalysisOptions::default());
                black_box(report.diagnostics.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
