//! Microbenchmark of the unification engine: representational types with
//! open rows growing against declared sums, recursive types, and GC
//! effect reachability.

use ffisafe_bench::harness::Criterion;
use ffisafe_bench::{criterion_group, criterion_main};
use ffisafe_types::TypeTable;
use std::hint::black_box;

/// Builds a declared sum with `nullary` constants and `products` non-nullary
/// constructors of `fields` int fields each.
fn declared_sum(
    tt: &mut TypeTable,
    nullary: u32,
    products: usize,
    fields: usize,
) -> ffisafe_types::MtId {
    let prods: Vec<_> = (0..products)
        .map(|_| {
            let fs: Vec<_> = (0..fields)
                .map(|_| {
                    let p = tt.psi_top();
                    let s = tt.sigma_nil();
                    tt.mt_rep(p, s)
                })
                .collect();
            tt.pi_closed(&fs)
        })
        .collect();
    let sigma = tt.sigma_closed(&prods);
    let psi = tt.psi_count(nullary);
    tt.mt_rep(psi, sigma)
}

fn bench_unify(c: &mut Criterion) {
    c.bench_function("unify/open_rows_vs_declared_sum", |b| {
        b.iter(|| {
            let mut tt = TypeTable::new();
            let declared = declared_sum(&mut tt, 3, 8, 4);
            // observed: open row touched at every tag
            let sigma = tt.fresh_sigma();
            let psi = tt.fresh_psi();
            let observed = tt.mt_rep(psi, sigma);
            for tag in 0..8 {
                let pi = tt.sigma_at(sigma, tag).unwrap();
                for f in 0..4 {
                    let _ = tt.pi_at(pi, f).unwrap();
                }
            }
            tt.unify_mt(observed, declared).unwrap();
            black_box(tt.node_count())
        })
    });

    c.bench_function("unify/recursive_list_types", |b| {
        b.iter(|| {
            let mut tt = TypeTable::new();
            let mk = |tt: &mut TypeTable| {
                let elem = tt.mt_abstract("string", true);
                let knot = tt.fresh_mt();
                let pi = tt.pi_closed(&[elem, knot]);
                let sigma = tt.sigma_closed(&[pi]);
                let psi = tt.psi_count(1);
                let list = tt.mt_rep(psi, sigma);
                tt.link_mt(knot, list);
                list
            };
            let a = mk(&mut tt);
            let bb = mk(&mut tt);
            tt.unify_mt(a, bb).unwrap();
            black_box(tt.find_mt(a))
        })
    });

    c.bench_function("unify/gc_reachability_1000_edges", |b| {
        b.iter(|| {
            let mut tt = TypeTable::new();
            let mut cs = ffisafe_types::ConstraintSet::new();
            let root = tt.gc_gc();
            let mut prev = root;
            for _ in 0..1000 {
                let next = tt.fresh_gc();
                cs.add_gc_edge(prev, next);
                prev = next;
            }
            let sol = cs.solve_gc(&mut tt);
            black_box(sol.may_gc(&tt, prev))
        })
    });
}

criterion_group!(benches, bench_unify);
criterion_main!(benches);
