//! Deterministic synthesis of benchmark glue libraries with ground truth.
//!
//! For each [`BenchSpec`] the generator emits an OCaml file and a C file:
//! first the seeded defect functions (§5.2 patterns), then correct filler
//! glue until the C line target is met, then OCaml filler until the OCaml
//! line target is met. Every emitted function records its C line range and
//! seed kind, so the Figure 9 scorer can classify each diagnostic as a
//! true positive, false positive or unexpected against ground truth.

use crate::spec::BenchSpec;
use ffisafe_support::rng::Rng64 as StdRng;

/// The §5.2 defect taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedKind {
    /// `Val_int` where `Int_val` belongs (or vice versa) — error.
    ValIntConfusion,
    /// Unregistered live heap pointer across a GC call — error.
    MissingRegistration,
    /// `CAMLparam` without `CAMLreturn` — error.
    RegisterNoRelease,
    /// Option block treated as its payload — error.
    OptionMisuse,
    /// Other OCaml/C type disagreement — error.
    TypeConfusion,
    /// Trailing `unit` parameter — warning.
    TrailingUnit,
    /// Polymorphic `'a` pinned concrete — warning.
    PolyAbuse,
    /// Polymorphic-variant use — correct code, expected false positive.
    PolyVariantFp,
    /// Disguised pointer arithmetic — correct code, expected false
    /// positive.
    DisguisedPtrFp,
    /// Unknown offset — imprecision.
    UnknownOffsetImp,
    /// Global `value` — imprecision.
    GlobalValueImp,
    /// Function-pointer call — imprecision.
    FnPtrImp,
}

impl SeedKind {
    /// Whether this seed is a real defect (true positive when reported).
    pub fn is_true_defect(self) -> bool {
        matches!(
            self,
            SeedKind::ValIntConfusion
                | SeedKind::MissingRegistration
                | SeedKind::RegisterNoRelease
                | SeedKind::OptionMisuse
                | SeedKind::TypeConfusion
        )
    }

    /// Whether this seed is a questionable practice (warning).
    pub fn is_warning(self) -> bool {
        matches!(self, SeedKind::TrailingUnit | SeedKind::PolyAbuse)
    }

    /// Whether this seed is correct code that the analysis cannot handle
    /// (expected false positive).
    pub fn is_false_positive_source(self) -> bool {
        matches!(self, SeedKind::PolyVariantFp | SeedKind::DisguisedPtrFp)
    }

    /// Whether this seed triggers an imprecision report.
    pub fn is_imprecision(self) -> bool {
        matches!(self, SeedKind::UnknownOffsetImp | SeedKind::GlobalValueImp | SeedKind::FnPtrImp)
    }
}

/// Ground truth for one emitted C function (or global).
#[derive(Clone, Debug)]
pub struct GenFunc {
    /// C function name.
    pub name: String,
    /// 1-based inclusive line range in the C file.
    pub c_lines: (u32, u32),
    /// 1-based inclusive line range in the OCaml file (its externals).
    pub ml_lines: (u32, u32),
    /// The seeded defect, if any.
    pub seed: Option<SeedKind>,
}

/// A synthesized benchmark.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name.
    pub name: String,
    /// OCaml source.
    pub ml_source: String,
    /// C source.
    pub c_source: String,
    /// Ground truth per emitted construct.
    pub funcs: Vec<GenFunc>,
}

impl Benchmark {
    /// Finds the ground-truth entry covering a C line.
    pub fn func_at_c_line(&self, line: u32) -> Option<&GenFunc> {
        self.funcs.iter().find(|f| f.c_lines.0 <= line && line <= f.c_lines.1)
    }

    /// Finds the ground-truth entry covering an OCaml line.
    pub fn func_at_ml_line(&self, line: u32) -> Option<&GenFunc> {
        self.funcs.iter().find(|f| f.ml_lines.0 <= line && line <= f.ml_lines.1)
    }
}

/// Generates the benchmark for `spec` (deterministic in `spec.rng_seed`).
pub fn generate(spec: &BenchSpec) -> Benchmark {
    let mut g = Gen::new(spec);
    g.emit_header();
    // seeded defects first, in a stable order
    for _ in 0..spec.seeds.val_int_confusion {
        g.seed_val_int_confusion();
    }
    for _ in 0..spec.seeds.missing_registration {
        g.seed_missing_registration();
    }
    for _ in 0..spec.seeds.register_no_release {
        g.seed_register_no_release();
    }
    for _ in 0..spec.seeds.option_misuse {
        g.seed_option_misuse();
    }
    for _ in 0..spec.seeds.type_confusion {
        g.seed_type_confusion();
    }
    for _ in 0..spec.seeds.trailing_unit {
        g.seed_trailing_unit();
    }
    for _ in 0..spec.seeds.poly_abuse {
        g.seed_poly_abuse();
    }
    let mut poly_uses_left = spec.seeds.poly_variant_fp_uses;
    while poly_uses_left > 0 {
        let uses = poly_uses_left.min(1 + (g.rng.gen_range(0..3) as usize)).max(1);
        g.seed_poly_variant_fp(uses);
        poly_uses_left -= uses;
    }
    for _ in 0..spec.seeds.disguised_ptr_pairs {
        g.seed_disguised_ptr_pair();
    }
    for _ in 0..spec.seeds.unknown_offset {
        g.seed_unknown_offset();
    }
    for _ in 0..spec.seeds.global_value {
        g.seed_global_value();
    }
    for _ in 0..spec.seeds.fn_ptr {
        g.seed_fn_ptr();
    }
    // correct filler to reach the C LoC target
    while g.c_lines() + 16 < spec.paper.c_loc as u32 {
        g.emit_correct_function();
    }
    // OCaml filler to reach the OCaml LoC target
    g.pad_ml(spec.paper.ml_loc);
    Benchmark { name: spec.name.to_string(), ml_source: g.ml, c_source: g.c, funcs: g.funcs }
}

struct Gen {
    rng: StdRng,
    prefix: String,
    ml: String,
    c: String,
    funcs: Vec<GenFunc>,
    counter: usize,
    correct_kind: usize,
}

impl Gen {
    fn new(spec: &BenchSpec) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(spec.rng_seed),
            prefix: spec.name.split(['-', '.']).next().unwrap_or("lib").to_string(),
            ml: String::new(),
            c: String::new(),
            funcs: Vec::new(),
            counter: 0,
            correct_kind: 0,
        }
    }

    fn c_lines(&self) -> u32 {
        self.c.lines().count() as u32
    }

    fn ml_lines(&self) -> u32 {
        self.ml.lines().count() as u32
    }

    fn fresh(&mut self, what: &str) -> String {
        self.counter += 1;
        format!("{}_{}_{}", self.prefix, what, self.counter)
    }

    fn emit_header(&mut self) {
        self.ml.push_str(&format!("(* {} bindings — synthesized corpus *)\n", self.prefix));
        self.c.push_str("/* synthesized glue code */\n\n");
    }

    /// Emits one function pair and records ground truth.
    fn record(&mut self, name: &str, ml_text: &str, c_text: &str, seed: Option<SeedKind>) {
        let ml_start = self.ml_lines() + 1;
        self.ml.push_str(ml_text);
        let ml_end = self.ml_lines();
        let c_start = self.c_lines() + 1;
        self.c.push_str(c_text);
        let c_end = self.c_lines();
        self.funcs.push(GenFunc {
            name: name.to_string(),
            c_lines: (c_start, c_end.max(c_start)),
            ml_lines: (ml_start, ml_end.max(ml_start)),
            seed,
        });
    }

    // ---- correct templates ------------------------------------------------

    fn emit_correct_function(&mut self) {
        let kind = self.correct_kind;
        self.correct_kind += 1;
        match kind % 5 {
            0 => self.correct_arith(),
            1 => self.correct_string(),
            2 => self.correct_pair(),
            3 => self.correct_sum_examine(),
            _ => self.correct_handle(),
        }
    }

    fn correct_arith(&mut self) {
        let name = self.fresh("calc");
        let k = self.rng.gen_range(1..9);
        let op = ["+", "-", "*"][self.rng.gen_range(0..3usize)];
        let ml = format!("external {name} : int -> int -> int = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value a, value b) {{\n    long x = Int_val(a);\n    long y = Int_val(b);\n    long r = x {op} y + {k};\n    return Val_int(r);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, None);
    }

    fn correct_string(&mut self) {
        let name = self.fresh("str");
        let ml = format!("external {name} : string -> int = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value s) {{\n    const char *p = String_val(s);\n    int n = lib_{name}_measure(p);\n    return Val_int(n);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, None);
    }

    fn correct_pair(&mut self) {
        let name = self.fresh("pair");
        let ml = format!("external {name} : string -> string -> string * string = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value a, value b) {{\n    CAMLparam2(a, b);\n    CAMLlocal1(res);\n    res = caml_alloc(2, 0);\n    Store_field(res, 0, a);\n    Store_field(res, 1, b);\n    CAMLreturn(res);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, None);
    }

    fn correct_sum_examine(&mut self) {
        let name = self.fresh("sum");
        let ty = format!("{name}_t");
        let ml = format!(
            "type {ty} = K0_{name} of int | K1_{name} | K2_{name} of int * int | K3_{name}\nexternal {name} : {ty} -> int = \"c_{name}\"\n"
        );
        let c = format!(
            "value c_{name}(value x) {{\n    if (Is_long(x)) {{\n        switch (Int_val(x)) {{\n        case 0: return Val_int(10);\n        case 1: return Val_int(11);\n        }}\n        return Val_int(0);\n    }} else {{\n        switch (Tag_val(x)) {{\n        case 0: return Val_int(Int_val(Field(x, 0)) + 1);\n        case 1: return Val_int(Int_val(Field(x, 0)) + Int_val(Field(x, 1)));\n        }}\n        return Val_int(-1);\n    }}\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, None);
    }

    fn correct_handle(&mut self) {
        let name = self.fresh("h");
        let lib = format!("lib{name}");
        let ml = format!(
            "type {name}_handle\nexternal {name}_open : string -> {name}_handle = \"c_{name}_open\"\nexternal {name}_use : {name}_handle -> int -> int = \"c_{name}_use\"\n"
        );
        let c = format!(
            "value c_{name}_open(value path) {{\n    {lib}_t *h = {lib}_open(String_val(path));\n    return (value) h;\n}}\n\nvalue c_{name}_use(value h, value n) {{\n    int r = {lib}_use(({lib}_t *) h, Int_val(n));\n    return Val_int(r);\n}}\n\n"
        );
        // two functions; record as one ground-truth region (both clean)
        self.record(&format!("c_{name}_open"), &ml, &c, None);
    }

    // ---- seeded defects ---------------------------------------------------------

    fn seed_val_int_confusion(&mut self) {
        let name = self.fresh("mode");
        let ml = format!("external {name} : int -> int = \"c_{name}\"\n");
        // BUG: Val_int where Int_val belongs
        let c = format!(
            "value c_{name}(value flags) {{\n    int mode = lib_{name}_decode(Val_int(flags));\n    return Val_int(mode);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::ValIntConfusion));
    }

    fn seed_missing_registration(&mut self) {
        let name = self.fresh("cell");
        let ml = format!("external {name} : string -> string ref = \"c_{name}\"\n");
        // BUG: `s` live across caml_alloc but never registered
        let c = format!(
            "value c_{name}(value s) {{\n    value cell = caml_alloc(1, 0);\n    Store_field(cell, 0, s);\n    return cell;\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::MissingRegistration));
    }

    fn seed_register_no_release(&mut self) {
        let name = self.fresh("dec");
        let ml = format!("external {name} : string -> int = \"c_{name}\"\n");
        // BUG: CAMLparam without CAMLreturn
        let c = format!(
            "value c_{name}(value buf) {{\n    CAMLparam1(buf);\n    int n = lib_{name}_run(String_val(buf));\n    return Val_int(n);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::RegisterNoRelease));
    }

    fn seed_option_misuse(&mut self) {
        let name = self.fresh("opt");
        let ml = format!("external {name} : (int * int) option -> unit = \"c_{name}\"\n");
        // BUG: treats the option itself as the pair
        let c = format!(
            "value c_{name}(value opt) {{\n    int a = Int_val(Field(opt, 0));\n    int b = Int_val(Field(opt, 1));\n    lib_{name}_apply(a, b);\n    return Val_unit;\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::OptionMisuse));
    }

    fn seed_type_confusion(&mut self) {
        let name = self.fresh("conf");
        // BUG: OCaml says int, C treats the argument as a string
        let ml = format!("external {name} : int -> int = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value s) {{\n    int n = lib_{name}_len(String_val(s));\n    return Val_int(n);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::TypeConfusion));
    }

    fn seed_trailing_unit(&mut self) {
        let name = self.fresh("tu");
        // QUESTIONABLE: trailing unit parameter missing on the C side
        let ml = format!("external {name} : int -> unit -> unit = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value n) {{\n    lib_{name}_poke(Int_val(n));\n    return Val_unit;\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::TrailingUnit));
    }

    fn seed_poly_abuse(&mut self) {
        let name = self.fresh("seek");
        let lib = format!("lib{name}");
        // QUESTIONABLE: 'a accepts any value; C commits to one C type
        let ml = format!("external {name} : 'a -> int -> unit = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value chan, value pos) {{\n    {lib}_seek(({lib}_t *) chan, Int_val(pos));\n    return Val_unit;\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::PolyAbuse));
    }

    fn seed_poly_variant_fp(&mut self, uses: usize) {
        let name = self.fresh("pv");
        let params: Vec<String> = (0..uses).map(|i| format!("m{i}")).collect();
        let ml_params: Vec<String> =
            (0..uses).map(|_| "[ `On | `Off | `Auto ]".to_string()).collect();
        let ml = format!("external {name} : {} -> unit = \"c_{name}\"\n", ml_params.join(" -> "));
        let c_params: Vec<String> = params.iter().map(|p| format!("value {p}")).collect();
        let mut body = String::new();
        for p in &params {
            // correct at runtime (variants are hashed ints) but unmodeled:
            // each Int_val use is one expected false positive
            body.push_str(&format!("    lib_{name}_set(Int_val({p}));\n"));
        }
        let c = format!(
            "value c_{name}({}) {{\n{body}    return Val_unit;\n}}\n\n",
            c_params.join(", ")
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::PolyVariantFp));
    }

    fn seed_disguised_ptr_pair(&mut self) {
        let name = self.fresh("iter");
        let lib = format!("lib{name}");
        let ml = format!(
            "type {name}_cursor\nexternal {name}_read : {name}_cursor -> int = \"c_{name}_read\"\nexternal {name}_next : {name}_cursor -> {name}_cursor = \"c_{name}_next\"\n"
        );
        // correct C, but the byte-level arithmetic types the cursor as
        // `char * custom` in one function and `lib_t * custom` in the other
        let c = format!(
            "value c_{name}_read(value cur) {{\n    {lib}_t *p = ({lib}_t *) cur;\n    return Val_int({lib}_read(p));\n}}\n\nvalue c_{name}_next(value cur) {{\n    return (value)((char *) cur + sizeof({lib}_t *));\n}}\n\n"
        );
        self.record(&format!("c_{name}_read"), &ml, &c, Some(SeedKind::DisguisedPtrFp));
    }

    fn seed_unknown_offset(&mut self) {
        let name = self.fresh("arr");
        let ml = format!("external {name} : int array -> int -> int = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value arr, value n) {{\n    int total = 0;\n    int i;\n    for (i = 0; i < Int_val(n); i++) {{\n        total += Int_val(Field(arr, i));\n    }}\n    return Val_int(total);\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::UnknownOffsetImp));
    }

    fn seed_global_value(&mut self) {
        let name = self.fresh("cache");
        let ml = format!("external {name}_init : unit -> unit = \"c_{name}_init\"\n");
        let c = format!(
            "static value {name}_slot;\n\nvalue c_{name}_init(value u) {{\n    return Val_unit;\n}}\n\n"
        );
        self.record(&format!("c_{name}_init"), &ml, &c, Some(SeedKind::GlobalValueImp));
    }

    fn seed_fn_ptr(&mut self) {
        let name = self.fresh("cb");
        let ml = format!("external {name} : int -> int = \"c_{name}\"\n");
        let c = format!(
            "value c_{name}(value n) {{\n    int (*h)(int) = lib_{name}_handler();\n    return Val_int(h(Int_val(n)));\n}}\n\n"
        );
        self.record(&format!("c_{name}"), &ml, &c, Some(SeedKind::FnPtrImp));
    }

    // ---- OCaml filler -----------------------------------------------------------

    fn pad_ml(&mut self, target: usize) {
        // idiomatic non-declaration OCaml that the phase-1 parser skips
        let externals: Vec<String> = self
            .funcs
            .iter()
            .filter(|f| f.seed.is_none())
            .map(|f| f.name.trim_start_matches("c_").to_string())
            .collect();
        let mut i = 0usize;
        while self.ml_lines() < target as u32 {
            let line = match i % 4 {
                0 => format!("let use_{i} x = x + {}\n", i % 17),
                1 => match externals.get(i % externals.len().max(1)) {
                    Some(e) => format!("let wrap_{i} a b = ignore ({e}); (a, b)\n"),
                    None => format!("let wrap_{i} a b = (a, b)\n"),
                },
                2 => format!("(* binding helper {i} *)\n"),
                _ => format!("let pp_{i} fmt = Format.fprintf fmt \"{i}\"\n"),
            };
            self.ml.push_str(&line);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_benchmarks;

    #[test]
    fn generation_is_deterministic() {
        let spec = &paper_benchmarks()[3]; // ocaml-ssl
        let a = generate(spec);
        let b = generate(spec);
        assert_eq!(a.ml_source, b.ml_source);
        assert_eq!(a.c_source, b.c_source);
    }

    #[test]
    fn loc_targets_are_met() {
        for spec in paper_benchmarks() {
            let b = generate(&spec);
            let c_loc = b.c_source.lines().count();
            let ml_loc = b.ml_source.lines().count();
            assert!(
                c_loc >= spec.paper.c_loc * 8 / 10 && c_loc <= spec.paper.c_loc * 12 / 10,
                "{}: C {} vs target {}",
                spec.name,
                c_loc,
                spec.paper.c_loc
            );
            assert!(
                ml_loc >= spec.paper.ml_loc,
                "{}: ML {} vs target {}",
                spec.name,
                ml_loc,
                spec.paper.ml_loc
            );
        }
    }

    #[test]
    fn ground_truth_ranges_cover_seeds() {
        let spec = &paper_benchmarks()[10]; // lablgtk
        let b = generate(spec);
        let seeded = b.funcs.iter().filter(|f| f.seed.is_some()).count();
        assert!(seeded > 50, "{seeded}");
        // ranges are sane and non-overlapping in C
        let mut last_end = 0u32;
        for f in &b.funcs {
            assert!(f.c_lines.0 > last_end, "{}: overlap at {:?}", f.name, f.c_lines);
            last_end = f.c_lines.1;
        }
    }

    #[test]
    fn line_lookup_resolves_functions() {
        let spec = &paper_benchmarks()[2]; // ocaml-mad
        let b = generate(spec);
        let f = &b.funcs[0];
        assert_eq!(b.func_at_c_line(f.c_lines.0).map(|g| g.name.clone()), Some(f.name.clone()));
        assert!(b.func_at_c_line(100_000).is_none());
    }
}
