//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API the workspace benches use. The build environment is offline, so
//! vendoring criterion is not an option; this harness keeps the bench
//! sources idiomatic (groups, `bench_function`, `b.iter`) while measuring
//! with plain `std::time::Instant`.
//!
//! Measurement model: each benchmark runs `sample_size` samples after one
//! warm-up; a sample times a batch of iterations sized so the batch takes
//! ≳1ms. The median sample is reported.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a driver with the default sample size (20).
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.max(1));
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 20, _parent: self }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts a throughput hint purely for criterion API parity; the
    /// plain-text report ignores it and prints µs/iter only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// A benchmark identifier (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter<D: std::fmt::Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Throughput hint (mirrors `criterion::Throughput`).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    median: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, median: None }
    }

    /// Measures `routine`: one warm-up call, then `sample_size` batches
    /// sized to take at least ~1ms each; stores the median per-iteration
    /// time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up + batch sizing
        let start = Instant::now();
        std::hint::black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort();
        self.median = Some(samples[samples.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median {
            Some(t) => println!("{name:<48} {:>12.3} µs/iter", t.as_secs_f64() * 1e6),
            None => println!("{name:<48} (no measurement)"),
        }
    }
}

/// Mirrors `criterion::criterion_group!`: defines a runner function that
/// invokes each registered bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_parity() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(42), &7usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
