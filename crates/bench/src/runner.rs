//! Scaling workloads: synthetic glue libraries of parametric size
//! (DESIGN.md experiment E6 — supports the shape of Figure 9's time
//! column).

use crate::corpus::{generate, Benchmark};
use crate::figure9::analyze_benchmark;
use crate::spec::{BenchSpec, PaperRow, SeedPlan};
use ffisafe_core::AnalysisOptions;

/// Builds a defect-free benchmark with roughly `c_loc` lines of C.
pub fn scaling_spec(c_loc: usize) -> BenchSpec {
    BenchSpec {
        name: "scale",
        paper: PaperRow {
            c_loc,
            ml_loc: c_loc / 2,
            time_s: 0.0,
            errors: 0,
            warnings: 0,
            false_pos: 0,
            imprecision: 0,
        },
        seeds: SeedPlan::default(),
        rng_seed: 0x5CA1E + c_loc as u64,
    }
}

/// Generates the scaling benchmark for a LoC target.
pub fn scaling_benchmark(c_loc: usize) -> Benchmark {
    generate(&scaling_spec(c_loc))
}

/// Analyzes a benchmark and returns (C LoC, wall-clock seconds,
/// diagnostics count).
pub fn measure(bench: &Benchmark) -> (usize, f64, usize) {
    let report = analyze_benchmark(bench, AnalysisOptions::default());
    (report.stats.c_loc, report.stats.seconds, report.diagnostics.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_benchmarks_are_clean() {
        for loc in [120, 600] {
            let bench = scaling_benchmark(loc);
            let (c_loc, _, diags) = measure(&bench);
            assert!(c_loc >= loc * 8 / 10, "{c_loc} vs {loc}");
            assert_eq!(diags, 0, "scaling corpus must analyze clean at {loc} LoC");
        }
    }

    #[test]
    fn scaling_grows_roughly_linearly() {
        // smoke check: 4x the code should not be 40x the time
        let small = scaling_benchmark(400);
        let large = scaling_benchmark(1600);
        let (_, t1, _) = measure(&small);
        let (_, t2, _) = measure(&large);
        assert!(t2 < t1 * 40.0 + 0.5, "t1={t1} t2={t2}");
    }
}
