//! The pipeline benchmark: wall-clock comparison of the inference stage
//! across worker counts, emitted as machine-readable `BENCH_pipeline.json`
//! so successive PRs accumulate a perf trajectory.
//!
//! Workloads: every Figure 9 benchmark (the paper's corpus, synthesized)
//! plus a large parametric scaling corpus, each analyzed at `jobs = 1` and
//! `jobs = available parallelism`.

use crate::corpus::generate;
use crate::runner::scaling_benchmark;
use crate::spec::paper_benchmarks;
use ffisafe_core::{AnalysisOptions, Analyzer};

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct PipelineMeasurement {
    /// Workload name.
    pub name: String,
    /// Lines of C analyzed.
    pub c_loc: usize,
    /// C functions analyzed.
    pub functions: usize,
    /// Total fixpoint passes.
    pub passes: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole analysis.
    pub seconds: f64,
    /// Wall-clock seconds of the inference stage alone.
    pub infer_seconds: f64,
    /// Sum of per-function inference work (jobs-independent).
    pub work_seconds: f64,
    /// Slowest single function — the parallel lower bound.
    pub critical_path_seconds: f64,
    /// Findings (errors + warnings + imprecision — context notes excluded,
    /// so the trajectory is comparable across note-emission changes;
    /// sanity: must match across jobs).
    pub diagnostics: usize,
}

/// The full benchmark result.
#[derive(Clone, Debug, Default)]
pub struct PipelineBench {
    /// All measurements, serial and parallel, in workload order.
    pub rows: Vec<PipelineMeasurement>,
}

fn measure(name: &str, ml: &str, c: &str, jobs: usize) -> PipelineMeasurement {
    let mut az = Analyzer::with_options(AnalysisOptions::default().with_jobs(jobs));
    az.add_ml_source("lib.ml", ml);
    az.add_c_source("glue.c", c);
    let report = az.analyze();
    PipelineMeasurement {
        name: name.to_string(),
        c_loc: report.stats.c_loc,
        functions: report.stats.c_functions,
        passes: report.stats.passes,
        jobs: report.stats.jobs,
        seconds: report.stats.seconds,
        infer_seconds: report.timings.get(ffisafe_core::Phase::Infer).as_secs_f64(),
        work_seconds: report.stats.infer_work_seconds,
        critical_path_seconds: report.stats.infer_critical_path_seconds,
        diagnostics: report.error_count() + report.warning_count() + report.imprecision_count(),
    }
}

/// Runs every workload at each worker count in `jobs_list`.
pub fn run(jobs_list: &[usize]) -> PipelineBench {
    let mut rows = Vec::new();
    for spec in paper_benchmarks() {
        let bench = generate(&spec);
        for &jobs in jobs_list {
            rows.push(measure(spec.name, &bench.ml_source, &bench.c_source, jobs));
        }
    }
    let scale = scaling_benchmark(12_000);
    for &jobs in jobs_list {
        rows.push(measure("scale-12k", &scale.ml_source, &scale.c_source, jobs));
    }
    PipelineBench { rows }
}

impl PipelineBench {
    /// Wall-clock speedup of the widest configuration over `jobs = 1`,
    /// summed over every workload. Meaningful only when the host has more
    /// than one core; see [`PipelineBench::work_speedup_bound`] for the
    /// hardware-independent number.
    pub fn overall_speedup(&self) -> f64 {
        let serial: f64 = self.rows.iter().filter(|r| r.jobs == 1).map(|r| r.seconds).sum();
        let max_jobs = self.rows.iter().map(|r| r.jobs).max().unwrap_or(1);
        let parallel: f64 =
            self.rows.iter().filter(|r| r.jobs == max_jobs).map(|r| r.seconds).sum();
        if parallel > 0.0 {
            serial / parallel
        } else {
            1.0
        }
    }

    /// The measured work/critical-path ratio of the inference stage over
    /// the `jobs = 1` runs: the wall-clock speedup an unbounded worker
    /// pool achieves on this corpus, independent of the host's core count.
    pub fn work_speedup_bound(&self) -> f64 {
        let work: f64 = self.rows.iter().filter(|r| r.jobs == 1).map(|r| r.work_seconds).sum();
        let critical: f64 =
            self.rows.iter().filter(|r| r.jobs == 1).map(|r| r.critical_path_seconds).sum();
        if critical > 0.0 {
            work / critical
        } else {
            1.0
        }
    }

    /// Serializes to the `BENCH_pipeline.json` format (no external JSON
    /// dependency; every field is a number or a plain string).
    pub fn to_json(&self) -> String {
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut out = String::from("{\n  \"benchmark\": \"pipeline\",\n");
        out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        out.push_str(&format!(
            "  \"overall_speedup\": {:.3},\n  \"work_speedup_bound\": {:.3},\n  \"rows\": [\n",
            self.overall_speedup(),
            self.work_speedup_bound()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"c_loc\": {}, \"functions\": {}, \"passes\": {}, \"jobs\": {}, \"seconds\": {:.4}, \"infer_seconds\": {:.4}, \"work_seconds\": {:.4}, \"critical_path_seconds\": {:.4}, \"diagnostics\": {}}}{}\n",
                json_escape(&r.name),
                r.c_loc,
                r.functions,
                r.passes,
                r.jobs,
                r.seconds,
                r.infer_seconds,
                r.work_seconds,
                r.critical_path_seconds,
                r.diagnostics,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_valid_shape() {
        // one tiny workload at two widths, via the internal measure()
        let spec = &paper_benchmarks()[0];
        let bench = generate(spec);
        let serial = measure(spec.name, &bench.ml_source, &bench.c_source, 1);
        let parallel = measure(spec.name, &bench.ml_source, &bench.c_source, 4);
        assert_eq!(serial.diagnostics, parallel.diagnostics, "jobs changed results");
        assert_eq!(serial.passes, parallel.passes);
        assert_eq!(serial.jobs, 1);
        assert!(parallel.jobs >= 1);
        let pb = PipelineBench { rows: vec![serial, parallel] };
        let json = pb.to_json();
        assert!(json.contains("\"benchmark\": \"pipeline\""));
        assert!(json.contains("\"overall_speedup\""));
        assert!(json.contains(&format!("\"name\": \"{}\"", spec.name)));
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
