//! The pipeline benchmark: wall-clock comparison of the inference stage
//! across worker counts **and across cache temperatures**, emitted as
//! machine-readable `BENCH_pipeline.json` so successive PRs accumulate a
//! perf trajectory.
//!
//! Workloads: every Figure 9 benchmark (the paper's corpus, synthesized)
//! plus a large parametric scaling corpus, each analyzed at `jobs = 1` and
//! `jobs = available parallelism` with caching off, then once *cold*
//! (populating a fresh `--cache-dir`) and once *warm* (replaying it) — the
//! cold/warm delta is the incremental-reanalysis subsystem's headline
//! number.

use crate::corpus::generate;
use crate::runner::scaling_benchmark;
use crate::spec::paper_benchmarks;
use ffisafe_core::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use ffisafe_shard::{planner, sweep, LibraryCost, Schedule, SweepConfig, SweepOutput};
use ffisafe_support::telemetry;
use std::collections::HashMap;
use std::path::Path;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct PipelineMeasurement {
    /// Workload name.
    pub name: String,
    /// Lines of C analyzed.
    pub c_loc: usize,
    /// C functions analyzed.
    pub functions: usize,
    /// Total fixpoint passes.
    pub passes: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Cache temperature: `"off"`, `"cold"` (populating), `"warm"`
    /// (replaying the run before it) or `"mixed"` (the serve-load
    /// harness's interleaved cold/warm client mix).
    pub cache: &'static str,
    /// Wall-clock seconds for the whole analysis.
    pub seconds: f64,
    /// Median per-request latency over a round of the serve-load harness;
    /// 0 for single-run workloads, which have no request distribution.
    pub p50_seconds: f64,
    /// 95th-percentile per-request latency of the serve-load harness;
    /// 0 for single-run workloads.
    pub p95_seconds: f64,
    /// Wall-clock seconds of the inference stage alone.
    pub infer_seconds: f64,
    /// Sum of per-function inference work (jobs-independent; replayed
    /// cache hits contribute zero).
    pub work_seconds: f64,
    /// Portion of `work_seconds` spent building per-worker overlay views
    /// — the former snapshot-clone tax the frozen arena eliminates.
    pub setup_seconds: f64,
    /// Slowest single function — the parallel lower bound.
    pub critical_path_seconds: f64,
    /// How `critical_path_seconds` was computed: `"live"` (slowest
    /// measured function in this run), `"packing"` (deterministic
    /// makespan of the schedule over manifest costs — see
    /// [`packing_makespan`]) or `"untracked"` (not measured; the value
    /// is 0). Trajectory tooling must only compare rows whose methods
    /// match — a live timing and a packing makespan are different
    /// quantities that happen to share a unit.
    pub critical_path_method: &'static str,
    /// Functions replayed from the tier-1 cache. Note an unchanged warm
    /// run short-circuits at the report tier *before* tier 1 is
    /// consulted, so this is nonzero only for partially-invalidated runs.
    pub cache_fn_hits: usize,
    /// Whether the whole report came from the tier-2 report cache.
    pub report_hit: bool,
    /// Findings (errors + warnings + imprecision — context notes excluded,
    /// so the trajectory is comparable across note-emission changes;
    /// sanity: must match across jobs and cache temperatures).
    pub diagnostics: usize,
}

/// The full benchmark result.
#[derive(Clone, Debug, Default)]
pub struct PipelineBench {
    /// All measurements, serial and parallel, in workload order.
    pub rows: Vec<PipelineMeasurement>,
}

fn measure(
    name: &str,
    ml: &str,
    c: &str,
    jobs: usize,
    cache: Option<(&Path, &'static str)>,
) -> PipelineMeasurement {
    measure_with_report(name, ml, c, jobs, cache).0
}

/// Like [`measure`], but also returns the rendered report so callers can
/// assert result invariance (the telemetry pair diffs the bytes).
fn measure_with_report(
    name: &str,
    ml: &str,
    c: &str,
    jobs: usize,
    cache: Option<(&Path, &'static str)>,
) -> (PipelineMeasurement, String) {
    let service = AnalysisService::with_config(ServiceConfig {
        cache_dir: cache.map(|(dir, _)| dir.to_path_buf()),
        cache_url: None,
        batch_jobs: 0,
    })
    .expect("bench cache dir under temp_dir must open");
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions::default().with_jobs(jobs));
    let report = service.analyze(&request).expect("in-memory corpus analysis cannot fail");
    // `render_stable` drops the wall-clock suffix, so byte-comparing two
    // runs' reports checks the analysis, not the timer.
    let rendered = report.render_stable();
    let row = PipelineMeasurement {
        name: name.to_string(),
        c_loc: report.stats.c_loc,
        functions: report.stats.c_functions,
        passes: report.stats.passes,
        // A report-tier hit never starts the pool, so stats.jobs is 0;
        // record the width the row was *requested* at for grouping.
        jobs: if report.stats.cache_report_hit { jobs } else { report.stats.jobs },
        cache: cache.map(|(_, mode)| mode).unwrap_or("off"),
        seconds: report.stats.seconds,
        p50_seconds: 0.0,
        p95_seconds: 0.0,
        infer_seconds: report.timings.get(ffisafe_core::Phase::Infer).as_secs_f64(),
        work_seconds: report.stats.infer_work_seconds,
        setup_seconds: report.stats.infer_setup_seconds,
        critical_path_seconds: report.stats.infer_critical_path_seconds,
        critical_path_method: "live",
        cache_fn_hits: report.stats.cache_fn_hits,
        report_hit: report.stats.cache_report_hit,
        diagnostics: report.error_count() + report.warning_count() + report.imprecision_count(),
    };
    (row, rendered)
}

/// Measures one workload: uncached at every width in `jobs_list`, then a
/// cold/warm cache pair at `jobs = 1`.
fn measure_workload(
    rows: &mut Vec<PipelineMeasurement>,
    name: &str,
    ml: &str,
    c: &str,
    jobs_list: &[usize],
) {
    for &jobs in jobs_list {
        rows.push(measure(name, ml, c, jobs, None));
    }
    let dir = std::env::temp_dir().join(format!(
        "ffisafe-bench-cache-{}-{}",
        name.replace('/', "_"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = measure(name, ml, c, 1, Some((&dir, "cold")));
    let mut warm = measure(name, ml, c, 1, Some((&dir, "warm")));
    // A warm report-tier hit skips analysis, so it cannot re-measure the
    // workload's shape; backfill it from the cold row so trajectory
    // tooling sees matching functions/passes across temperatures.
    if warm.report_hit {
        warm.functions = cold.functions;
        warm.passes = cold.passes;
    }
    rows.push(cold);
    rows.push(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One sweep run over a multi-library tree, folded into the same row
/// shape as the single-corpus workloads. The work/hit numbers come from
/// the map executor's accounting; the critical path is not tracked at
/// sweep granularity and reports zero.
fn measure_sweep_once(
    root: &Path,
    config: &SweepConfig,
    cache: &'static str,
) -> PipelineMeasurement {
    let output = sweep(root, config).expect("bench sweep over a temp tree cannot fail");
    assert_eq!(output.stats.libraries_failed, 0, "bench sweep libraries must analyze");
    let total = output.report.summary();
    let s = &output.stats;
    PipelineMeasurement {
        name: "sweep-4lib".to_string(),
        c_loc: s.c_loc,
        functions: s.functions,
        passes: s.passes,
        jobs: 1,
        cache,
        seconds: s.wall_seconds,
        p50_seconds: 0.0,
        p95_seconds: 0.0,
        infer_seconds: s.work_seconds,
        work_seconds: s.work_seconds,
        setup_seconds: 0.0,
        critical_path_seconds: 0.0,
        critical_path_method: "untracked",
        cache_fn_hits: s.cache_fn_hits,
        report_hit: s.report_hits == output.library_count,
        diagnostics: total.errors + total.warnings + total.imprecision,
    }
}

/// The sweep workload: the four smallest Figure 9 libraries written to a
/// temp tree (one subdirectory each), swept at `--shards 2` cold then
/// warm over one shared store — the map/reduce subsystem's cold/warm
/// pair in the trajectory.
fn measure_sweep(rows: &mut Vec<PipelineMeasurement>) {
    let root = std::env::temp_dir().join(format!("ffisafe-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for spec in paper_benchmarks().iter().take(4) {
        let bench = generate(spec);
        let dir = root.join(spec.name);
        std::fs::create_dir_all(&dir).expect("bench temp tree");
        std::fs::write(dir.join("lib.ml"), &bench.ml_source).expect("bench temp tree");
        std::fs::write(dir.join("glue.c"), &bench.c_source).expect("bench temp tree");
    }
    let config = SweepConfig {
        shards: 2,
        jobs: 1,
        cache_dir: Some(root.join(".cache")),
        options: AnalysisOptions::default().with_jobs(1),
        ..SweepConfig::default()
    };
    let cold = measure_sweep_once(&root, &config, "cold");
    let mut warm = measure_sweep_once(&root, &config, "warm");
    // Warm report-tier hits skip the pipeline, so backfill the workload
    // shape from the cold sibling (same convention as measure_workload).
    if warm.report_hit {
        warm.functions = cold.functions;
        warm.passes = cold.passes;
    }
    rows.push(cold);
    rows.push(warm);
    let _ = std::fs::remove_dir_all(&root);
}

/// The longest per-shard chain of historical costs under `schedule` at
/// `--shards 8` — the packing's makespan, i.e. the map-phase wall clock
/// an 8-core host converges to without work stealing.
fn packing_makespan(root: &Path, schedule: Schedule, costs: &HashMap<String, LibraryCost>) -> f64 {
    let plan = planner::plan_with(root, 8, schedule, costs)
        .expect("bench skew tree was just written and must plan");
    plan.shards
        .iter()
        .map(|shard| {
            shard
                .members
                .iter()
                .map(|&m| plan.libraries[m].cost.map(|c| c.cost_seconds).unwrap_or(0.0))
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

/// The skewed-corpus scheduling benchmark: 24 cheap libraries plus one
/// heavy one named `zz-heavy` so name order sorts it *last* — static
/// contiguous chunking queues the long pole behind cheap neighbors in the
/// final shard, while LPT cost packing starts it first on a shard of its
/// own. Both sweeps run uncached at `--shards 8 --jobs 8`; the first
/// (static) run records per-library costs into the manifest that the
/// second (cost-scheduled) run packs from.
///
/// Each row's `critical_path_seconds` carries the *packing's* makespan
/// over the measured costs (see [`packing_makespan`]) rather than a live
/// thread measurement: it is deterministic given the costs and exposes
/// the scheduling win even on hosts with too few cores for the two runs'
/// wall clocks to separate.
fn measure_skew_sweep(rows: &mut Vec<PipelineMeasurement>) {
    let root = std::env::temp_dir().join(format!("ffisafe-bench-skew-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let write_lib = |name: String, c_loc: usize| {
        let bench = scaling_benchmark(c_loc);
        let dir = root.join(name);
        std::fs::create_dir_all(&dir).expect("bench temp tree");
        std::fs::write(dir.join("lib.ml"), &bench.ml_source).expect("bench temp tree");
        std::fs::write(dir.join("glue.c"), &bench.c_source).expect("bench temp tree");
    };
    for i in 0..24 {
        write_lib(format!("lib-a{i:02}"), 500 + i);
    }
    // ~1300 C LoC costs ≈ 4x a ~510 LoC library (inference is superlinear
    // in LoC): heavy enough that LPT isolates it, light enough that the
    // static makespan (two cheap libraries queued behind it) is not
    // dominated by the heavy library alone.
    write_lib("zz-heavy".to_string(), 1300);

    let manifest = root.join("manifest.json");
    let config = |schedule| SweepConfig {
        shards: 8,
        jobs: 8,
        schedule,
        manifest_path: Some(manifest.clone()),
        options: AnalysisOptions::default().with_jobs(1),
        ..SweepConfig::default()
    };
    let static_run = sweep(&root, &config(Schedule::Name)).expect("bench skew sweep (static)");
    let costs = planner::load_manifest_costs(&manifest);
    assert_eq!(costs.len(), 25, "static run must record every library's cost");
    let cost_run = sweep(&root, &config(Schedule::Cost)).expect("bench skew sweep (cost)");
    assert_eq!(
        static_run.report.to_json(),
        cost_run.report.to_json(),
        "schedule changed sweep results"
    );

    let skew_row = |name: &str, out: &SweepOutput, schedule: Schedule| {
        let total = out.report.summary();
        let s = &out.stats;
        PipelineMeasurement {
            name: name.to_string(),
            c_loc: s.c_loc,
            functions: s.functions,
            passes: s.passes,
            jobs: 8,
            cache: "off",
            seconds: s.wall_seconds,
            p50_seconds: 0.0,
            p95_seconds: 0.0,
            infer_seconds: s.work_seconds,
            work_seconds: s.work_seconds,
            setup_seconds: 0.0,
            critical_path_seconds: packing_makespan(&root, schedule, &costs),
            critical_path_method: "packing",
            cache_fn_hits: s.cache_fn_hits,
            report_hit: false,
            diagnostics: total.errors + total.warnings + total.imprecision,
        }
    };
    rows.push(skew_row("sweep-skew-static", &static_run, Schedule::Name));
    rows.push(skew_row("sweep-skew-cost", &cost_run, Schedule::Cost));
    let _ = std::fs::remove_dir_all(&root);
}

/// The telemetry-overhead pair: one mid-size workload analyzed with
/// tracing off (`telemetry-off`) and then with tracing on
/// (`telemetry-on`), both uncached at `jobs = 1`. `bench_diff` gates the
/// on/off wall-clock ratio, and the pair doubles as a result-invariance
/// check — the traced run's rendered report must be byte-identical to the
/// untraced one.
fn measure_telemetry_overhead(rows: &mut Vec<PipelineMeasurement>) {
    let scale = scaling_benchmark(4_000);
    let (off_row, off_report) =
        measure_with_report("telemetry-off", &scale.ml_source, &scale.c_source, 1, None);
    telemetry::set_tracing(true);
    let (on_row, on_report) =
        measure_with_report("telemetry-on", &scale.ml_source, &scale.c_source, 1, None);
    telemetry::set_tracing(false);
    let spans = telemetry::drain_spans();
    assert!(
        spans.iter().any(|s| s.name == "infer.solve"),
        "traced bench run must record solver spans"
    );
    assert_eq!(off_report, on_report, "telemetry changed the report bytes");
    rows.push(off_row);
    rows.push(on_row);
}

/// Nearest-rank percentile over unsorted latencies (`q` in 0..=100).
fn percentile(latencies: &[f64], q: usize) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(sorted.len() - 1) * q / 100]
}

/// One round of the serve-load harness: `SERVE_CLIENTS` concurrent
/// connections each submitting `SERVE_REQUESTS` corpora produced by
/// `corpus_for(client, request)`, against the daemon at `url`. Returns
/// the round's wall clock, every per-request latency, and the per-request
/// outcomes.
fn serve_round(
    url: &str,
    corpus_for: impl Fn(usize, usize) -> Corpus + Send + Sync,
) -> (f64, Vec<f64>, Vec<ffisafe_serve::AnalyzeOutcome>) {
    let started = std::time::Instant::now();
    let mut latencies = Vec::new();
    let mut outcomes = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SERVE_CLIENTS)
            .map(|client| {
                let corpus_for = &corpus_for;
                scope.spawn(move || {
                    let mut conn = ffisafe_serve::ServeClient::connect(url)
                        .expect("bench daemon must accept clients");
                    let mut lats = Vec::new();
                    let mut outs = Vec::new();
                    for request in 0..SERVE_REQUESTS {
                        let corpus = corpus_for(client, request);
                        let t = std::time::Instant::now();
                        let reply = conn
                            .analyze(&corpus, AnalysisOptions::default(), CacheMode::Shared)
                            .expect("bench daemon request must round-trip");
                        lats.push(t.elapsed().as_secs_f64());
                        match reply {
                            ffisafe_serve::Reply::Analyze(outcome) => outs.push(*outcome),
                            other => panic!("bench daemon replied {other:?}"),
                        }
                    }
                    (lats, outs)
                })
            })
            .collect();
        for handle in handles {
            let (lats, outs) = handle.join().expect("bench client thread");
            latencies.extend(lats);
            outcomes.extend(outs);
        }
    });
    (started.elapsed().as_secs_f64(), latencies, outcomes)
}

/// Concurrent connections the serve-load harness opens.
const SERVE_CLIENTS: usize = 4;
/// Requests each serve-load connection submits per round.
const SERVE_REQUESTS: usize = 6;

/// The serve-load workload (the daemon's headline numbers): an in-process
/// `ffisafe serve` daemon over a fresh cache, hit by [`SERVE_CLIENTS`]
/// concurrent clients.
///
/// Three rounds: *cold* (every request a distinct corpus — all misses),
/// *warm* (the same corpora resubmitted — all tier-2 report hits, zero
/// inference workers) and *mixed* (alternating fresh and repeated
/// corpora). Each round's p50/p95 per-request latency lands in its row;
/// `bench_diff` gates warm p50 < cold p50.
fn measure_serve_load(rows: &mut Vec<PipelineMeasurement>) {
    let cache =
        std::env::temp_dir().join(format!("ffisafe-bench-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let config = ffisafe_serve::ServeConfig {
        service: ServiceConfig { cache_dir: Some(cache.clone()), ..Default::default() },
        ..Default::default()
    };
    let addr = ffisafe_serve::AnalysisServer::bind("127.0.0.1:0", config)
        .expect("bench daemon must bind an ephemeral port")
        .spawn()
        .expect("bench daemon must spawn");
    let url = format!("tcp://{addr}");

    // Each corpus is unique per (round-tag, client, request) so cold
    // rounds cannot race each other into accidental cache hits.
    let corpus = |tag: &str, client: usize, request: usize| {
        let f = format!("load_{tag}_{client}_{request}");
        Corpus::builder()
            .ml_source("lib.ml", format!("external f : int -> int = \"{f}\"\n"))
            .c_source(
                "glue.c",
                format!("value {f}(value n) {{ return Val_int(Int_val(n) + {client}); }}\n"),
            )
            .build()
    };

    let (cold_wall, cold_lats, cold_outs) = serve_round(&url, |c, r| corpus("cold", c, r));
    assert!(cold_outs.iter().all(|o| !o.report_hit), "cold round must miss the report cache");
    let (warm_wall, warm_lats, warm_outs) = serve_round(&url, |c, r| corpus("cold", c, r));
    assert!(
        warm_outs.iter().all(|o| o.report_hit && o.workers_executed == 0),
        "warm resubmission must replay every report with zero inference workers"
    );
    let (mixed_wall, mixed_lats, _) = serve_round(&url, |c, r| {
        if r % 2 == 0 {
            corpus("cold", c, r) // already cached: the warm half
        } else {
            corpus("mixed", c, r) // first sight: the cold half
        }
    });
    let _ = std::fs::remove_dir_all(&cache);

    let diagnostics: usize =
        cold_outs.iter().map(|o| (o.errors + o.warnings) as usize).sum::<usize>();
    let c_loc = SERVE_CLIENTS * SERVE_REQUESTS; // one C line per request corpus
    let row =
        |cache: &'static str, wall: f64, lats: &[f64], report_hit: bool| PipelineMeasurement {
            name: if cache == "mixed" { "serve-load-mixed" } else { "serve-load" }.to_string(),
            c_loc,
            functions: SERVE_CLIENTS * SERVE_REQUESTS,
            passes: 0,
            jobs: SERVE_CLIENTS,
            cache,
            seconds: wall,
            p50_seconds: percentile(lats, 50),
            p95_seconds: percentile(lats, 95),
            infer_seconds: 0.0,
            work_seconds: 0.0,
            setup_seconds: 0.0,
            critical_path_seconds: 0.0,
            critical_path_method: "untracked",
            cache_fn_hits: 0,
            report_hit,
            diagnostics,
        };
    rows.push(row("cold", cold_wall, &cold_lats, false));
    rows.push(row("warm", warm_wall, &warm_lats, true));
    rows.push(row("mixed", mixed_wall, &mixed_lats, false));
}

/// Runs every workload at each worker count in `jobs_list`, plus the
/// cold/warm cache pair per workload, the sharded-sweep cold/warm
/// pair, the telemetry-overhead pair and the serve-load rounds.
pub fn run(jobs_list: &[usize]) -> PipelineBench {
    let mut rows = Vec::new();
    for spec in paper_benchmarks() {
        let bench = generate(&spec);
        measure_workload(&mut rows, spec.name, &bench.ml_source, &bench.c_source, jobs_list);
    }
    let scale = scaling_benchmark(12_000);
    measure_workload(&mut rows, "scale-12k", &scale.ml_source, &scale.c_source, jobs_list);
    measure_sweep(&mut rows);
    measure_skew_sweep(&mut rows);
    measure_telemetry_overhead(&mut rows);
    measure_serve_load(&mut rows);
    PipelineBench { rows }
}

impl PipelineBench {
    /// Wall-clock speedup of the widest configuration over `jobs = 1`,
    /// summed over every workload (cache-off rows only). Meaningful only
    /// when the host has more than one core; see
    /// [`PipelineBench::work_speedup_bound`] for the
    /// hardware-independent number.
    pub fn overall_speedup(&self) -> f64 {
        let off = || self.rows.iter().filter(|r| r.cache == "off");
        let serial: f64 = off().filter(|r| r.jobs == 1).map(|r| r.seconds).sum();
        let max_jobs = off().map(|r| r.jobs).max().unwrap_or(1);
        let parallel: f64 = off().filter(|r| r.jobs == max_jobs).map(|r| r.seconds).sum();
        if parallel > 0.0 {
            serial / parallel
        } else {
            1.0
        }
    }

    /// The measured work/critical-path ratio of the inference stage over
    /// the uncached `jobs = 1` runs: the wall-clock speedup an unbounded
    /// worker pool achieves on this corpus, independent of the host's
    /// core count.
    pub fn work_speedup_bound(&self) -> f64 {
        let serial = || self.rows.iter().filter(|r| r.cache == "off").filter(|r| r.jobs == 1);
        let work: f64 = serial().map(|r| r.work_seconds).sum();
        let critical: f64 = serial().map(|r| r.critical_path_seconds).sum();
        if critical > 0.0 {
            work / critical
        } else {
            1.0
        }
    }

    /// Wall-clock speedup of warm (cached) runs over cold (populating)
    /// runs, summed over every workload — the incremental-reanalysis win.
    pub fn warm_speedup(&self) -> f64 {
        let cold: f64 = self.rows.iter().filter(|r| r.cache == "cold").map(|r| r.seconds).sum();
        let warm: f64 = self.rows.iter().filter(|r| r.cache == "warm").map(|r| r.seconds).sum();
        if warm > 0.0 {
            cold / warm
        } else {
            1.0
        }
    }

    /// Workloads whose warm run was *not* strictly faster than its cold
    /// run — the regression signal CI watches for (empty when healthy).
    pub fn warm_regressions(&self) -> Vec<String> {
        let cold: Vec<&PipelineMeasurement> =
            self.rows.iter().filter(|r| r.cache == "cold").collect();
        let warm: Vec<&PipelineMeasurement> =
            self.rows.iter().filter(|r| r.cache == "warm").collect();
        cold.iter()
            .zip(&warm)
            .filter(|(c, w)| w.seconds >= c.seconds)
            .map(|(c, _)| c.name.clone())
            .collect()
    }

    /// Serializes to the `BENCH_pipeline.json` format (no external JSON
    /// dependency; every field is a number or a plain string).
    pub fn to_json(&self) -> String {
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut out = String::from("{\n  \"benchmark\": \"pipeline\",\n");
        out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        out.push_str(&format!(
            "  \"overall_speedup\": {:.3},\n  \"work_speedup_bound\": {:.3},\n  \"warm_speedup\": {:.3},\n  \"rows\": [\n",
            self.overall_speedup(),
            self.work_speedup_bound(),
            self.warm_speedup()
        ));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"c_loc\": {}, \"functions\": {}, \"passes\": {}, \"jobs\": {}, \"cache\": \"{}\", \"seconds\": {:.4}, \"p50_seconds\": {:.4}, \"p95_seconds\": {:.4}, \"infer_seconds\": {:.4}, \"work_seconds\": {:.4}, \"setup_seconds\": {:.4}, \"critical_path_seconds\": {:.4}, \"critical_path_method\": \"{}\", \"cache_fn_hits\": {}, \"report_hit\": {}, \"diagnostics\": {}}}{}\n",
                json_escape(&r.name),
                r.c_loc,
                r.functions,
                r.passes,
                r.jobs,
                r.cache,
                r.seconds,
                r.p50_seconds,
                r.p95_seconds,
                r.infer_seconds,
                r.work_seconds,
                r.setup_seconds,
                r.critical_path_seconds,
                r.critical_path_method,
                r.cache_fn_hits,
                r.report_hit,
                r.diagnostics,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_valid_shape() {
        // one tiny workload at two widths, via the internal measure()
        let spec = &paper_benchmarks()[0];
        let bench = generate(spec);
        let serial = measure(spec.name, &bench.ml_source, &bench.c_source, 1, None);
        let parallel = measure(spec.name, &bench.ml_source, &bench.c_source, 4, None);
        assert_eq!(serial.diagnostics, parallel.diagnostics, "jobs changed results");
        assert_eq!(serial.passes, parallel.passes);
        assert_eq!(serial.jobs, 1);
        assert_eq!(serial.cache, "off");
        assert!(parallel.jobs >= 1);
        let pb = PipelineBench { rows: vec![serial, parallel] };
        let json = pb.to_json();
        assert!(json.contains("\"benchmark\": \"pipeline\""));
        assert!(json.contains("\"overall_speedup\""));
        assert!(json.contains("\"warm_speedup\""));
        assert!(json.contains("\"cache\": \"off\""));
        assert!(json.contains(&format!("\"name\": \"{}\"", spec.name)));
    }

    #[test]
    fn cold_warm_pair_replays_and_matches() {
        let spec = &paper_benchmarks()[0];
        let bench = generate(spec);
        let dir =
            std::env::temp_dir().join(format!("ffisafe-bench-unit-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = measure(spec.name, &bench.ml_source, &bench.c_source, 1, Some((&dir, "cold")));
        let warm = measure(spec.name, &bench.ml_source, &bench.c_source, 1, Some((&dir, "warm")));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(cold.cache, "cold");
        assert_eq!(warm.cache, "warm");
        assert!(!cold.report_hit);
        assert!(warm.report_hit, "unchanged corpus must hit the report tier");
        assert_eq!(cold.diagnostics, warm.diagnostics, "cache changed results");
        let pb = PipelineBench { rows: vec![cold, warm] };
        assert_eq!(pb.warm_regressions(), Vec::<String>::new(), "warm must beat cold");
        assert!(pb.warm_speedup() > 1.0);
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn serve_load_rounds_measure_latency_distributions() {
        let mut rows = Vec::new();
        measure_serve_load(&mut rows);
        assert_eq!(rows.len(), 3);
        let (cold, warm, mixed) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!((cold.cache, warm.cache, mixed.cache), ("cold", "warm", "mixed"));
        assert_eq!(cold.name, "serve-load");
        assert_eq!(warm.name, "serve-load");
        assert_eq!(mixed.name, "serve-load-mixed");
        assert!(cold.p50_seconds > 0.0 && cold.p95_seconds >= cold.p50_seconds);
        assert!(warm.p50_seconds > 0.0 && warm.p95_seconds >= warm.p50_seconds);
        assert!(
            warm.p50_seconds < cold.p50_seconds,
            "warm p50 {:.4}s must beat cold p50 {:.4}s",
            warm.p50_seconds,
            cold.p50_seconds
        );
        assert!(warm.report_hit && !cold.report_hit);
        let pb = PipelineBench { rows };
        let json = pb.to_json();
        assert!(json.contains("\"name\": \"serve-load\""));
        assert!(json.contains("\"p50_seconds\""));
        assert!(json.contains("\"cache\": \"mixed\""));
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let lats = [0.4, 0.1, 0.3, 0.2];
        assert_eq!(percentile(&lats, 50), 0.2);
        assert_eq!(percentile(&lats, 95), 0.3);
        assert_eq!(percentile(&lats, 100), 0.4);
        assert_eq!(percentile(&[], 50), 0.0);
    }

    #[test]
    fn sweep_pair_replays_warm_and_matches() {
        let mut rows = Vec::new();
        measure_sweep(&mut rows);
        assert_eq!(rows.len(), 2);
        let (cold, warm) = (&rows[0], &rows[1]);
        assert_eq!((cold.cache, warm.cache), ("cold", "warm"));
        assert_eq!(cold.name, "sweep-4lib");
        assert!(cold.functions > 0 && cold.c_loc > 0);
        assert!(!cold.report_hit);
        assert!(warm.report_hit, "unchanged tree must be served from the report tier");
        assert_eq!(cold.diagnostics, warm.diagnostics, "cache changed sweep results");
        assert_eq!(cold.functions, warm.functions, "warm row backfilled from cold");
        let pb = PipelineBench { rows };
        assert_eq!(pb.warm_regressions(), Vec::<String>::new(), "warm must beat cold");
    }
}
