//! The Figure 9 harness: synthesize each benchmark, analyze it, score the
//! diagnostics against ground truth, and render the paper-vs-measured
//! table.

use crate::corpus::{generate, Benchmark, SeedKind};
use crate::spec::{paper_benchmarks, BenchSpec};
use ffisafe_core::{AnalysisOptions, AnalysisReport, AnalysisRequest, AnalysisService, Corpus};
use ffisafe_support::table::{Align, Table};
use ffisafe_support::Severity;
use std::collections::HashSet;

/// One measured row, classified against ground truth.
#[derive(Clone, Debug)]
pub struct Figure9Row {
    /// Benchmark name.
    pub name: String,
    /// Measured C LoC.
    pub c_loc: usize,
    /// Measured OCaml LoC.
    pub ml_loc: usize,
    /// Measured analysis time (seconds).
    pub seconds: f64,
    /// Distinct seeded defects confirmed by an error report.
    pub errors: usize,
    /// Distinct seeded practices confirmed by a warning.
    pub warnings: usize,
    /// Error/warning reports on seeded-correct (unsupported) code.
    pub false_pos: usize,
    /// Imprecision reports on seeded-imprecision code.
    pub imprecision: usize,
    /// Reports in functions with no seed (must be empty).
    pub unexpected: Vec<String>,
    /// Seeds that produced no report (must be empty).
    pub missed: Vec<String>,
}

/// Runs one benchmark end to end.
pub fn run_benchmark(spec: &BenchSpec, options: AnalysisOptions) -> Figure9Row {
    let bench = generate(spec);
    let report = analyze_benchmark(&bench, options);
    score(spec, &bench, &report)
}

/// The synthesized benchmark as an immutable analysis [`Corpus`].
pub fn benchmark_corpus(bench: &Benchmark) -> Corpus {
    Corpus::builder()
        .ml_source("lib.ml", &bench.ml_source)
        .c_source("glue.c", &bench.c_source)
        .build()
}

/// Runs the analyzer over a synthesized benchmark.
pub fn analyze_benchmark(bench: &Benchmark, options: AnalysisOptions) -> AnalysisReport {
    AnalysisService::new()
        .analyze(&AnalysisRequest::new(benchmark_corpus(bench)).options(options))
        .expect("in-memory corpus analysis cannot fail")
}

/// Classifies a report against the benchmark's ground truth.
pub fn score(spec: &BenchSpec, bench: &Benchmark, report: &AnalysisReport) -> Figure9Row {
    let mut hit_errors: HashSet<String> = HashSet::new();
    let mut hit_warnings: HashSet<String> = HashSet::new();
    let mut hit_imprecision: HashSet<String> = HashSet::new();
    let mut false_pos = 0usize;
    let mut imprecision = 0usize;
    let mut unexpected = Vec::new();

    for d in report.diagnostics.iter() {
        if d.severity() == Severity::Note {
            continue;
        }
        let loc = report.source_map().resolve(d.span());
        let func = if loc.file.ends_with(".c") {
            bench.func_at_c_line(loc.line)
        } else {
            bench.func_at_ml_line(loc.line)
        };
        let rendered = format!("{loc}: {} [{}]: {}", d.severity(), d.code(), d.message());
        let Some(func) = func else {
            unexpected.push(rendered);
            continue;
        };
        match func.seed {
            None => unexpected.push(rendered),
            Some(kind) if kind.is_true_defect() => {
                if d.severity() == Severity::Error {
                    hit_errors.insert(func.name.clone());
                }
                // secondary warnings in a buggy function are tolerated
            }
            Some(kind) if kind.is_warning() => {
                if d.severity() == Severity::Warning {
                    hit_warnings.insert(func.name.clone());
                } else {
                    unexpected.push(rendered);
                }
            }
            Some(kind) if kind.is_false_positive_source() => match d.severity() {
                Severity::Error | Severity::Warning => false_pos += 1,
                _ => unexpected.push(rendered),
            },
            Some(_) => {
                // imprecision seeds
                if d.severity() == Severity::Imprecision {
                    imprecision += 1;
                    hit_imprecision.insert(func.name.clone());
                } else {
                    unexpected.push(rendered);
                }
            }
        }
    }

    // seeds that produced nothing
    let mut missed = Vec::new();
    for f in &bench.funcs {
        let Some(kind) = f.seed else { continue };
        let hit = match kind {
            k if k.is_true_defect() => hit_errors.contains(&f.name),
            k if k.is_warning() => hit_warnings.contains(&f.name),
            k if k.is_imprecision() => hit_imprecision.contains(&f.name),
            SeedKind::PolyVariantFp | SeedKind::DisguisedPtrFp => false_pos > 0,
            _ => true,
        };
        if !hit {
            missed.push(format!("{:?} in {}", kind, f.name));
        }
    }

    Figure9Row {
        name: spec.name.to_string(),
        c_loc: report.stats.c_loc,
        ml_loc: report.stats.ml_loc,
        seconds: report.stats.seconds,
        errors: hit_errors.len(),
        warnings: hit_warnings.len(),
        false_pos,
        imprecision,
        unexpected,
        missed,
    }
}

/// Runs the whole Figure 9 suite.
pub fn run_all(options: AnalysisOptions) -> Vec<Figure9Row> {
    paper_benchmarks().iter().map(|s| run_benchmark(s, options)).collect()
}

/// Renders the measured table next to the paper's numbers.
pub fn render_table(rows: &[Figure9Row]) -> String {
    let specs = paper_benchmarks();
    let mut t = Table::new(vec![
        "Program".into(),
        "C loc".into(),
        "OCaml loc".into(),
        "Time (s)".into(),
        "Errors".into(),
        "(paper)".into(),
        "Warnings".into(),
        "(paper)".into(),
        "False Pos".into(),
        "(paper)".into(),
        "Imprecision".into(),
        "(paper)".into(),
    ]);
    for col in 1..12 {
        t.set_align(col, Align::Right);
    }
    let mut tot = [0usize; 8];
    for row in rows {
        let paper = specs.iter().find(|s| s.name == row.name).map(|s| s.paper).unwrap_or(
            crate::spec::PaperRow {
                c_loc: 0,
                ml_loc: 0,
                time_s: 0.0,
                errors: 0,
                warnings: 0,
                false_pos: 0,
                imprecision: 0,
            },
        );
        t.add_row(vec![
            row.name.clone(),
            row.c_loc.to_string(),
            row.ml_loc.to_string(),
            format!("{:.2}", row.seconds),
            row.errors.to_string(),
            paper.errors.to_string(),
            row.warnings.to_string(),
            paper.warnings.to_string(),
            row.false_pos.to_string(),
            paper.false_pos.to_string(),
            row.imprecision.to_string(),
            paper.imprecision.to_string(),
        ]);
        tot[0] += row.errors;
        tot[1] += paper.errors;
        tot[2] += row.warnings;
        tot[3] += paper.warnings;
        tot[4] += row.false_pos;
        tot[5] += paper.false_pos;
        tot[6] += row.imprecision;
        tot[7] += paper.imprecision;
    }
    t.add_row(vec![
        "Total".into(),
        String::new(),
        String::new(),
        String::new(),
        tot[0].to_string(),
        tot[1].to_string(),
        tot[2].to_string(),
        tot[3].to_string(),
        tot[4].to_string(),
        tot[5].to_string(),
        tot[6].to_string(),
        tot[7].to_string(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_by_name(name: &str) -> BenchSpec {
        paper_benchmarks().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn apm_is_clean() {
        let row = run_benchmark(&spec_by_name("apm-1.00"), AnalysisOptions::default());
        assert_eq!(row.errors, 0, "{:?}", row.unexpected);
        assert_eq!(row.warnings, 0);
        assert_eq!(row.false_pos, 0);
        assert_eq!(row.imprecision, 0);
        assert!(row.unexpected.is_empty(), "{:#?}", row.unexpected);
    }

    #[test]
    fn ocaml_ssl_matches_paper() {
        let spec = spec_by_name("ocaml-ssl-0.1.0");
        let row = run_benchmark(&spec, AnalysisOptions::default());
        assert!(row.unexpected.is_empty(), "{:#?}", row.unexpected);
        assert!(row.missed.is_empty(), "{:#?}", row.missed);
        assert_eq!(row.errors, spec.paper.errors);
        assert_eq!(row.warnings, spec.paper.warnings);
    }

    #[test]
    fn ocaml_mad_finds_register_leak() {
        let spec = spec_by_name("ocaml-mad-0.1.0");
        let row = run_benchmark(&spec, AnalysisOptions::default());
        assert!(row.unexpected.is_empty(), "{:#?}", row.unexpected);
        assert_eq!(row.errors, 1);
    }

    #[test]
    fn gz_matches_paper() {
        let spec = spec_by_name("gz-0.5.5");
        let row = run_benchmark(&spec, AnalysisOptions::default());
        assert!(row.unexpected.is_empty(), "{:#?}", row.unexpected);
        assert!(row.missed.is_empty(), "{:#?}", row.missed);
        assert_eq!(row.warnings, 1);
        assert_eq!(row.imprecision, 1);
    }
}
