//! Reproduces Figure 9: synthesizes the 11-benchmark corpus, analyzes each
//! library, scores diagnostics against ground truth and prints the
//! paper-vs-measured table.
//!
//! ```text
//! cargo run --release -p ffisafe-bench --bin figure9            # the table
//! cargo run --release -p ffisafe-bench --bin figure9 -- --ablate
//! ```

use ffisafe_bench::figure9::{render_table, run_all};
use ffisafe_core::AnalysisOptions;

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");

    println!("Figure 9 — multi-lingual inference over the synthesized corpus");
    println!("(\"(paper)\" columns are Furr & Foster's reported values)\n");
    let rows = run_all(AnalysisOptions::default());
    println!("{}", render_table(&rows));

    let mut any_problem = false;
    for row in &rows {
        for u in &row.unexpected {
            any_problem = true;
            println!("UNEXPECTED [{}]: {u}", row.name);
        }
        for m in &row.missed {
            any_problem = true;
            println!("MISSED [{}]: {m}", row.name);
        }
    }
    if !any_problem {
        println!("ground truth: every seeded defect detected, no report on clean code");
    }

    if ablate {
        println!("\n--- ablation: flow-sensitivity disabled (B/I/T not tracked) ---");
        let rows = run_all(AnalysisOptions {
            flow_sensitive: false,
            gc_effects: true,
            ..AnalysisOptions::default()
        });
        println!("{}", render_table(&rows));
        let fp: usize = rows.iter().map(|r| r.false_pos + r.unexpected.len()).sum();
        println!("spurious reports without flow-sensitivity: {fp}\n");

        println!("--- ablation: GC effects disabled ---");
        let rows = run_all(AnalysisOptions {
            flow_sensitive: true,
            gc_effects: false,
            ..AnalysisOptions::default()
        });
        let missed: usize = rows.iter().map(|r| r.missed.len()).sum();
        println!("{}", render_table(&rows));
        println!("seeded GC errors missed without effect tracking: {missed}");
    }
}
