//! `trace_check` — smoke checker for Chrome trace-event files written by
//! `--trace-out`.
//!
//! ```text
//! trace_check <trace.json> [required-span-name ...]
//! ```
//!
//! Verifies that the file is what a trace viewer (chrome://tracing,
//! Perfetto) will accept and what the span schema promises:
//!
//! * the document is a top-level JSON array of complete (`"ph": "X"`)
//!   events, each carrying `name`/`pid`/`tid`/`ts`/`dur`;
//! * every span name passed on the command line occurs at least once;
//! * per-thread spans nest properly — no two spans on one thread
//!   partially overlap (see
//!   [`ffisafe_support::telemetry::nesting_violations`]).
//!
//! Exit status: `0` healthy, `1` an assertion failed, `2` usage/IO/parse
//! problem.

use ffisafe_support::json::{self, Json};
use ffisafe_support::telemetry::{nesting_violations, SpanEvent};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn event_from_json(i: usize, event: &Json) -> Result<SpanEvent, String> {
    let field = |key: &str| event.get(key).ok_or_else(|| format!("events[{i}] missing `{key}`"));
    let name = field("name")?.as_str().ok_or_else(|| format!("events[{i}].name not a string"))?;
    let ph = field("ph")?.as_str().ok_or_else(|| format!("events[{i}].ph not a string"))?;
    if ph != "X" {
        return Err(format!("events[{i}] is `ph: {ph}`, expected a complete event (`X`)"));
    }
    field("pid")?.as_u64().ok_or_else(|| format!("events[{i}].pid not an integer"))?;
    Ok(SpanEvent {
        // `SpanEvent.name` is `&'static str` because live spans point at
        // literals; a checker reading names back from a file leaks each
        // one instead, which is fine for a run-once process.
        name: Box::leak(name.to_string().into_boxed_str()),
        start_us: field("ts")?.as_u64().ok_or_else(|| format!("events[{i}].ts not an integer"))?,
        dur_us: field("dur")?.as_u64().ok_or_else(|| format!("events[{i}].dur not an integer"))?,
        tid: field("tid")?.as_u64().ok_or_else(|| format!("events[{i}].tid not an integer"))?,
        args: Vec::new(),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path, required @ ..] = args.as_slice() else {
        eprintln!("usage: trace_check <trace.json> [required-span-name ...]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(raw_events) = doc.as_array() else {
        eprintln!("trace_check: {path}: top level is not an array of trace events");
        return ExitCode::FAILURE;
    };

    let mut events = Vec::with_capacity(raw_events.len());
    for (i, raw) in raw_events.iter().enumerate() {
        match event_from_json(i, raw) {
            Ok(event) => events.push(event),
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for event in &events {
        *counts.entry(event.name).or_insert(0) += 1;
    }
    let mut failed = false;
    for name in required {
        match counts.get(name.as_str()) {
            Some(n) => println!("{name}: {n} span(s)"),
            None => {
                failed = true;
                eprintln!("trace_check: {path}: no `{name}` span recorded");
            }
        }
    }

    let violations = nesting_violations(&events);
    if violations > 0 {
        failed = true;
        eprintln!("trace_check: {path}: {violations} span(s) partially overlap a sibling on the same thread");
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: {} event(s) across {} thread(s), all nested",
        events.len(),
        events.iter().map(|e| e.tid).collect::<std::collections::BTreeSet<_>>().len()
    );
    ExitCode::SUCCESS
}
