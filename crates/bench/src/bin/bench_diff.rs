//! `bench_diff` — the perf-trajectory regression gate.
//!
//! ```text
//! bench_diff <baseline.json> <current.json>
//! ```
//!
//! Compares two `BENCH_pipeline.json` artifacts (the committed baseline
//! vs the one the bench just wrote) and fails when the trajectory
//! regresses:
//!
//! * **warm ≥ cold** — any workload in the *current* artifact whose warm
//!   (cached) run was not strictly faster than its cold run: the
//!   incremental-reanalysis subsystem stopped paying for itself;
//! * **total-work blow-up** — the current artifact's total inference work
//!   (`work_seconds` summed over the uncached `jobs = 1` rows — the sum of
//!   per-function analysis time, independent of worker count) exceeds the
//!   baseline's by more than 25%;
//! * **parallel work inflation** — on any workload in the *current*
//!   artifact with uncached rows at several worker counts, the widest
//!   row's `work_seconds` exceeds the `jobs = 1` row's by more than 1.5×:
//!   adding workers should not multiply the work itself, and a blow-up
//!   here means per-worker setup (the old snapshot-clone tax) or
//!   contention is scaling with the worker count;
//! * **skew makespan** — on the skewed sweep corpus (one heavy library
//!   that name order starts last), the cost-scheduled run must come in at
//!   ≤ 0.75× the name-chunked static run: the LPT scheduler stopped
//!   paying for itself otherwise. The comparison uses wall clock when the
//!   measuring host has ≥ 4 cores; on smaller hosts the two runs' wall
//!   clocks cannot separate, so it falls back to each row's
//!   `critical_path_seconds` — the packing's longest per-shard cost
//!   chain, which is what wall clock converges to with enough cores.
//!   Each row records *how* its critical path was computed
//!   (`critical_path_method`: `"live"`, `"packing"` or `"untracked"`),
//!   and the fallback only fires when both rows used the same method —
//!   a live thread timing and a packing makespan are different
//!   quantities, so comparing them would be apples-to-oranges;
//! * **telemetry overhead** — the `telemetry-on` row of the current
//!   artifact (same workload as `telemetry-off`, but with span recording
//!   enabled) must come in at ≤ 1.05× the untraced wall clock, with a
//!   small absolute excess floor so sub-second workloads don't trip the
//!   ratio on scheduler noise: tracing must stay cheap enough to leave on
//!   in production daemons;
//! * **serve warm latency** — on the `serve-load` rows (concurrent
//!   clients against a resident `ffisafe serve` daemon), the warm round's
//!   median per-request latency (`p50_seconds`) must be strictly below
//!   the cold round's: a resubmitted corpus must be answered from the
//!   report cache faster than it was first analyzed, or the daemon's
//!   reason to stay resident is gone.
//!
//! `work_seconds` is jobs-independent but still wall-clock-derived, so
//! runs on different hardware (or a noisy shared runner) drift even with
//! identical code; the 25% budget is deliberately wide to absorb that.
//! CI diffs against the previous run's artifact from the same runner
//! class (carried in the actions cache), not a cross-machine baseline. A
//! red gate on an innocuous change means the runner was an outlier —
//! re-run the job before hunting a regression.
//!
//! Workloads **added or removed** between the two artifacts are
//! *informational*, never fatal: the total-work budget is computed over
//! the workload names the artifacts share, so landing a new workload row
//! (or retiring one) cannot trip the gate on its first run. A new
//! workload's warm-beats-cold invariant is still enforced immediately —
//! that check needs only the current artifact.
//!
//! Exit status: `0` healthy, `1` regression detected, `2` usage/IO/parse
//! problem.

use ffisafe_support::json::{self, Json};
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Total-work budget: current may cost at most this factor of baseline.
const MAX_WORK_RATIO: f64 = 1.25;

/// Parallel inflation budget: the widest uncached run of one workload may
/// do at most this factor of its serial run's work.
const MAX_JOBS_INFLATION: f64 = 1.5;

/// Absolute floor (seconds) for the jobs-inflation gate: work totals come
/// from per-thread CPU counters whose boundary reads are accurate to a
/// scheduler event, so sub-millisecond workloads can show large *ratios*
/// from sub-tick noise. A real inflation regression must also exceed this
/// many seconds of extra work.
const MIN_JOBS_INFLATION_EXCESS: f64 = 0.010;

/// Skew-makespan budget: the cost-scheduled sweep of the skewed corpus
/// must finish within this factor of the static name-chunked one.
const MAX_SKEW_RATIO: f64 = 0.75;

/// Wall clock only separates the two skew runs when the host can actually
/// run the shards in parallel; below this many cores the gate compares
/// packing critical paths instead.
const MIN_CORES_FOR_WALL: u64 = 4;

/// Telemetry budget: the traced run may cost at most this factor of the
/// untraced run of the same workload.
const MAX_TELEMETRY_RATIO: f64 = 1.05;

/// Absolute floor (seconds) for the telemetry gate: on a sub-second
/// workload a single scheduler quantum can exceed 5% of the wall clock,
/// so a real overhead regression must also cost this much extra time.
const MIN_TELEMETRY_EXCESS: f64 = 0.020;

struct Row {
    name: String,
    jobs: u64,
    cache: String,
    seconds: f64,
    /// Median per-request latency of a serve-load round; 0 on single-run
    /// workloads and on artifacts written before the field existed.
    p50_seconds: f64,
    work_seconds: f64,
    critical_path_seconds: f64,
    /// `"live"`, `"packing"` or `"untracked"`; empty on artifacts written
    /// before the method was recorded.
    critical_path_method: String,
}

fn rows(doc: &Json, which: &str) -> Result<Vec<Row>, String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{which}: no `rows` array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let field =
                |key: &str| r.get(key).ok_or_else(|| format!("{which}: rows[{i}] missing `{key}`"));
            Ok(Row {
                name: field("name")?
                    .as_str()
                    .ok_or_else(|| format!("{which}: rows[{i}].name not a string"))?
                    .to_string(),
                jobs: field("jobs")?
                    .as_u64()
                    .ok_or_else(|| format!("{which}: rows[{i}].jobs not an integer"))?,
                cache: field("cache")?
                    .as_str()
                    .ok_or_else(|| format!("{which}: rows[{i}].cache not a string"))?
                    .to_string(),
                seconds: field("seconds")?
                    .as_f64()
                    .ok_or_else(|| format!("{which}: rows[{i}].seconds not a number"))?,
                p50_seconds: r.get("p50_seconds").and_then(Json::as_f64).unwrap_or(0.0),
                work_seconds: field("work_seconds")?
                    .as_f64()
                    .ok_or_else(|| format!("{which}: rows[{i}].work_seconds not a number"))?,
                critical_path_seconds: r
                    .get("critical_path_seconds")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                critical_path_method: r
                    .get("critical_path_method")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            })
        })
        .collect()
}

/// Sum of `work_seconds` over the uncached serial rows of workloads in
/// `names` — the hardware-independent total-compute number the gate
/// budgets. Restricting to the shared name set keeps added/removed
/// workloads from masquerading as work regressions.
fn total_work(rows: &[Row], names: &BTreeSet<&str>) -> f64 {
    rows.iter()
        .filter(|r| names.contains(r.name.as_str()) && r.cache == "off" && r.jobs == 1)
        .map(|r| r.work_seconds)
        .sum()
}

/// Workloads whose warm run was not strictly faster than its cold run.
fn warm_regressions(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .filter(|r| r.cache == "cold")
        .filter_map(|cold| {
            let warm = rows.iter().find(|r| r.cache == "warm" && r.name == cold.name)?;
            (warm.seconds >= cold.seconds).then(|| {
                format!("{}: warm {:.4}s >= cold {:.4}s", cold.name, warm.seconds, cold.seconds)
            })
        })
        .collect()
}

/// Workloads whose widest uncached run does over [`MAX_JOBS_INFLATION`]×
/// the work of their serial uncached run, by more than
/// [`MIN_JOBS_INFLATION_EXCESS`] seconds. Needs only the current
/// artifact; workloads without both a `jobs = 1` and a wider uncached row
/// are skipped.
fn jobs_inflations(rows: &[Row]) -> Vec<String> {
    let names: BTreeSet<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    names
        .iter()
        .filter_map(|name| {
            let uncached = |r: &&Row| r.name == *name && r.cache == "off" && r.work_seconds > 0.0;
            let serial = rows.iter().filter(uncached).find(|r| r.jobs == 1)?;
            let widest = rows.iter().filter(uncached).max_by_key(|r| r.jobs)?;
            if widest.jobs == 1 {
                return None;
            }
            let ratio = widest.work_seconds / serial.work_seconds;
            let excess = widest.work_seconds - serial.work_seconds;
            (ratio > MAX_JOBS_INFLATION && excess > MIN_JOBS_INFLATION_EXCESS).then(|| {
                format!(
                    "{name}: jobs={} work {:.4}s is {ratio:.3}x the jobs=1 work {:.4}s",
                    widest.jobs, widest.work_seconds, serial.work_seconds
                )
            })
        })
        .collect()
}

/// The skew-makespan verdict over the current artifact, or `None` when it
/// carries no skew rows (older artifacts) or the static metric is zero.
/// Returns `(message, failed)`.
fn skew_verdict(rows: &[Row], host_cores: u64) -> Option<(String, bool)> {
    let find = |name: &str| rows.iter().find(|r| r.name == name && r.cache == "off");
    let static_row = find("sweep-skew-static")?;
    let cost_row = find("sweep-skew-cost")?;
    let (metric, static_v, cost_v) = if host_cores >= MIN_CORES_FOR_WALL {
        ("wall", static_row.seconds, cost_row.seconds)
    } else {
        // Critical paths are only comparable when both rows computed them
        // the same way (live timing vs packing makespan are different
        // quantities that share a unit).
        if static_row.critical_path_method != cost_row.critical_path_method {
            return Some((
                format!(
                    "skew makespan: critical-path methods differ (static `{}` vs cost `{}`); skipping the comparison",
                    static_row.critical_path_method, cost_row.critical_path_method
                ),
                false,
            ));
        }
        ("critical path", static_row.critical_path_seconds, cost_row.critical_path_seconds)
    };
    if static_v <= 0.0 {
        return None;
    }
    let ratio = cost_v / static_v;
    let message = format!(
        "skew makespan ({metric}, {host_cores} core(s)): static {static_v:.4}s -> cost {cost_v:.4}s ({ratio:.3}x, budget {MAX_SKEW_RATIO:.2}x)"
    );
    Some((message, ratio > MAX_SKEW_RATIO))
}

/// The telemetry-overhead verdict over the current artifact, or `None`
/// when it carries no telemetry pair (older artifacts). Returns
/// `(message, failed)`.
fn telemetry_verdict(rows: &[Row]) -> Option<(String, bool)> {
    let find = |name: &str| rows.iter().find(|r| r.name == name && r.cache == "off");
    let off = find("telemetry-off")?;
    let on = find("telemetry-on")?;
    if off.seconds <= 0.0 {
        return None;
    }
    let ratio = on.seconds / off.seconds;
    let excess = on.seconds - off.seconds;
    let message = format!(
        "telemetry overhead: untraced {:.4}s -> traced {:.4}s ({ratio:.3}x, budget {MAX_TELEMETRY_RATIO:.2}x or +{MIN_TELEMETRY_EXCESS:.3}s)",
        off.seconds, on.seconds
    );
    Some((message, ratio > MAX_TELEMETRY_RATIO && excess > MIN_TELEMETRY_EXCESS))
}

/// The serve-load latency verdict over the current artifact, or `None`
/// when it carries no serve-load rows (older artifacts) or the cold p50
/// is zero. Returns `(message, failed)`.
fn serve_verdict(rows: &[Row]) -> Option<(String, bool)> {
    let find = |cache: &str| rows.iter().find(|r| r.name == "serve-load" && r.cache == cache);
    let cold = find("cold")?;
    let warm = find("warm")?;
    if cold.p50_seconds <= 0.0 {
        return None;
    }
    let ratio = warm.p50_seconds / cold.p50_seconds;
    let message = format!(
        "serve warm latency: cold p50 {:.4}s -> warm p50 {:.4}s ({ratio:.3}x, must be < 1x)",
        cold.p50_seconds, warm.p50_seconds
    );
    Some((message, warm.p50_seconds >= cold.p50_seconds))
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let (baseline_rows, current_rows) =
        match (rows(&baseline, "baseline"), rows(&current, "current")) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::from(2);
            }
        };

    let mut failed = false;

    let regressions = warm_regressions(&current_rows);
    if regressions.is_empty() {
        println!("warm < cold on every workload ({} cold/warm pairs)", {
            current_rows.iter().filter(|r| r.cache == "cold").count()
        });
    } else {
        failed = true;
        println!("REGRESSION: warm run not strictly faster than cold:");
        for r in &regressions {
            println!("  {r}");
        }
    }

    let inflations = jobs_inflations(&current_rows);
    if inflations.is_empty() {
        println!(
            "parallel work within {MAX_JOBS_INFLATION:.1}x of serial on every multi-jobs workload"
        );
    } else {
        failed = true;
        println!("REGRESSION: parallel runs inflate total work (budget {MAX_JOBS_INFLATION:.1}x):");
        for r in &inflations {
            println!("  {r}");
        }
    }

    match skew_verdict(&current_rows, current.get("host_cores").and_then(Json::as_u64).unwrap_or(1))
    {
        Some((message, skew_failed)) => {
            println!("{message}");
            if skew_failed {
                failed = true;
                println!(
                    "REGRESSION: cost scheduling no longer beats static partitioning on the skewed corpus"
                );
            }
        }
        None => println!("no skew-makespan rows in the current artifact; skipping that gate"),
    }

    match telemetry_verdict(&current_rows) {
        Some((message, telemetry_failed)) => {
            println!("{message}");
            if telemetry_failed {
                failed = true;
                println!(
                    "REGRESSION: span recording is no longer cheap enough to leave on in production"
                );
            }
        }
        None => println!("no telemetry-overhead rows in the current artifact; skipping that gate"),
    }

    match serve_verdict(&current_rows) {
        Some((message, serve_failed)) => {
            println!("{message}");
            if serve_failed {
                failed = true;
                println!("REGRESSION: warm daemon requests are no longer faster than cold ones");
            }
        }
        None => println!("no serve-load rows in the current artifact; skipping that gate"),
    }

    let baseline_names: BTreeSet<&str> = baseline_rows.iter().map(|r| r.name.as_str()).collect();
    let current_names: BTreeSet<&str> = current_rows.iter().map(|r| r.name.as_str()).collect();
    let added: Vec<&&str> = current_names.difference(&baseline_names).collect();
    if !added.is_empty() {
        println!("workloads added since baseline (informational): {added:?}");
    }
    let removed: Vec<&&str> = baseline_names.difference(&current_names).collect();
    if !removed.is_empty() {
        println!("workloads removed since baseline (informational): {removed:?}");
    }
    let shared: BTreeSet<&str> = baseline_names.intersection(&current_names).copied().collect();

    let old_work = total_work(&baseline_rows, &shared);
    let new_work = total_work(&current_rows, &shared);
    if old_work <= 0.0 {
        println!("no shared uncached jobs=1 work rows with the baseline; skipping the work budget");
    } else {
        let ratio = new_work / old_work;
        println!(
            "total work: baseline {old_work:.4}s -> current {new_work:.4}s ({ratio:.3}x, budget {MAX_WORK_RATIO:.2}x)"
        );
        if ratio > MAX_WORK_RATIO {
            failed = true;
            println!(
                "REGRESSION: total inference work blew up by {:.1}% (> {:.0}% allowed)",
                (ratio - 1.0) * 100.0,
                (MAX_WORK_RATIO - 1.0) * 100.0
            );
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench trajectory healthy");
        ExitCode::SUCCESS
    }
}
