//! Benchmark specifications: the 11 glue libraries of Figure 9, their
//! paper-reported numbers, and the defect plan that reproduces them.
//!
//! The original library tarballs are not available offline; DESIGN.md
//! documents the substitution: a deterministic generator synthesizes, per
//! benchmark, an OCaml+C glue library of the same size seeded with the
//! same number of defects of the kinds §5.2 describes.

/// The row Figure 9 reports for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Lines of C code.
    pub c_loc: usize,
    /// Lines of OCaml code.
    pub ml_loc: usize,
    /// Analysis time on the paper's 2 GHz Pentium IV Xeon (seconds).
    pub time_s: f64,
    /// Outright errors.
    pub errors: usize,
    /// Questionable-practice warnings.
    pub warnings: usize,
    /// False positives.
    pub false_pos: usize,
    /// Imprecision reports.
    pub imprecision: usize,
}

/// How many defects of each kind to seed (see §5.2 for the taxonomy).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeedPlan {
    /// `Val_int`/`Int_val` confusion (type error).
    pub val_int_confusion: usize,
    /// Live heap pointer unregistered across a GC call (GC error).
    pub missing_registration: usize,
    /// `CAMLparam` without `CAMLreturn` (GC error).
    pub register_no_release: usize,
    /// Option block accessed as its payload (type error).
    pub option_misuse: usize,
    /// Other OCaml/C type disagreements (type error).
    pub type_confusion: usize,
    /// Trailing `unit` parameter missing from the C definition (warning).
    pub trailing_unit: usize,
    /// Polymorphic `'a` pinned to a concrete type by C (warning).
    pub poly_abuse: usize,
    /// Total spurious reports from polymorphic-variant uses (false
    /// positives; one report per use site).
    pub poly_variant_fp_uses: usize,
    /// Pairs of functions doing pointer arithmetic disguised as integer
    /// arithmetic (two spurious reports per pair: the conflicting cast and
    /// the re-entry of the conflict at the return).
    pub disguised_ptr_pairs: usize,
    /// Statically-unknown offsets into OCaml blocks (imprecision).
    pub unknown_offset: usize,
    /// Global `value` variables (imprecision).
    pub global_value: usize,
    /// Calls through C function pointers (imprecision).
    pub fn_ptr: usize,
}

impl SeedPlan {
    /// Planned number of true errors.
    pub fn planned_errors(&self) -> usize {
        self.val_int_confusion
            + self.missing_registration
            + self.register_no_release
            + self.option_misuse
            + self.type_confusion
    }

    /// Planned number of warnings.
    pub fn planned_warnings(&self) -> usize {
        self.trailing_unit + self.poly_abuse
    }

    /// Planned number of false-positive reports.
    pub fn planned_false_pos(&self) -> usize {
        self.poly_variant_fp_uses + 2 * self.disguised_ptr_pairs
    }

    /// Planned number of imprecision reports.
    pub fn planned_imprecision(&self) -> usize {
        self.unknown_offset + self.global_value + self.fn_ptr
    }
}

/// One benchmark to synthesize and analyze.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Benchmark name as in Figure 9.
    pub name: &'static str,
    /// The paper's reported row.
    pub paper: PaperRow,
    /// Defects to seed.
    pub seeds: SeedPlan,
    /// RNG seed for deterministic generation.
    pub rng_seed: u64,
}

/// The 11 benchmarks of Figure 9 with their defect plans.
///
/// Error/warning kinds follow §5.2's narrative: Val_int/Int_val confusion
/// in ocaml-ssl/ocaml-glpk/lablgtk, registration leaks in ocaml-mad and
/// ocaml-vorbis, missing registration in ftplib/lablgl/lablgtk, the option
/// misuse in lablgtk, trailing-unit warnings in ssl/glpk/ftplib/lablgl/
/// lablgtk, the polymorphic seek in gz, polymorphic-variant false
/// positives in lablgl/lablgtk and disguised pointer arithmetic in
/// lablgtk; the global-value and function-pointer imprecision counts (10
/// and 8 across the suite) land in lablgl/lablgtk.
pub fn paper_benchmarks() -> Vec<BenchSpec> {
    vec![
        BenchSpec {
            name: "apm-1.00",
            paper: PaperRow {
                c_loc: 124,
                ml_loc: 156,
                time_s: 1.3,
                errors: 0,
                warnings: 0,
                false_pos: 0,
                imprecision: 0,
            },
            seeds: SeedPlan::default(),
            rng_seed: 0xA01,
        },
        BenchSpec {
            name: "camlzip-1.01",
            paper: PaperRow {
                c_loc: 139,
                ml_loc: 820,
                time_s: 1.7,
                errors: 0,
                warnings: 0,
                false_pos: 0,
                imprecision: 1,
            },
            seeds: SeedPlan { unknown_offset: 1, ..SeedPlan::default() },
            rng_seed: 0xA02,
        },
        BenchSpec {
            name: "ocaml-mad-0.1.0",
            paper: PaperRow {
                c_loc: 139,
                ml_loc: 38,
                time_s: 4.2,
                errors: 1,
                warnings: 0,
                false_pos: 0,
                imprecision: 0,
            },
            seeds: SeedPlan { register_no_release: 1, ..SeedPlan::default() },
            rng_seed: 0xA03,
        },
        BenchSpec {
            name: "ocaml-ssl-0.1.0",
            paper: PaperRow {
                c_loc: 187,
                ml_loc: 151,
                time_s: 1.5,
                errors: 4,
                warnings: 2,
                false_pos: 0,
                imprecision: 0,
            },
            seeds: SeedPlan { val_int_confusion: 4, trailing_unit: 2, ..SeedPlan::default() },
            rng_seed: 0xA04,
        },
        BenchSpec {
            name: "ocaml-glpk-0.1.1",
            paper: PaperRow {
                c_loc: 305,
                ml_loc: 147,
                time_s: 1.3,
                errors: 4,
                warnings: 1,
                false_pos: 0,
                imprecision: 1,
            },
            seeds: SeedPlan {
                val_int_confusion: 4,
                trailing_unit: 1,
                unknown_offset: 1,
                ..SeedPlan::default()
            },
            rng_seed: 0xA05,
        },
        BenchSpec {
            name: "gz-0.5.5",
            paper: PaperRow {
                c_loc: 572,
                ml_loc: 192,
                time_s: 2.2,
                errors: 0,
                warnings: 1,
                false_pos: 0,
                imprecision: 1,
            },
            seeds: SeedPlan { poly_abuse: 1, unknown_offset: 1, ..SeedPlan::default() },
            rng_seed: 0xA06,
        },
        BenchSpec {
            name: "ocaml-vorbis-0.1.1",
            paper: PaperRow {
                c_loc: 1183,
                ml_loc: 443,
                time_s: 2.8,
                errors: 1,
                warnings: 0,
                false_pos: 0,
                imprecision: 2,
            },
            seeds: SeedPlan { register_no_release: 1, unknown_offset: 2, ..SeedPlan::default() },
            rng_seed: 0xA07,
        },
        BenchSpec {
            name: "ftplib-0.12",
            paper: PaperRow {
                c_loc: 1401,
                ml_loc: 21,
                time_s: 1.7,
                errors: 1,
                warnings: 2,
                false_pos: 0,
                imprecision: 1,
            },
            seeds: SeedPlan {
                missing_registration: 1,
                trailing_unit: 2,
                unknown_offset: 1,
                ..SeedPlan::default()
            },
            rng_seed: 0xA08,
        },
        BenchSpec {
            name: "lablgl-1.00",
            paper: PaperRow {
                c_loc: 1586,
                ml_loc: 1357,
                time_s: 7.5,
                errors: 4,
                warnings: 5,
                false_pos: 140,
                imprecision: 20,
            },
            seeds: SeedPlan {
                missing_registration: 1,
                type_confusion: 3,
                trailing_unit: 5,
                poly_variant_fp_uses: 140,
                unknown_offset: 14,
                global_value: 3,
                fn_ptr: 3,
                ..SeedPlan::default()
            },
            rng_seed: 0xA09,
        },
        BenchSpec {
            name: "cryptokit-1.2",
            paper: PaperRow {
                c_loc: 2173,
                ml_loc: 2315,
                time_s: 5.4,
                errors: 0,
                warnings: 0,
                false_pos: 0,
                imprecision: 1,
            },
            seeds: SeedPlan { unknown_offset: 1, ..SeedPlan::default() },
            rng_seed: 0xA0A,
        },
        BenchSpec {
            name: "lablgtk-2.2.0",
            paper: PaperRow {
                c_loc: 5998,
                ml_loc: 14847,
                time_s: 61.3,
                errors: 9,
                warnings: 11,
                false_pos: 74,
                imprecision: 48,
            },
            seeds: SeedPlan {
                val_int_confusion: 5,
                option_misuse: 1,
                type_confusion: 2,
                missing_registration: 1,
                trailing_unit: 11,
                poly_variant_fp_uses: 60,
                disguised_ptr_pairs: 7,
                unknown_offset: 36,
                global_value: 7,
                fn_ptr: 5,
                ..SeedPlan::default()
            },
            rng_seed: 0xA0B,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_figure9() {
        let specs = paper_benchmarks();
        assert_eq!(specs.len(), 11);
        let errors: usize = specs.iter().map(|s| s.seeds.planned_errors()).sum();
        let warnings: usize = specs.iter().map(|s| s.seeds.planned_warnings()).sum();
        // one report per poly-variant use, one per disguised pair
        let fp_reports: usize = specs.iter().map(|s| s.seeds.planned_false_pos()).sum();
        let imp: usize = specs.iter().map(|s| s.seeds.planned_imprecision()).sum();
        assert_eq!(errors, 24);
        assert_eq!(warnings, 22);
        assert_eq!(fp_reports, 214);
        assert_eq!(imp, 75);
    }

    #[test]
    fn per_spec_plan_matches_paper_row() {
        for s in paper_benchmarks() {
            assert_eq!(s.seeds.planned_errors(), s.paper.errors, "{}", s.name);
            assert_eq!(s.seeds.planned_warnings(), s.paper.warnings, "{}", s.name);
            assert_eq!(s.seeds.planned_imprecision(), s.paper.imprecision, "{}", s.name);
        }
    }
}
