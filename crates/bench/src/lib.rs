//! Benchmark corpus and Figure 9 reproduction harness for `ffisafe`.
//!
//! The paper evaluates on 11 real glue libraries (apm, camlzip, ocaml-mad,
//! ocaml-ssl, ocaml-glpk, gz, ocaml-vorbis, ftplib, lablgl, cryptokit,
//! lablgtk). Those tarballs are not available offline, so this crate
//! *synthesizes* a stand-in for each: a deterministic generator emits an
//! OCaml+C glue library of the same size with the same number of seeded
//! defects of the kinds §5.2 describes — and, crucially, records ground
//! truth so the harness can score every diagnostic as a true positive,
//! false positive or unexpected (see DESIGN.md, "Substitutions").
//!
//! * [`spec`] — the 11 benchmark rows and defect plans;
//! * [`corpus`] — the source generator with ground truth;
//! * [`figure9`] — run + score + render the paper-vs-measured table;
//! * [`runner`] — parametric scaling workloads;
//! * [`pipeline_bench`] — worker-pool scaling measurements
//!   (`BENCH_pipeline.json`).
//!
//! ```
//! use ffisafe_bench::{figure9, spec};
//! use ffisafe_core::AnalysisOptions;
//!
//! let spec = &spec::paper_benchmarks()[0]; // apm-1.00
//! let row = figure9::run_benchmark(spec, AnalysisOptions::default());
//! assert_eq!(row.errors, 0);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod figure9;
pub mod harness;
pub mod pipeline_bench;
pub mod runner;
pub mod spec;

pub use corpus::{Benchmark, GenFunc, SeedKind};
pub use figure9::{render_table, run_all, run_benchmark, Figure9Row};
pub use spec::{paper_benchmarks, BenchSpec, PaperRow, SeedPlan};
