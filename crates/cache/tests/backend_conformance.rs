//! Backend conformance: the local [`CacheStore`] and the remote
//! daemon/client pair must be observationally identical through the
//! [`CacheBackend`] trait — same ops, same results, same occupancy — so a
//! sweep pointed at `tcp://…` instead of a directory produces
//! byte-identical reports.

use ffisafe_cache::{
    open_backend, CacheBackend, CacheLocation, CacheServer, CacheStore, RemoteBackend, Tier,
};
use ffisafe_support::Fingerprint;
use std::path::PathBuf;
use std::sync::Arc;

const VERSION: &str = "ffisafe-test schema 999";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffisafe-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: usize) -> Fingerprint {
    Fingerprint::of_bytes(format!("conformance key {i}").as_bytes())
}

/// Spins up a daemon over a fresh directory and returns a connected
/// remote backend (plus the directory, for on-disk tampering).
fn remote_backend(tag: &str) -> (Arc<dyn CacheBackend>, PathBuf) {
    let dir = temp_dir(tag);
    let store = CacheStore::open(&dir, VERSION).unwrap();
    let addr = CacheServer::bind("127.0.0.1:0", store).unwrap().spawn().unwrap();
    let backend = open_backend(&CacheLocation::parse(&format!("tcp://{addr}")), VERSION).unwrap();
    (backend, dir)
}

fn local_backend(tag: &str) -> (Arc<dyn CacheBackend>, PathBuf) {
    let dir = temp_dir(tag);
    let backend = open_backend(&CacheLocation::parse(&dir.display().to_string()), VERSION).unwrap();
    (backend, dir)
}

/// Runs one op script against a backend and returns every observable.
fn run_script(backend: &dyn CacheBackend) -> (Vec<Option<Vec<u8>>>, u64, u64) {
    let mut observed = Vec::new();
    observed.push(backend.get(Tier::Function, key(0))); // cold miss
    for i in 0..8 {
        let tier = if i % 2 == 0 { Tier::Function } else { Tier::Report };
        backend.put(tier, key(i), format!("payload {i}").as_bytes()).unwrap();
    }
    backend.put(Tier::Function, key(0), b"replaced").unwrap(); // overwrite
    for i in 0..8 {
        let tier = if i % 2 == 0 { Tier::Function } else { Tier::Report };
        observed.push(backend.get(tier, key(i)));
    }
    observed.push(backend.get(Tier::Report, key(0))); // same fp, other tier: miss
    backend.flush().unwrap();
    let stats = backend.stats();
    (observed, stats.entries as u64, stats.live_bytes)
}

#[test]
fn both_backends_observe_identical_results_for_the_same_ops() {
    let (local, local_dir) = local_backend("script-local");
    let (remote, remote_dir) = remote_backend("script-remote");
    let local_out = run_script(local.as_ref());
    let remote_out = run_script(remote.as_ref());
    assert_eq!(local_out, remote_out);
    assert_eq!(local_out.0[1].as_deref(), Some(b"replaced" as &[u8]));
    assert_eq!(local_out.1, 8, "8 distinct (tier, fp) keys");
    let _ = std::fs::remove_dir_all(&local_dir);
    let _ = std::fs::remove_dir_all(&remote_dir);
}

/// Craft an orphan: a valid entry file present on disk but absent from
/// the live index. `adopt_orphans` through either backend must index it.
fn orphan_is_adopted(backend: &dyn CacheBackend, dir: &std::path::Path) {
    let donor_dir = temp_dir("orphan-donor");
    let donor = CacheStore::open(&donor_dir, VERSION).unwrap();
    let fp = Fingerprint::of_bytes(b"orphaned payload key");
    donor.put(Tier::Function, fp, b"orphaned payload").unwrap();
    let name = format!("fn-{}.bin", fp.to_hex());
    std::fs::copy(donor_dir.join(&name), dir.join(&name)).unwrap();
    let _ = std::fs::remove_dir_all(&donor_dir);

    assert_eq!(backend.get(Tier::Function, fp), None, "unindexed file is a miss");
    backend.adopt_orphans();
    assert_eq!(
        backend.get(Tier::Function, fp).as_deref(),
        Some(b"orphaned payload" as &[u8]),
        "adopted orphan must be served"
    );
}

#[test]
fn orphaned_entries_are_adopted_by_both_backends() {
    let (local, local_dir) = local_backend("orphan-local");
    orphan_is_adopted(local.as_ref(), &local_dir);
    let (remote, remote_dir) = remote_backend("orphan-remote");
    orphan_is_adopted(remote.as_ref(), &remote_dir);
    let _ = std::fs::remove_dir_all(&local_dir);
    let _ = std::fs::remove_dir_all(&remote_dir);
}

/// Corrupt the entry file on disk; both backends must degrade to a miss —
/// never an error — and stay consistent afterwards.
fn corruption_is_a_miss(backend: &dyn CacheBackend, dir: &std::path::Path) {
    let fp = Fingerprint::of_bytes(b"soon to be corrupted");
    backend.put(Tier::Report, fp, b"pristine payload").unwrap();
    assert!(backend.get(Tier::Report, fp).is_some());
    let path = dir.join(format!("rp-{}.bin", fp.to_hex()));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(backend.get(Tier::Report, fp), None, "corrupt entry reads as a miss");
    assert_eq!(backend.get(Tier::Report, fp), None, "and stays a miss");
    backend.put(Tier::Report, fp, b"rewritten").unwrap();
    assert_eq!(backend.get(Tier::Report, fp).as_deref(), Some(b"rewritten" as &[u8]));
}

#[test]
fn corrupted_entries_are_a_miss_never_an_error_on_both_backends() {
    let (local, local_dir) = local_backend("corrupt-local");
    corruption_is_a_miss(local.as_ref(), &local_dir);
    let (remote, remote_dir) = remote_backend("corrupt-remote");
    corruption_is_a_miss(remote.as_ref(), &remote_dir);
    let _ = std::fs::remove_dir_all(&local_dir);
    let _ = std::fs::remove_dir_all(&remote_dir);
}

#[test]
fn analyzer_version_mismatch_refuses_the_remote_session() {
    let dir = temp_dir("version-refusal");
    let store = CacheStore::open(&dir, "ffisafe-old schema 1").unwrap();
    store.put(Tier::Function, key(1), b"other clients still need this").unwrap();
    let addr = CacheServer::bind("127.0.0.1:0", store).unwrap().spawn().unwrap();

    let err = match RemoteBackend::connect(&format!("tcp://{addr}"), "ffisafe-new schema 2") {
        Err(err) => err,
        Ok(_) => panic!("mismatched analyzer version must refuse the session"),
    };
    assert!(err.to_string().contains("schema"), "{err}");

    // The refusal must not wipe the store out from under matching clients.
    let survivor =
        RemoteBackend::connect(&format!("tcp://{addr}"), "ffisafe-old schema 1").unwrap();
    assert!(survivor.get(Tier::Function, key(1)).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_distinguishes_urls_from_directories() {
    assert!(matches!(CacheLocation::parse("tcp://127.0.0.1:7070"), CacheLocation::Url(_)));
    assert!(matches!(CacheLocation::parse("/var/cache/ffisafe"), CacheLocation::Dir(_)));
    assert!(matches!(CacheLocation::parse("relative/dir"), CacheLocation::Dir(_)));
}

#[test]
fn sharded_index_survives_concurrent_get_put_hammering() {
    let dir = temp_dir("stress-local");
    let store = Arc::new(CacheStore::open(&dir, VERSION).unwrap());
    let threads = 8;
    let per_thread = 200;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let fp = Fingerprint::of_bytes(format!("stress {t} {i}").as_bytes());
                    let payload = format!("value {t} {i}");
                    store.put(Tier::Function, fp, payload.as_bytes()).unwrap();
                    // read back own write plus a neighbor's key (may or
                    // may not exist yet — must never error or corrupt)
                    assert_eq!(store.get(Tier::Function, fp).as_deref(), Some(payload.as_bytes()));
                    let other = Fingerprint::of_bytes(
                        format!("stress {} {i}", (t + 1) % threads).as_bytes(),
                    );
                    if let Some(seen) = store.get(Tier::Function, other) {
                        assert_eq!(seen, format!("value {} {i}", (t + 1) % threads).into_bytes());
                    }
                    if i % 64 == 0 {
                        store.flush().unwrap();
                    }
                }
            });
        }
    });
    store.flush().unwrap();
    let stats = store.stats();
    assert_eq!(stats.entries, threads * per_thread, "every write indexed exactly once");
    for t in 0..threads {
        for i in 0..per_thread {
            let fp = Fingerprint::of_bytes(format!("stress {t} {i}").as_bytes());
            assert_eq!(
                store.get(Tier::Function, fp).as_deref(),
                Some(format!("value {t} {i}").as_bytes())
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_backend_is_shareable_across_threads() {
    let (remote, dir) = remote_backend("stress-remote");
    let threads = 4;
    let per_thread = 50;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let remote = Arc::clone(&remote);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let fp = Fingerprint::of_bytes(format!("remote stress {t} {i}").as_bytes());
                    let payload = format!("remote value {t} {i}");
                    remote.put(Tier::Function, fp, payload.as_bytes()).unwrap();
                    assert_eq!(remote.get(Tier::Function, fp).as_deref(), Some(payload.as_bytes()));
                }
            });
        }
    });
    assert_eq!(remote.stats().entries, threads * per_thread);
    let _ = std::fs::remove_dir_all(&dir);
}
