//! The remote cache backend: `ffisafe cache-serve` and its client.
//!
//! A [`CacheServer`] wraps one local [`CacheStore`] and serves it to any
//! number of clients over plain `std::net::TcpStream` — no TLS, no HTTP,
//! no dependencies — so N sweep processes (or machines) share one logical
//! store. A [`RemoteBackend`] is the client side, implementing
//! [`CacheBackend`] by forwarding every operation to the daemon.
//!
//! ## Wire protocol (version [`WIRE_PROTOCOL_VERSION`])
//!
//! Every message is a *frame*: a little-endian `u32` byte length followed
//! by that many body bytes, encoded with the same [`Encoder`]/[`Decoder`]
//! codec the on-disk formats use. Frames over [`MAX_FRAME_BYTES`] are
//! rejected — a corrupt length prefix must not allocate unbounded memory.
//!
//! A connection starts with one handshake round-trip, then carries any
//! number of requests, one reply per request, strictly in order:
//!
//! ```text
//! client → HELLO    u8 op, u32 protocol version, str analyzer version
//! server → reply    u8 status (0 ok; else str error follows)
//!
//! client → GET      u8 op, u8 tier, u64 fp.0, u64 fp.1
//! server → reply    u8 1 + len + payload bytes (hit) | u8 0 (miss)
//!
//! client → PUT      u8 op, u8 tier, u64 fp.0, u64 fp.1, len + payload
//! server → reply    u8 status
//!
//! client → FLUSH | STATS | ADOPT      u8 op
//! server → reply    u8 status [, STATS: 8 × u64 counter/occupancy]
//!
//! client → METRICS  u8 op
//! server → reply    u8 status, str Prometheus text exposition
//! ```
//!
//! The handshake pins both the protocol version and the analyzer version:
//! a server for a different analyzer refuses the session, mirroring the
//! wipe-on-version-mismatch rule of the local store — except a shared
//! daemon must *refuse* rather than wipe, because other clients of the
//! matching version may still be using the entries.
//!
//! The client degrades instead of failing: a dead connection is redialed
//! once per operation, and an operation that still cannot complete reads
//! as a miss (`get`) or surfaces an `io::Error` the pipeline ignores
//! (`put`). Requests are sharded across [`CLIENT_CONNS`] connections by
//! fingerprint prefix, so parallel workers do not serialize on one
//! socket any more than they do on one index lock.

use crate::backend::CacheBackend;
use crate::codec::{Decoder, Encoder};
use crate::store::{CacheStats, CacheStore, Tier};
use ffisafe_support::telemetry::{self, LogLevel, MetricsRegistry, TraceFileWriter};
use ffisafe_support::Fingerprint;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bump when the frame layout or operation set changes. A mismatch ends
/// the session at the handshake. Version 2 added the METRICS op.
pub const WIRE_PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one frame body; larger length prefixes are corruption.
const MAX_FRAME_BYTES: usize = 512 * 1024 * 1024;

/// Connections a client holds, addressed by fingerprint prefix.
const CLIENT_CONNS: usize = 4;

const OP_HELLO: u8 = 0;
const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_FLUSH: u8 = 3;
const OP_STATS: u8 = 4;
const OP_ADOPT: u8 = 5;
const OP_METRICS: u8 = 6;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Stable lowercase op name, used in span names, logs, and metric labels.
fn op_name(op: u8) -> &'static str {
    match op {
        OP_HELLO => "hello",
        OP_GET => "get",
        OP_PUT => "put",
        OP_FLUSH => "flush",
        OP_STATS => "stats",
        OP_ADOPT => "adopt",
        OP_METRICS => "metrics",
        _ => "unknown",
    }
}

/// Client-side span name for an op (`cache.rpc.<op>`).
fn rpc_span_name(op: u8) -> &'static str {
    match op {
        OP_HELLO => "cache.rpc.hello",
        OP_GET => "cache.rpc.get",
        OP_PUT => "cache.rpc.put",
        OP_FLUSH => "cache.rpc.flush",
        OP_STATS => "cache.rpc.stats",
        OP_ADOPT => "cache.rpc.adopt",
        OP_METRICS => "cache.rpc.metrics",
        _ => "cache.rpc.unknown",
    }
}

/// Server-side span name for an op (`cache.serve.<op>`).
fn serve_span_name(op: u8) -> &'static str {
    match op {
        OP_HELLO => "cache.serve.hello",
        OP_GET => "cache.serve.get",
        OP_PUT => "cache.serve.put",
        OP_FLUSH => "cache.serve.flush",
        OP_STATS => "cache.serve.stats",
        OP_ADOPT => "cache.serve.adopt",
        OP_METRICS => "cache.serve.metrics",
        _ => "cache.serve.unknown",
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data(format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Splits a frame whose tail is a length-prefixed payload: decodes the
/// length with `d`, checks it spans exactly the rest of `body`, and
/// returns the payload bytes.
fn tail_payload(d: &mut Decoder<'_>, body: &[u8]) -> io::Result<Vec<u8>> {
    let len = d.get_len().map_err(|e| bad_data(e.to_string()))?;
    if d.remaining() != len {
        return Err(bad_data("payload length does not match the frame"));
    }
    Ok(body[body.len() - len..].to_vec())
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Lock-free lifetime counters for one daemon: sessions, per-op request
/// counts, bytes moved, request errors. Feeds the `METRICS` wire op and
/// the daemon's `--metrics-out` file.
#[derive(Debug, Default)]
struct ServerCounters {
    sessions_opened: AtomicU64,
    sessions_refused: AtomicU64,
    /// Requests served, indexed by op code (unknown ops land in the last
    /// slot).
    ops: [AtomicU64; 8],
    op_errors: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl ServerCounters {
    fn count_op(&self, op: u8) {
        let idx = (op as usize).min(self.ops.len() - 1);
        self.ops[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by every session thread of one daemon.
struct ServerShared {
    store: Arc<CacheStore>,
    counters: ServerCounters,
    /// Shared trace-flush policy (accumulate + atomic whole-snapshot
    /// rewrite); also used by `ffisafe serve`, so both daemons age their
    /// `--trace-out` files identically.
    trace: Option<TraceFileWriter>,
    metrics_out: Option<PathBuf>,
}

impl ServerShared {
    /// Builds the daemon's metrics registry: store counters/occupancy plus
    /// server lifetime counters.
    fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.store.stats().feed_metrics(&mut reg);
        let c = &self.counters;
        reg.inc_counter(
            "ffisafe_server_sessions_opened_total",
            "Client sessions accepted after a successful handshake",
            &[],
            c.sessions_opened.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_sessions_refused_total",
            "Client sessions refused at the handshake (version mismatch)",
            &[],
            c.sessions_refused.load(Ordering::Relaxed),
        );
        for (op, slot) in c.ops.iter().enumerate() {
            let count = slot.load(Ordering::Relaxed);
            if count > 0 {
                reg.inc_counter(
                    "ffisafe_server_ops_total",
                    "Requests served, by wire op",
                    &[("op", op_name(op as u8))],
                    count,
                );
            }
        }
        reg.inc_counter(
            "ffisafe_server_op_errors_total",
            "Requests that returned an error status",
            &[],
            c.op_errors.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_bytes_read_total",
            "Request frame bytes read from clients",
            &[],
            c.bytes_read.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_bytes_written_total",
            "Reply frame bytes written to clients",
            &[],
            c.bytes_written.load(Ordering::Relaxed),
        );
        reg
    }

    /// Rewrites the daemon's `--trace-out` / `--metrics-out` files; called
    /// by each session thread as it ends, so the files are always a
    /// complete snapshot of the daemon so far.
    fn export(&self) {
        if let Some(path) = &self.metrics_out {
            if let Err(e) = std::fs::write(path, self.metrics().to_prometheus()) {
                telemetry::log(
                    LogLevel::Error,
                    "cache-serve",
                    &format!("failed to write {}: {e}", path.display()),
                );
            }
        }
        if let Some(writer) = &self.trace {
            if let Err(e) = writer.flush() {
                telemetry::log(
                    LogLevel::Error,
                    "cache-serve",
                    &format!("failed to write {}: {e}", writer.path().display()),
                );
            }
        }
    }
}

/// A daemon serving one [`CacheStore`] to many TCP clients.
///
/// Each accepted connection gets its own thread; the store itself is
/// internally sharded, so concurrent clients contend only on the index
/// shards their keys map to, exactly as in-process workers do.
pub struct CacheServer {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl CacheServer {
    /// Binds `addr` (e.g. `127.0.0.1:7441`, or port 0 for an ephemeral
    /// port) and prepares to serve `store`.
    pub fn bind(addr: impl ToSocketAddrs, store: CacheStore) -> io::Result<CacheServer> {
        Ok(CacheServer {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(ServerShared {
                store: Arc::new(store),
                counters: ServerCounters::default(),
                trace: None,
                metrics_out: None,
            }),
        })
    }

    /// Rewrite a Chrome trace-event JSON snapshot of the daemon's spans to
    /// `path` after each session ends. Must be called before serving.
    pub fn set_trace_out(&mut self, path: PathBuf) {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.trace = Some(TraceFileWriter::new(path));
        }
    }

    /// Rewrite a Prometheus text snapshot of the daemon's metrics to
    /// `path` after each session ends. Must be called before serving.
    pub fn set_metrics_out(&mut self, path: PathBuf) {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.metrics_out = Some(path);
        }
    }

    /// The bound address — useful when binding port 0.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts clients forever, one thread per connection. Per-connection
    /// errors end that session only; the daemon keeps serving. Returns
    /// only if the listener itself fails.
    pub fn serve(&self) -> io::Result<()> {
        if let Ok(addr) = self.local_addr() {
            telemetry::log(LogLevel::Info, "cache-serve", &format!("listening on {addr}"));
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = serve_client(stream, &shared);
                shared.export();
            });
        }
    }

    /// Runs [`CacheServer::serve`] on a background thread and returns the
    /// bound address. The thread runs for the rest of the process; tests
    /// and in-process callers use this, the CLI calls `serve` directly.
    pub fn spawn(self) -> io::Result<std::net::SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.serve();
        });
        Ok(addr)
    }
}

/// One client session: handshake, then request/reply until disconnect.
fn serve_client(mut stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let peer =
        stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_string());
    handshake_server(&mut stream, shared, &peer)?;
    let (mut ops, mut bytes_in, mut bytes_out) = (0u64, 0u64, 0u64);
    let result = loop {
        let body = match read_frame(&mut stream) {
            Ok(body) => body,
            // Disconnect is the normal end of a session.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => break Err(e),
        };
        let op = body.first().copied().unwrap_or(u8::MAX);
        let mut span = telemetry::span_with(serve_span_name(op), || {
            vec![("bytes_in", body.len().to_string())]
        });
        let reply = handle_request(&body, shared).unwrap_or_else(|e| {
            shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
            telemetry::log(
                LogLevel::Warn,
                "cache-serve",
                &format!("{} from {peer}: {} failed: {e}", op_name(op), op_name(op)),
            );
            let mut r = Encoder::new();
            r.put_u8(STATUS_ERR);
            r.put_str(&e.to_string());
            r.into_bytes()
        });
        span.arg("bytes_out", reply.len().to_string());
        drop(span);
        if telemetry::log_enabled(LogLevel::Debug) {
            telemetry::log(
                LogLevel::Debug,
                "cache-serve",
                &format!("{} from {peer}: {} B in, {} B out", op_name(op), body.len(), reply.len()),
            );
        }
        shared.counters.count_op(op);
        shared.counters.bytes_read.fetch_add(body.len() as u64, Ordering::Relaxed);
        shared.counters.bytes_written.fetch_add(reply.len() as u64, Ordering::Relaxed);
        ops += 1;
        bytes_in += body.len() as u64;
        bytes_out += reply.len() as u64;
        if let Err(e) = write_frame(&mut stream, &reply) {
            break Err(e);
        }
    };
    telemetry::log(
        LogLevel::Info,
        "cache-serve",
        &format!("session closed ({peer}): {ops} op(s), {bytes_in} B in, {bytes_out} B out"),
    );
    result
}

fn handshake_server(stream: &mut TcpStream, shared: &ServerShared, peer: &str) -> io::Result<()> {
    let body = read_frame(stream)?;
    let _span =
        telemetry::span_with("cache.serve.hello", || vec![("bytes_in", body.len().to_string())]);
    let refusal = check_hello(&body, shared.store.analyzer_version());
    shared.counters.count_op(OP_HELLO);
    let mut r = Encoder::new();
    match &refusal {
        None => {
            r.put_u8(STATUS_OK);
            shared.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
            telemetry::log(LogLevel::Info, "cache-serve", &format!("session open ({peer})"));
        }
        Some(msg) => {
            r.put_u8(STATUS_ERR);
            r.put_str(msg);
            shared.counters.sessions_refused.fetch_add(1, Ordering::Relaxed);
            telemetry::log(
                LogLevel::Warn,
                "cache-serve",
                &format!("session refused ({peer}): {msg}"),
            );
        }
    }
    write_frame(stream, &r.into_bytes())?;
    match refusal {
        None => Ok(()),
        Some(msg) => Err(bad_data(msg)),
    }
}

/// Why a HELLO must be refused, or `None` to accept the session.
fn check_hello(body: &[u8], server_version: &str) -> Option<String> {
    let mut d = Decoder::new(body);
    match d.get_u8() {
        Ok(OP_HELLO) => {}
        Ok(_) => return Some("expected HELLO".to_string()),
        Err(e) => return Some(format!("malformed HELLO: {e}")),
    }
    let proto = match d.get_u32() {
        Ok(v) => v,
        Err(e) => return Some(format!("malformed HELLO: {e}")),
    };
    if proto != WIRE_PROTOCOL_VERSION {
        return Some(format!(
            "protocol version mismatch: client {proto}, server {WIRE_PROTOCOL_VERSION}"
        ));
    }
    let version = match d.get_str() {
        Ok(v) => v,
        Err(e) => return Some(format!("malformed HELLO: {e}")),
    };
    if version != server_version {
        return Some(format!(
            "analyzer version mismatch: client {version:?}, server {server_version:?}"
        ));
    }
    None
}

fn handle_request(body: &[u8], shared: &ServerShared) -> io::Result<Vec<u8>> {
    let store = &*shared.store;
    let mut d = Decoder::new(body);
    let op = d.get_u8().map_err(|e| bad_data(e.to_string()))?;
    let mut r = Encoder::new();
    match op {
        OP_GET => {
            let (tier, fp) = decode_key(&mut d)?;
            match store.get(tier, fp) {
                Some(payload) => {
                    r.put_u8(1);
                    r.put_len(payload.len());
                    let mut bytes = r.into_bytes();
                    bytes.extend_from_slice(&payload);
                    return Ok(bytes);
                }
                None => r.put_u8(0),
            }
        }
        OP_PUT => {
            let (tier, fp) = decode_key(&mut d)?;
            let payload = tail_payload(&mut d, body)?;
            store.put(tier, fp, &payload)?;
            r.put_u8(STATUS_OK);
        }
        OP_FLUSH => {
            store.flush()?;
            r.put_u8(STATUS_OK);
        }
        OP_STATS => {
            let s = store.stats();
            r.put_u8(STATUS_OK);
            r.put_u64(s.fn_hits as u64);
            r.put_u64(s.fn_misses as u64);
            r.put_u64(s.report_hits as u64);
            r.put_u64(s.report_misses as u64);
            r.put_u64(s.evictions as u64);
            r.put_u64(s.corrupt as u64);
            r.put_u64(s.entries as u64);
            r.put_u64(s.live_bytes);
        }
        OP_ADOPT => {
            store.adopt_orphans();
            r.put_u8(STATUS_OK);
        }
        OP_METRICS => {
            r.put_u8(STATUS_OK);
            r.put_str(&shared.metrics().to_prometheus());
        }
        other => return Err(bad_data(format!("unknown op {other}"))),
    }
    Ok(r.into_bytes())
}

fn decode_key(d: &mut Decoder<'_>) -> io::Result<(Tier, Fingerprint)> {
    let raw = d.get_u8().map_err(|e| bad_data(e.to_string()))?;
    let tier = match raw {
        0 => Tier::Function,
        1 => Tier::Report,
        other => return Err(bad_data(format!("unknown tier {other}"))),
    };
    let fp = Fingerprint(
        d.get_u64().map_err(|e| bad_data(e.to_string()))?,
        d.get_u64().map_err(|e| bad_data(e.to_string()))?,
    );
    Ok((tier, fp))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A [`CacheBackend`] forwarding every operation to a `cache-serve`
/// daemon over TCP.
pub struct RemoteBackend {
    addr: String,
    analyzer_version: String,
    conns: Vec<Mutex<Option<TcpStream>>>,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend").field("addr", &self.addr).finish()
    }
}

impl RemoteBackend {
    /// Connects to `url` (`tcp://host:port`) and performs the version
    /// handshake. Fails eagerly if the daemon is unreachable or serves a
    /// different analyzer/protocol version — a silently absent cache
    /// would turn every sweep into a cold one.
    pub fn connect(url: &str, analyzer_version: &str) -> io::Result<RemoteBackend> {
        let addr = url
            .strip_prefix("tcp://")
            .ok_or_else(|| bad_data(format!("cache URL {url:?} must start with tcp://")))?
            .to_string();
        let backend = RemoteBackend {
            addr,
            analyzer_version: analyzer_version.to_string(),
            conns: (0..CLIENT_CONNS).map(|_| Mutex::new(None)).collect(),
        };
        // Probe connection: surfaces bad address / refused handshake now.
        let probe = backend.dial()?;
        *backend.conns[0].lock().unwrap_or_else(|p| p.into_inner()) = Some(probe);
        Ok(backend)
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        let mut hello = Encoder::new();
        hello.put_u8(OP_HELLO);
        hello.put_u32(WIRE_PROTOCOL_VERSION);
        hello.put_str(&self.analyzer_version);
        let request = hello.into_bytes();
        let mut span = telemetry::span_with("cache.rpc.hello", || {
            vec![("bytes_out", request.len().to_string())]
        });
        write_frame(&mut stream, &request)?;
        let reply = read_frame(&mut stream)?;
        span.arg("bytes_in", reply.len().to_string());
        let mut d = Decoder::new(&reply);
        match d.get_u8().map_err(|e| bad_data(e.to_string()))? {
            STATUS_OK => Ok(stream),
            _ => {
                let msg = d.get_str().unwrap_or_else(|_| "handshake refused".to_string());
                Err(bad_data(format!("cache server {}: {msg}", self.addr)))
            }
        }
    }

    /// Runs one request/reply round-trip on the connection slot for `fp`,
    /// dialing (or redialing a dead connection) as needed. One retry on a
    /// fresh connection covers a daemon restart; a second failure is
    /// returned to the caller.
    fn round_trip(&self, fp: Fingerprint, request: &[u8]) -> io::Result<Vec<u8>> {
        let op = request.first().copied().unwrap_or(u8::MAX);
        let mut span = telemetry::span_with(rpc_span_name(op), || {
            vec![("bytes_out", request.len().to_string())]
        });
        let reply = self.round_trip_inner(fp, request);
        match &reply {
            Ok(body) => span.arg("bytes_in", body.len().to_string()),
            Err(_) => span.arg("error", "true"),
        }
        reply
    }

    fn round_trip_inner(&self, fp: Fingerprint, request: &[u8]) -> io::Result<Vec<u8>> {
        let slot = (fp.0 >> 60) as usize % self.conns.len();
        let mut conn = self.conns[slot].lock().unwrap_or_else(|p| p.into_inner());
        for fresh in [false, true] {
            if conn.is_none() {
                match self.dial() {
                    Ok(stream) => *conn = Some(stream),
                    Err(e) if fresh => return Err(e),
                    Err(_) => continue,
                }
            }
            let stream = conn.as_mut().expect("dialed above");
            match write_frame(stream, request).and_then(|()| read_frame(stream)) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Drop the broken connection; retry once on a new one.
                    *conn = None;
                    if fresh {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("second pass either returns a reply or an error")
    }

    fn expect_ok(&self, fp: Fingerprint, request: &[u8]) -> io::Result<Vec<u8>> {
        let reply = self.round_trip(fp, request)?;
        let mut d = Decoder::new(&reply);
        match d.get_u8().map_err(|e| bad_data(e.to_string()))? {
            STATUS_OK => Ok(reply),
            _ => {
                let msg = d.get_str().unwrap_or_else(|_| "request failed".to_string());
                Err(bad_data(format!("cache server {}: {msg}", self.addr)))
            }
        }
    }

    /// Scrapes the daemon's metrics (the `METRICS` wire op): the same
    /// Prometheus text the daemon writes to its `--metrics-out` file.
    pub fn fetch_metrics(&self) -> io::Result<String> {
        let reply = self.expect_ok(Fingerprint(0, 0), &[OP_METRICS])?;
        let mut d = Decoder::new(&reply);
        let _ = d.get_u8();
        d.get_str().map_err(|e| bad_data(e.to_string()))
    }
}

impl CacheBackend for RemoteBackend {
    fn get(&self, tier: Tier, fp: Fingerprint) -> Option<Vec<u8>> {
        let mut r = Encoder::new();
        r.put_u8(OP_GET);
        r.put_u8(tier.as_u8());
        r.put_u64(fp.0);
        r.put_u64(fp.1);
        let reply = match self.round_trip(fp, &r.into_bytes()) {
            Ok(reply) => reply,
            Err(e) => {
                telemetry::log(
                    LogLevel::Warn,
                    "cache-client",
                    &format!("get from {} degraded to miss: {e}", self.addr),
                );
                return None;
            }
        };
        let mut d = Decoder::new(&reply);
        match d.get_u8().ok()? {
            1 => tail_payload(&mut d, &reply).ok(),
            _ => None,
        }
    }

    fn put(&self, tier: Tier, fp: Fingerprint, payload: &[u8]) -> io::Result<()> {
        let mut r = Encoder::new();
        r.put_u8(OP_PUT);
        r.put_u8(tier.as_u8());
        r.put_u64(fp.0);
        r.put_u64(fp.1);
        r.put_len(payload.len());
        let mut request = r.into_bytes();
        request.extend_from_slice(payload);
        self.expect_ok(fp, &request).map(|_| ())
    }

    fn flush(&self) -> io::Result<()> {
        self.expect_ok(Fingerprint(0, 0), &[OP_FLUSH]).map(|_| ())
    }

    fn stats(&self) -> CacheStats {
        let reply = match self.expect_ok(Fingerprint(0, 0), &[OP_STATS]) {
            Ok(reply) => reply,
            Err(e) => {
                telemetry::log(
                    LogLevel::Warn,
                    "cache-client",
                    &format!("stats from {} degraded to defaults: {e}", self.addr),
                );
                return CacheStats::default();
            }
        };
        let mut d = Decoder::new(&reply);
        let _ = d.get_u8();
        let mut next = || d.get_u64().unwrap_or(0);
        CacheStats {
            fn_hits: next() as usize,
            fn_misses: next() as usize,
            report_hits: next() as usize,
            report_misses: next() as usize,
            evictions: next() as usize,
            corrupt: next() as usize,
            entries: next() as usize,
            live_bytes: next(),
        }
    }

    fn adopt_orphans(&self) {
        let _ = self.expect_ok(Fingerprint(0, 0), &[OP_ADOPT]);
    }

    fn location(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}
