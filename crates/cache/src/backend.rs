//! The pluggable storage layer behind the two-tier cache.
//!
//! [`CacheBackend`] is the narrow waist between the analysis pipeline and
//! wherever cache entries actually live. Two implementations exist:
//!
//! * [`CacheStore`] — the local on-disk store (`--cache-dir`), index
//!   sharded by fingerprint prefix so concurrent workers never serialize
//!   on lookups;
//! * [`RemoteBackend`](crate::remote::RemoteBackend) — a client for the
//!   `ffisafe cache-serve` daemon (`--cache-url tcp://host:port`), so N
//!   sweep processes or machines share one logical store.
//!
//! Every method takes `&self`: backends are internally synchronized and
//! meant to be shared as `Arc<dyn CacheBackend>` across worker threads.
//! Backends degrade, never fail analysis: a broken lookup is a miss, a
//! failed insert is reported as an `Err` the caller may ignore.

use crate::store::{CacheStats, CacheStore, Tier};
use ffisafe_support::Fingerprint;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// One logical two-tier content-addressed store, local or remote.
pub trait CacheBackend: Send + Sync + std::fmt::Debug {
    /// Looks up an entry; any failure (missing, corrupt, I/O, network)
    /// reads as a miss.
    fn get(&self, tier: Tier, fp: Fingerprint) -> Option<Vec<u8>>;

    /// Inserts (or replaces) an entry.
    fn put(&self, tier: Tier, fp: Fingerprint, payload: &[u8]) -> io::Result<()>;

    /// Enforces the size cap and persists the index.
    fn flush(&self) -> io::Result<()>;

    /// Counters for this backend's lifetime plus current occupancy. For a
    /// remote backend the numbers are the *server's*, so occupancy covers
    /// entries written by every client sharing the store.
    fn stats(&self) -> CacheStats;

    /// Reconciles entries written by sibling processes since open (local:
    /// re-scan the directory; remote: ask the server to re-scan).
    fn adopt_orphans(&self);

    /// Human-readable location for diagnostics (`/path/to/dir` or
    /// `tcp://host:port`).
    fn location(&self) -> String;
}

impl CacheBackend for CacheStore {
    fn get(&self, tier: Tier, fp: Fingerprint) -> Option<Vec<u8>> {
        CacheStore::get(self, tier, fp)
    }

    fn put(&self, tier: Tier, fp: Fingerprint, payload: &[u8]) -> io::Result<()> {
        CacheStore::put(self, tier, fp, payload)
    }

    fn flush(&self) -> io::Result<()> {
        CacheStore::flush(self)
    }

    fn stats(&self) -> CacheStats {
        CacheStore::stats(self)
    }

    fn adopt_orphans(&self) {
        CacheStore::adopt_orphans(self)
    }

    fn location(&self) -> String {
        self.dir().display().to_string()
    }
}

/// Where a cache lives: a local directory (`--cache-dir`) or a
/// `cache-serve` daemon (`--cache-url`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLocation {
    /// A local on-disk store rooted at this directory.
    Dir(PathBuf),
    /// A remote store, e.g. `tcp://127.0.0.1:7441`.
    Url(String),
}

impl CacheLocation {
    /// Classifies a CLI-style spec: anything with a `tcp://` scheme is a
    /// URL, everything else is a directory path.
    pub fn parse(spec: &str) -> CacheLocation {
        if spec.starts_with("tcp://") {
            CacheLocation::Url(spec.to_string())
        } else {
            CacheLocation::Dir(PathBuf::from(spec))
        }
    }
}

impl std::fmt::Display for CacheLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLocation::Dir(dir) => write!(f, "{}", dir.display()),
            CacheLocation::Url(url) => write!(f, "{url}"),
        }
    }
}

/// Opens the backend a location names, verifying the analyzer version
/// (local: wipe-on-mismatch at open; remote: handshake with the server).
pub fn open_backend(
    location: &CacheLocation,
    analyzer_version: &str,
) -> io::Result<Arc<dyn CacheBackend>> {
    match location {
        CacheLocation::Dir(dir) => Ok(Arc::new(CacheStore::open(dir, analyzer_version)?)),
        CacheLocation::Url(url) => {
            Ok(Arc::new(crate::remote::RemoteBackend::connect(url, analyzer_version)?))
        }
    }
}
