//! The on-disk content-addressed store behind `--cache-dir`.
//!
//! Layout (all inside one cache directory):
//!
//! ```text
//! <cache-dir>/
//!   index.bin        header: magic, format version, analyzer version,
//!                    LRU clock; then one row per entry
//!                    (tier, fingerprint, size, last-used)
//!   fn-<hex32>.bin   tier-1: one memoized per-function outcome
//!   rp-<hex32>.bin   tier-2: one rendered whole-corpus report
//! ```
//!
//! Every entry file carries its own magic, format version, payload length
//! and a trailing content checksum; a truncated, bit-flipped or
//! wrong-version entry fails validation and is **treated as a miss** (and
//! deleted), never an error. The index header pins the analyzer version —
//! opening the store with a different version wipes it wholesale, which is
//! how analyzer upgrades invalidate stale results. Entries whose options
//! differ never collide because the options digest is folded into every
//! fingerprint by the caller.
//!
//! Eviction is LRU by a monotonic clock persisted in the index: whenever
//! [`CacheStore::flush`] finds the store over its size cap, least-recently
//! used entries are deleted until it fits.
//!
//! One directory may be shared by several processes (sharded sweeps run
//! many `ffisafe` children over one `--cache-dir`). Entry writes are
//! atomic and content-addressed, so concurrency can only race on
//! `index.bin` — and a lost index row merely turns the entry into a valid
//! *orphan*, which the next [`CacheStore::open`] validates and adopts back
//! into the index (invalid orphans are deleted). No entry a process wrote
//! is ever silently lost to an index race.

use crate::codec::{Decoder, Encoder};
use ffisafe_support::{Fingerprint, FingerprintHasher, MetricsRegistry};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Magic prefix of entry files.
const ENTRY_MAGIC: [u8; 4] = *b"FFSE";
/// Magic prefix of the index file.
const INDEX_MAGIC: [u8; 4] = *b"FFSX";
/// Bump when the entry/index binary layout changes.
const FORMAT_VERSION: u32 = 1;
/// Default size cap: plenty for per-function outcomes of large corpora.
const DEFAULT_CAP_BYTES: u64 = 256 * 1024 * 1024;
/// Number of independent index shards. Must be a power of two. Lookups
/// lock only the shard addressed by the fingerprint's top bits, so
/// parallel workers hitting different keys never serialize.
const INDEX_SHARDS: usize = 16;

/// Which cache tier an entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Tier 1: memoized per-function inference outcomes.
    Function,
    /// Tier 2: rendered whole-corpus reports.
    Report,
}

impl Tier {
    fn prefix(self) -> &'static str {
        match self {
            Tier::Function => "fn",
            Tier::Report => "rp",
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Tier::Function => 0,
            Tier::Report => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Tier> {
        match v {
            0 => Some(Tier::Function),
            1 => Some(Tier::Report),
            _ => None,
        }
    }
}

/// Hit/miss/eviction counters for one store lifetime, plus the store's
/// current occupancy (entry count and live bytes) at the moment
/// [`CacheStore::stats`] was called.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tier-1 lookups that replayed a memoized function outcome.
    pub fn_hits: usize,
    /// Tier-1 lookups that fell through to a live inference worker.
    pub fn_misses: usize,
    /// Tier-2 lookups that served a whole rendered report.
    pub report_hits: usize,
    /// Tier-2 lookups that fell through to a full analysis.
    pub report_misses: usize,
    /// Entries deleted by the LRU size-cap sweep.
    pub evictions: usize,
    /// Entries dropped because validation failed (corrupt/truncated).
    pub corrupt: usize,
    /// Entries currently indexed (occupancy, not a counter).
    pub entries: usize,
    /// Total indexed payload-file bytes (occupancy, not a counter).
    pub live_bytes: u64,
}

impl CacheStats {
    /// Feeds these counters into a [`MetricsRegistry`] under the
    /// `ffisafe_cache_store_*` family (see README "Observability").
    pub fn feed_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc_counter(
            "ffisafe_cache_store_fn_hits_total",
            "Store-level tier-1 lookups that replayed a memoized outcome",
            &[],
            self.fn_hits as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_store_fn_misses_total",
            "Store-level tier-1 lookups that fell through to a worker",
            &[],
            self.fn_misses as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_store_report_hits_total",
            "Store-level tier-2 lookups that served a whole report",
            &[],
            self.report_hits as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_store_report_misses_total",
            "Store-level tier-2 lookups that fell through to a full analysis",
            &[],
            self.report_misses as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_store_evictions_total",
            "Entries deleted by the LRU size-cap sweep",
            &[],
            self.evictions as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_store_corrupt_total",
            "Entries dropped because validation failed",
            &[],
            self.corrupt as u64,
        );
        reg.set_gauge(
            "ffisafe_cache_store_entries",
            "Entries currently indexed",
            &[],
            self.entries as f64,
        );
        reg.set_gauge(
            "ffisafe_cache_store_live_bytes",
            "Total indexed payload-file bytes",
            &[],
            self.live_bytes as f64,
        );
    }
}

#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    size: u64,
    last_used: u64,
}

/// Run-lifetime hit/miss counters, updated lock-free so concurrent
/// lookups on different index shards never contend on accounting.
#[derive(Debug, Default)]
struct Counters {
    fn_hits: AtomicUsize,
    fn_misses: AtomicUsize,
    report_hits: AtomicUsize,
    report_misses: AtomicUsize,
    evictions: AtomicUsize,
    corrupt: AtomicUsize,
}

/// A two-tier content-addressed cache rooted at one directory.
///
/// The in-memory index is sharded by fingerprint prefix: every lookup or
/// insert locks exactly one of [`INDEX_SHARDS`] independent maps, so a
/// single `CacheStore` can be shared (`Arc<CacheStore>`) across many
/// worker threads without funneling tier-1 traffic through one mutex.
/// Only [`CacheStore::flush`] and [`CacheStore::wipe`] take all shard
/// locks at once (in index order, so they cannot deadlock against the
/// single-shard operations).
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    analyzer_version: String,
    cap_bytes: AtomicU64,
    clock: AtomicU64,
    shards: Vec<Mutex<HashMap<(u8, Fingerprint), EntryMeta>>>,
    counters: Counters,
}

/// Index shard addressed by a fingerprint's top bits (its key prefix).
fn shard_of(fp: Fingerprint) -> usize {
    (fp.0 >> 60) as usize & (INDEX_SHARDS - 1)
}

/// Locks a shard, recovering from poison: the maps hold only metadata
/// whose loss degrades to a cache miss, never to wrong results.
fn lock_shard(
    shard: &Mutex<HashMap<(u8, Fingerprint), EntryMeta>>,
) -> MutexGuard<'_, HashMap<(u8, Fingerprint), EntryMeta>> {
    shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl CacheStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// `analyzer_version` identifies the producer; if the on-disk index was
    /// written by a different version — or is missing or unreadable — every
    /// existing entry is deleted and the store starts empty.
    pub fn open(dir: &Path, analyzer_version: &str) -> io::Result<CacheStore> {
        std::fs::create_dir_all(dir)?;
        let store = CacheStore {
            dir: dir.to_path_buf(),
            analyzer_version: analyzer_version.to_string(),
            cap_bytes: AtomicU64::new(DEFAULT_CAP_BYTES),
            clock: AtomicU64::new(0),
            shards: (0..INDEX_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: Counters::default(),
        };
        if !store.load_index() {
            store.wipe();
        } else {
            store.adopt_orphans();
        }
        // Persist the index right away if it is not on disk. Entry files
        // next to a *missing* index read as an interrupted unversioned
        // store and trigger a wipe, so without this a second process
        // opening a fresh directory could destroy entries the first
        // process had already written but not yet flushed.
        if !dir.join("index.bin").exists() {
            store.write_index()?;
        }
        Ok(store)
    }

    /// The directory this store is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The analyzer version this store was opened with.
    pub fn analyzer_version(&self) -> &str {
        &self.analyzer_version
    }

    /// Overrides the size cap enforced by [`CacheStore::flush`].
    pub fn set_cap_bytes(&self, cap: u64) {
        self.cap_bytes.store(cap, Ordering::Relaxed);
    }

    /// Counters accumulated since the store was opened, with the current
    /// occupancy (entry count, live bytes) filled in at call time.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut live_bytes) = (0usize, 0u64);
        for shard in &self.shards {
            let map = lock_shard(shard);
            entries += map.len();
            live_bytes += map.values().map(|m| m.size).sum::<u64>();
        }
        CacheStats {
            fn_hits: self.counters.fn_hits.load(Ordering::Relaxed),
            fn_misses: self.counters.fn_misses.load(Ordering::Relaxed),
            report_hits: self.counters.report_hits.load(Ordering::Relaxed),
            report_misses: self.counters.report_misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            entries,
            live_bytes,
        }
    }

    /// Number of entries currently indexed.
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// Total indexed payload-file bytes.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| lock_shard(s).values().map(|m| m.size).sum::<u64>()).sum()
    }

    /// Whether an entry is indexed (no validation, no LRU touch).
    pub fn contains(&self, tier: Tier, fp: Fingerprint) -> bool {
        lock_shard(&self.shards[shard_of(fp)]).contains_key(&(tier.as_u8(), fp))
    }

    fn entry_path(&self, tier: Tier, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}-{}.bin", tier.prefix(), fp.to_hex()))
    }

    fn count_get(&self, tier: Tier, hit: bool) {
        let counter = match (tier, hit) {
            (Tier::Function, true) => &self.counters.fn_hits,
            (Tier::Function, false) => &self.counters.fn_misses,
            (Tier::Report, true) => &self.counters.report_hits,
            (Tier::Report, false) => &self.counters.report_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up an entry. A hit returns the validated payload and touches
    /// the LRU clock; any validation failure deletes the entry and reports
    /// a miss. Locks only the entry's own index shard.
    pub fn get(&self, tier: Tier, fp: Fingerprint) -> Option<Vec<u8>> {
        let key = (tier.as_u8(), fp);
        let shard = &self.shards[shard_of(fp)];
        if !lock_shard(shard).contains_key(&key) {
            self.count_get(tier, false);
            return None;
        }
        // The file read happens outside the shard lock: entries are
        // content-addressed, so the worst a concurrent remove can do is
        // turn this into a miss.
        let path = self.entry_path(tier, fp);
        match std::fs::read(&path).ok().and_then(|bytes| validate_entry(&bytes)) {
            Some(payload) => {
                let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(meta) = lock_shard(shard).get_mut(&key) {
                    meta.last_used = clock;
                }
                self.count_get(tier, true);
                Some(payload)
            }
            None => {
                lock_shard(shard).remove(&key);
                let _ = std::fs::remove_file(&path);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.count_get(tier, false);
                None
            }
        }
    }

    /// Inserts (or replaces) an entry. The write is atomic: a temp file is
    /// renamed into place, so readers never observe a half-written entry.
    pub fn put(&self, tier: Tier, fp: Fingerprint, payload: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(payload.len() + 32);
        bytes.extend_from_slice(&ENTRY_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let sum = Fingerprint::of_bytes(payload);
        bytes.extend_from_slice(&sum.0.to_le_bytes());
        bytes.extend_from_slice(&sum.1.to_le_bytes());

        let path = self.entry_path(tier, fp);
        write_atomic(&path, &bytes)?;
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        lock_shard(&self.shards[shard_of(fp)])
            .insert((tier.as_u8(), fp), EntryMeta { size: bytes.len() as u64, last_used: clock });
        Ok(())
    }

    /// Enforces the size cap (evicting LRU entries) and persists the index.
    ///
    /// Takes every shard lock (in order) for the duration, so the evicted
    /// set and the persisted index are a consistent snapshot.
    pub fn flush(&self) -> io::Result<()> {
        let mut maps: Vec<_> = self.shards.iter().map(lock_shard).collect();
        let cap = self.cap_bytes.load(Ordering::Relaxed);
        loop {
            let total: u64 = maps.iter().flat_map(|m| m.values()).map(|m| m.size).sum();
            if total <= cap {
                break;
            }
            let Some((shard_idx, &key)) = maps
                .iter()
                .enumerate()
                .flat_map(|(i, m)| m.iter().map(move |(k, meta)| (i, k, meta.last_used)))
                .min_by_key(|&(_, _, last_used)| last_used)
                .map(|(i, k, _)| (i, k))
            else {
                break;
            };
            let (tier_u8, fp) = key;
            let tier = Tier::from_u8(tier_u8).expect("only valid tiers are inserted");
            let _ = std::fs::remove_file(self.entry_path(tier, fp));
            maps[shard_idx].remove(&key);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.write_index_locked(&maps)
    }

    /// Deletes every entry file and resets the index.
    pub fn wipe(&self) {
        let mut maps: Vec<_> = self.shards.iter().map(lock_shard).collect();
        if let Ok(read) = std::fs::read_dir(&self.dir) {
            for dirent in read.flatten() {
                let name = dirent.file_name();
                let name = name.to_string_lossy();
                let is_cache_file = name == "index.bin"
                    || ((name.starts_with("fn-") || name.starts_with("rp-"))
                        && name.ends_with(".bin"));
                if is_cache_file {
                    let _ = std::fs::remove_file(dirent.path());
                }
            }
        }
        for map in &mut maps {
            map.clear();
        }
        self.clock.store(0, Ordering::Relaxed);
    }

    /// Loads `index.bin`. Returns `false` when the store must be wiped
    /// (missing/corrupt index, format or analyzer-version mismatch). An
    /// empty directory with no index loads as an empty store.
    fn load_index(&self) -> bool {
        let path = self.dir.join("index.bin");
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            // No index at all: fresh only if there are no orphaned entries.
            Err(_) => return !self.has_entry_files(),
        };
        let Some((version, clock, entries)) = decode_index(&bytes) else {
            return false;
        };
        if version != self.analyzer_version {
            return false;
        }
        self.clock.store(clock, Ordering::Relaxed);
        for (key, meta) in entries {
            lock_shard(&self.shards[shard_of(key.1)]).insert(key, meta);
        }
        true
    }

    /// Reconciles entry files present on disk but absent from the index.
    ///
    /// Such orphans arise two ways: a run died between `put` and `flush`,
    /// or — since sweeps shard one `--cache-dir` across concurrent
    /// `ffisafe` processes — a sibling process's index flush raced ours
    /// and dropped rows for entries that are perfectly valid on disk. The
    /// entry files are self-validating (magic, version, length, checksum)
    /// and content-addressed, and only same-version producers ever write
    /// next to a matching index (a version mismatch wipes wholesale), so a
    /// *valid* orphan is always safe to **adopt** back into the index;
    /// only files failing validation are deleted. Adoption is what keeps
    /// shared-store occupancy deterministic and warm sweeps complete no
    /// matter how concurrent index writes interleaved. Adopted entries
    /// join at the cold end of the LRU (`last_used = 0`), so under cap
    /// pressure they are the first to go.
    ///
    /// Runs automatically at [`CacheStore::open`]; long-lived stores (a
    /// sweep parent, a `cache-serve` daemon) may call it again to pick up
    /// entries written by sibling processes since.
    pub fn adopt_orphans(&self) {
        let Ok(read) = std::fs::read_dir(&self.dir) else { return };
        for dirent in read.flatten() {
            let name = dirent.file_name();
            let name = name.to_string_lossy();
            let Some((prefix, rest)) = name.split_once('-') else { continue };
            let tier = match prefix {
                "fn" => Tier::Function,
                "rp" => Tier::Report,
                _ => continue,
            };
            let Some(hex) = rest.strip_suffix(".bin") else { continue };
            let Some(fp) = Fingerprint::parse_hex(hex) else {
                // An entry-shaped name that does not address anything can
                // never be indexed or evicted — delete it so it cannot
                // leak disk past the size cap.
                let _ = std::fs::remove_file(dirent.path());
                continue;
            };
            if self.contains(tier, fp) {
                continue;
            }
            let bytes = std::fs::read(dirent.path()).unwrap_or_default();
            match validate_entry(&bytes) {
                Some(_) => {
                    let size = bytes.len() as u64;
                    lock_shard(&self.shards[shard_of(fp)])
                        .insert((tier.as_u8(), fp), EntryMeta { size, last_used: 0 });
                }
                None => {
                    let _ = std::fs::remove_file(dirent.path());
                    self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn has_entry_files(&self) -> bool {
        std::fs::read_dir(&self.dir)
            .map(|read| {
                read.flatten().any(|dirent| {
                    let name = dirent.file_name();
                    let name = name.to_string_lossy();
                    (name.starts_with("fn-") || name.starts_with("rp-")) && name.ends_with(".bin")
                })
            })
            .unwrap_or(false)
    }

    fn write_index(&self) -> io::Result<()> {
        let maps: Vec<_> = self.shards.iter().map(lock_shard).collect();
        self.write_index_locked(&maps)
    }

    fn write_index_locked(
        &self,
        maps: &[MutexGuard<'_, HashMap<(u8, Fingerprint), EntryMeta>>],
    ) -> io::Result<()> {
        let mut e = Encoder::new();
        e.put_u32(u32::from_le_bytes(INDEX_MAGIC));
        e.put_u32(FORMAT_VERSION);
        e.put_str(&self.analyzer_version);
        e.put_u64(self.clock.load(Ordering::Relaxed));
        // Stable order keeps repeated flushes byte-identical.
        let mut rows: Vec<((u8, Fingerprint), EntryMeta)> =
            maps.iter().flat_map(|m| m.iter().map(|(k, v)| (*k, *v))).collect();
        rows.sort_by_key(|(k, _)| *k);
        e.put_len(rows.len());
        for ((tier, fp), meta) in rows {
            e.put_u8(tier);
            e.put_u64(fp.0);
            e.put_u64(fp.1);
            e.put_u64(meta.size);
            e.put_u64(meta.last_used);
        }
        write_atomic(&self.dir.join("index.bin"), &e.into_bytes())
    }
}

/// Validates one entry file, returning its payload.
fn validate_entry(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut d = Decoder::new(bytes);
    if d.get_u32().ok()? != u32::from_le_bytes(ENTRY_MAGIC) {
        return None;
    }
    if d.get_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    let len = d.get_len().ok()?;
    if d.remaining() != len + 16 {
        return None;
    }
    let payload = bytes[bytes.len() - 16 - len..bytes.len() - 16].to_vec();
    let mut tail = Decoder::new(&bytes[bytes.len() - 16..]);
    let sum = Fingerprint(tail.get_u64().ok()?, tail.get_u64().ok()?);
    if Fingerprint::of_bytes(&payload) != sum {
        return None;
    }
    Some(payload)
}

#[allow(clippy::type_complexity)]
fn decode_index(bytes: &[u8]) -> Option<(String, u64, HashMap<(u8, Fingerprint), EntryMeta>)> {
    let mut d = Decoder::new(bytes);
    if d.get_u32().ok()? != u32::from_le_bytes(INDEX_MAGIC) {
        return None;
    }
    if d.get_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    let version = d.get_str().ok()?;
    let clock = d.get_u64().ok()?;
    let n = d.get_len().ok()?;
    let mut entries = HashMap::with_capacity(n);
    for _ in 0..n {
        let tier = d.get_u8().ok()?;
        Tier::from_u8(tier)?;
        let fp = Fingerprint(d.get_u64().ok()?, d.get_u64().ok()?);
        let size = d.get_u64().ok()?;
        let last_used = d.get_u64().ok()?;
        entries.insert((tier, fp), EntryMeta { size, last_used });
    }
    d.finish().ok()?;
    Some((version, clock, entries))
}

/// Writes `bytes` to `path` via a same-directory temp file + rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = parent.join(format!(".{}.tmp-{}", stem, std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A convenience fingerprint over several labelled parts (used by tests).
pub fn fingerprint_parts(parts: &[&[u8]]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    for p in parts {
        h.write_u64(p.len() as u64);
        h.write_bytes(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ffisafe-cache-store-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint(n, n.wrapping_mul(0x9e37_79b9))
    }

    #[test]
    fn put_get_roundtrip_and_persistence() {
        let dir = temp_store_dir("roundtrip");
        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.get(Tier::Function, fp(1)), None);
        store.put(Tier::Function, fp(1), b"outcome-bytes").unwrap();
        store.put(Tier::Report, fp(1), b"report-bytes").unwrap();
        assert_eq!(store.get(Tier::Function, fp(1)).unwrap(), b"outcome-bytes");
        // same fingerprint, different tier: distinct entries
        assert_eq!(store.get(Tier::Report, fp(1)).unwrap(), b"report-bytes");
        store.flush().unwrap();
        assert_eq!(store.stats().fn_hits, 1);
        assert_eq!(store.stats().fn_misses, 1);

        // reopen: index persisted both entries
        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.entry_count(), 2);
        assert_eq!(store.get(Tier::Function, fp(1)).unwrap(), b"outcome-bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyzer_version_change_wipes_everything() {
        let dir = temp_store_dir("version");
        let store = CacheStore::open(&dir, "v1").unwrap();
        store.put(Tier::Function, fp(1), b"old").unwrap();
        store.flush().unwrap();
        drop(store);

        let store = CacheStore::open(&dir, "v2").unwrap();
        assert_eq!(store.entry_count(), 0);
        assert_eq!(store.get(Tier::Function, fp(1)), None);
        // the stale entry file itself is gone, not merely unindexed
        assert!(!dir.join(format!("fn-{}.bin", fp(1).to_hex())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_are_misses() {
        let dir = temp_store_dir("corrupt");
        let store = CacheStore::open(&dir, "v1").unwrap();
        store.put(Tier::Function, fp(1), b"payload-one").unwrap();
        store.put(Tier::Function, fp(2), b"payload-two").unwrap();
        store.flush().unwrap();

        // bit-flip one entry, truncate the other
        let p1 = dir.join(format!("fn-{}.bin", fp(1).to_hex()));
        let mut bytes = std::fs::read(&p1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p1, &bytes).unwrap();
        let p2 = dir.join(format!("fn-{}.bin", fp(2).to_hex()));
        let bytes = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();

        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.get(Tier::Function, fp(1)), None);
        assert_eq!(store.get(Tier::Function, fp(2)), None);
        assert_eq!(store.stats().corrupt, 2);
        assert_eq!(store.stats().fn_misses, 2);
        // the bad files were dropped; a re-put works again
        store.put(Tier::Function, fp(1), b"fresh").unwrap();
        assert_eq!(store.get(Tier::Function, fp(1)).unwrap(), b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn valid_orphans_next_to_a_valid_index_are_adopted_at_open() {
        let dir = temp_store_dir("orphan-next-to-index");
        let store = CacheStore::open(&dir, "v1").unwrap();
        store.put(Tier::Function, fp(1), b"indexed").unwrap();
        store.flush().unwrap();
        // A sibling process's index flush raced ours (or a run died between
        // put and flush): the entry is on disk and valid, just unindexed.
        store.put(Tier::Function, fp(2), b"orphan").unwrap();
        drop(store);

        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.entry_count(), 2, "valid orphans are adopted, not lost");
        assert_eq!(store.get(Tier::Function, fp(1)).unwrap(), b"indexed");
        assert_eq!(store.get(Tier::Function, fp(2)).unwrap(), b"orphan");
        // Adopted entries are indexed, so they are visible to the size cap…
        assert!(store.total_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_orphans_are_deleted_at_open_and_adoptees_are_coldest() {
        let dir = temp_store_dir("orphan-invalid");
        let store = CacheStore::open(&dir, "v1").unwrap();
        store.put(Tier::Function, fp(1), b"indexed").unwrap();
        store.flush().unwrap();
        store.put(Tier::Function, fp(2), b"orphan-valid").unwrap();
        drop(store);
        // a truncated orphan must not be adopted
        let bad = dir.join(format!("fn-{}.bin", fp(3).to_hex()));
        std::fs::write(&bad, b"FFSE-too-short").unwrap();

        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.entry_count(), 2);
        assert!(!bad.exists(), "invalid orphan deleted");
        assert_eq!(store.stats().corrupt, 1);
        assert_eq!(store.stats().entries, 2, "stats() reports occupancy");
        assert_eq!(store.stats().live_bytes, store.total_bytes());
        // under cap pressure the adopted (last_used = 0) entry goes first
        store.set_cap_bytes(50);
        store.flush().unwrap();
        assert!(store.contains(Tier::Function, fp(1)), "indexed entry survives");
        assert!(!store.contains(Tier::Function, fp(2)), "adoptee evicted first");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_persists_an_index_immediately_so_siblings_cannot_wipe() {
        let dir = temp_store_dir("fresh-index");
        let store = CacheStore::open(&dir, "v1").unwrap();
        assert!(dir.join("index.bin").exists(), "fresh open writes the (empty) index");
        // process A writes an entry but has not flushed yet…
        let a = store;
        a.put(Tier::Function, fp(7), b"in-flight").unwrap();
        // …when process B opens the same directory: the persisted index
        // keeps B from reading "entries without an index" as an
        // interrupted store, and A's entry is adopted, not destroyed.
        let b = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(b.get(Tier::Function, fp(7)).unwrap(), b"in-flight");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_with_orphan_entries_wipes() {
        // An index-less directory containing entry files can only come
        // from an unknown producer (open() persists an index up front),
        // so nothing in it can be trusted: wipe.
        let dir = temp_store_dir("orphans");
        let store = CacheStore::open(&dir, "v1").unwrap();
        store.put(Tier::Function, fp(7), b"orphan").unwrap();
        drop(store);
        std::fs::remove_file(dir.join("index.bin")).unwrap();

        let store = CacheStore::open(&dir, "v1").unwrap();
        assert_eq!(store.entry_count(), 0);
        assert!(!dir.join(format!("fn-{}.bin", fp(7).to_hex())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_shaped_files_with_unparseable_names_are_deleted_at_open() {
        let dir = temp_store_dir("badname");
        let store = CacheStore::open(&dir, "v1").unwrap();
        drop(store);
        let junk = dir.join("fn-not-hex-at-all.bin");
        std::fs::write(&junk, b"whatever").unwrap();
        let unrelated = dir.join("README");
        std::fs::write(&unrelated, b"keep me").unwrap();

        let _ = CacheStore::open(&dir, "v1").unwrap();
        assert!(!junk.exists(), "unaddressable entry-shaped files cannot be evicted; delete");
        assert!(unrelated.exists(), "non-entry files are left alone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let dir = temp_store_dir("lru");
        let store = CacheStore::open(&dir, "v1").unwrap();
        let payload = vec![0u8; 100];
        for i in 0..10u64 {
            store.put(Tier::Function, fp(i), &payload).unwrap();
        }
        // touch the two oldest so they become the most recent
        assert!(store.get(Tier::Function, fp(0)).is_some());
        assert!(store.get(Tier::Function, fp(1)).is_some());
        // cap to roughly 4 entries (each file = payload + 32B header/sum)
        store.set_cap_bytes(4 * 132);
        store.flush().unwrap();
        assert!(store.entry_count() <= 4);
        assert!(store.contains(Tier::Function, fp(0)), "recently used survives");
        assert!(store.contains(Tier::Function, fp(1)), "recently used survives");
        assert!(!store.contains(Tier::Function, fp(2)), "cold entry evicted");
        assert!(store.stats().evictions >= 6);
        // evicted files are really gone
        assert!(!dir.join(format!("fn-{}.bin", fp(2).to_hex())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_parts_separates_fields() {
        assert_ne!(fingerprint_parts(&[b"ab", b"c"]), fingerprint_parts(&[b"a", b"bc"]));
        assert_eq!(fingerprint_parts(&[b"ab", b"c"]), fingerprint_parts(&[b"ab", b"c"]));
    }
}
