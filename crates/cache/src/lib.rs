//! `ffisafe-cache`: the content-addressed incremental-reanalysis cache.
//!
//! The PLDI'05 analysis is whole-program and batch: a cold run re-infers
//! every C function even when nothing changed. This crate supplies the
//! storage layer that makes re-runs incremental, in two tiers:
//!
//! * **Tier 1 (function level).** Each C function is fingerprinted by a
//!   stable hash of its lowered IR plus the `.ml`/prototype surface the
//!   frozen post-link base state exposes to it. On a warm run the
//!   inference stage skips the worker for every fingerprint hit and
//!   replays the memoized per-function outcome, so reports stay
//!   byte-identical to a cold run at any `--jobs`.
//! * **Tier 2 (report level).** Rendered stable reports are keyed by
//!   (corpus digest, options digest); a hit skips analysis entirely —
//!   the repeated-CI-query fast path.
//!
//! The crate itself is deliberately analysis-agnostic: it stores validated
//! byte payloads addressed by [`ffisafe_support::Fingerprint`]. What the
//! bytes mean (the outcome/report codecs and the fingerprint recipes) lives
//! next to the pipeline in `ffisafe-core`, keeping the dependency graph
//! acyclic: `support ← cache ← core`.
//!
//! Where the bytes live is pluggable: the [`backend`] module defines the
//! [`CacheBackend`] trait with two implementations — the local sharded
//! on-disk [`CacheStore`] and the [`remote`] TCP client/daemon pair
//! (`ffisafe cache-serve`) that lets many processes or machines share one
//! logical store.
//!
//! See [`store`] for the on-disk layout, validation and eviction rules,
//! [`remote`] for the wire protocol, and [`codec`] for the
//! dependency-free binary encoding.
//!
//! # Examples
//!
//! ```
//! use ffisafe_cache::{CacheStore, Tier};
//! use ffisafe_support::Fingerprint;
//!
//! let dir = std::env::temp_dir().join(format!("ffisafe-cache-doc-{}", std::process::id()));
//! let store = CacheStore::open(&dir, "ffisafe 0.2.0 schema 1").unwrap();
//! let key = Fingerprint::of_bytes(b"value ml_f(value n) { ... }");
//! assert_eq!(store.get(Tier::Function, key), None);
//! store.put(Tier::Function, key, b"memoized outcome").unwrap();
//! assert_eq!(store.get(Tier::Function, key).unwrap(), b"memoized outcome");
//! store.flush().unwrap();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod remote;
pub mod store;

pub use backend::{open_backend, CacheBackend, CacheLocation};
pub use codec::{DecodeError, Decoder, Encoder};
pub use remote::{CacheServer, RemoteBackend, WIRE_PROTOCOL_VERSION};
pub use store::{CacheStats, CacheStore, Tier};
