//! A tiny versioned binary codec for cache payloads.
//!
//! The cache stores plain-data values (memoized per-function outcomes,
//! rendered reports) with no external serialization dependency. Encoding
//! is explicit and little-endian; decoding is *total* — every read is
//! bounds-checked and returns [`DecodeError`] instead of panicking, so a
//! truncated or corrupted cache entry degrades to a cache miss, never a
//! crash.
//!
//! # Examples
//!
//! ```
//! use ffisafe_cache::codec::{Decoder, Encoder};
//!
//! let mut e = Encoder::new();
//! e.put_str("ml_reverse");
//! e.put_u64(3);
//! e.put_bool(true);
//! let bytes = e.into_bytes();
//!
//! let mut d = Decoder::new(&bytes);
//! assert_eq!(d.get_str().unwrap(), "ml_reverse");
//! assert_eq!(d.get_u64().unwrap(), 3);
//! assert!(d.get_bool().unwrap());
//! assert!(d.finish().is_ok());
//! ```

use ffisafe_support::Span;
use std::fmt;

/// Why a payload failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the requested read.
    Truncated,
    /// A tag/bool/length field held an impossible value.
    Invalid,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DecodeError::Truncated => "payload truncated",
            DecodeError::Invalid => "invalid field value",
            DecodeError::TrailingBytes => "trailing bytes after value",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte writer.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a `usize` as `u64` (collection lengths, indices).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a [`Span`] as `(file, lo, hi)` raw fields.
    pub fn put_span(&mut self, span: Span) {
        self.put_u32(span.file.as_raw());
        self.put_u32(span.lo);
        self.put_u32(span.hi);
    }
}

/// Bounds-checked byte reader over an encoded payload.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is [`DecodeError::Invalid`].
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid),
        }
    }

    /// Reads a collection length, rejecting lengths that cannot fit in the
    /// remaining payload (cheap corruption guard against huge allocations).
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let v = self.get_u64()?;
        if v > self.buf.len() as u64 {
            return Err(DecodeError::Invalid);
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid)
    }

    /// Reads a [`Span`] written by [`Encoder::put_span`].
    pub fn get_span(&mut self) -> Result<Span, DecodeError> {
        let file = ffisafe_support::source_map::FileId::from_raw(self.get_u32()?);
        let lo = self.get_u32()?;
        let hi = self.get_u32()?;
        if lo > hi {
            return Err(DecodeError::Invalid);
        }
        Ok(Span { file, lo, hi })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_support::source_map::FileId;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX);
        e.put_i64(-42);
        e.put_f64(1.5);
        e.put_bool(false);
        e.put_str("héllo");
        e.put_span(Span::new(FileId::from_raw(3), 10, 20));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), 1.5);
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_span().unwrap(), Span::new(FileId::from_raw(3), 10, 20));
        d.finish().unwrap();
    }

    #[test]
    fn dummy_span_roundtrip() {
        let mut e = Encoder::new();
        e.put_span(Span::dummy());
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_span().unwrap().is_dummy());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.put_str("a long enough string");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.get_str().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_fields_are_invalid() {
        // bool byte out of range
        let mut d = Decoder::new(&[9]);
        assert_eq!(d.get_bool(), Err(DecodeError::Invalid));
        // length far beyond the payload
        let mut e = Encoder::new();
        e.put_u64(1 << 40);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_len(), Err(DecodeError::Invalid));
        // invalid utf-8
        let mut e = Encoder::new();
        e.put_len(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(DecodeError::Invalid));
        // inverted span
        let mut e = Encoder::new();
        e.put_u32(0);
        e.put_u32(9);
        e.put_u32(3);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_span(), Err(DecodeError::Invalid));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 1);
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes));
    }
}
