//! Admission control for the analysis daemon.
//!
//! The daemon wraps one shared `AnalysisService`; without a gate, N
//! greedy clients would each spin up their own worker pool and thrash
//! the machine. [`Admission`] bounds the number of analyses *executing*
//! (`max_inflight`) and the number *waiting* for a slot (`max_queue`).
//! A request past both bounds is refused with an explicit BUSY — the
//! client sees backpressure immediately instead of an unbounded stall.
//!
//! Execution slots are RAII [`Permit`]s: dropping one (on any path,
//! including a panic unwinding out of an analysis) frees the slot and
//! wakes one waiter, so the gate cannot leak capacity.

use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct State {
    running: usize,
    queued: usize,
}

/// A bounded two-stage gate: at most `max_inflight` holders, at most
/// `max_queue` waiters.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    max_queue: usize,
    state: Mutex<State>,
    freed: Condvar,
}

/// The refusal returned by [`Admission::try_admit`] when the queue is
/// full, carrying a snapshot of the load for the BUSY reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Analyses executing at refusal time.
    pub running: usize,
    /// Analyses queued at refusal time.
    pub queued: usize,
}

/// An execution slot. Dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Admission {
    /// A gate admitting `max_inflight` concurrent analyses (minimum 1)
    /// and queueing up to `max_queue` more.
    pub fn new(max_inflight: usize, max_queue: usize) -> Admission {
        Admission {
            max_inflight: max_inflight.max(1),
            max_queue,
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
        }
    }

    /// Acquires a slot, waiting in the queue if one isn't free; refuses
    /// with [`Busy`] when the queue is already at capacity.
    pub fn try_admit(&self) -> Result<Permit<'_>, Busy> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.running >= self.max_inflight && state.queued >= self.max_queue {
            return Err(Busy { running: state.running, queued: state.queued });
        }
        state.queued += 1;
        while state.running >= self.max_inflight {
            state = self.freed.wait(state).unwrap_or_else(|p| p.into_inner());
        }
        state.queued -= 1;
        state.running += 1;
        Ok(Permit { gate: self })
    }

    /// Acquires a slot unconditionally, waiting outside the bounded
    /// queue. Used by the daemon's own watch loop, which must never be
    /// refused (it would silently drop a filesystem change).
    pub fn admit(&self) -> Permit<'_> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while state.running >= self.max_inflight {
            state = self.freed.wait(state).unwrap_or_else(|p| p.into_inner());
        }
        state.running += 1;
        Permit { gate: self }
    }

    /// Analyses currently executing.
    pub fn running(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).running
    }

    /// Analyses currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).queued
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap_or_else(|p| p.into_inner());
        state.running -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn permits_free_slots_on_drop() {
        let gate = Admission::new(1, 0);
        let permit = gate.try_admit().expect("first slot is free");
        assert_eq!(gate.running(), 1);
        assert_eq!(gate.try_admit().unwrap_err(), Busy { running: 1, queued: 0 });
        drop(permit);
        assert_eq!(gate.running(), 0);
        let _second = gate.try_admit().expect("slot freed by drop");
    }

    #[test]
    fn full_queue_refuses_with_a_load_snapshot() {
        let gate = Arc::new(Admission::new(1, 1));
        let _held = gate.try_admit().expect("take the only slot");
        let queued = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _permit = gate.try_admit().expect("queue slot is free");
            })
        };
        // Wait for the spawned thread to actually enter the queue.
        for _ in 0..200 {
            if gate.queued() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(gate.try_admit().unwrap_err(), Busy { running: 1, queued: 1 });
        drop(_held);
        queued.join().unwrap();
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn zero_inflight_is_clamped_to_one() {
        let gate = Admission::new(0, 0);
        let _permit = gate.try_admit().expect("clamped to one slot");
        assert!(gate.try_admit().is_err());
    }

    #[test]
    fn blocking_admit_bypasses_the_queue_bound() {
        let gate = Arc::new(Admission::new(1, 0));
        let held = gate.try_admit().expect("take the only slot");
        let watcher = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _permit = gate.admit();
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        watcher.join().unwrap();
        assert_eq!(gate.running(), 0);
    }
}
