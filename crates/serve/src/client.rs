//! The client side of the serve wire protocol.
//!
//! [`ServeClient`] is a thin, blocking, one-connection client: connect +
//! handshake, then strict request/reply. The CLI's `--server-url` path
//! and the load-test harness both sit on it. Unlike the remote *cache*
//! client there is no degrade-to-miss: an analysis either completes on
//! the daemon or the caller sees the error — silently analyzing nothing
//! would be indistinguishable from a clean report.

use crate::daemon::ANALYZER_VERSION;
use crate::protocol::{
    read_frame, write_frame, Reply, Request, WatchEvent, SERVE_PROTOCOL_VERSION,
};
use ffisafe_core::{AnalysisOptions, CacheMode, Corpus};
use ffisafe_support::telemetry;
use std::io;
use std::net::TcpStream;

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A connection to an `ffisafe serve` daemon.
pub struct ServeClient {
    stream: TcpStream,
    addr: String,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").field("addr", &self.addr).finish()
    }
}

impl ServeClient {
    /// Connects to `url` (`tcp://host:port`) and performs the version
    /// handshake. Fails eagerly on an unreachable daemon or a refused
    /// handshake, surfacing the daemon's reason.
    pub fn connect(url: &str) -> io::Result<ServeClient> {
        let addr = url
            .strip_prefix("tcp://")
            .ok_or_else(|| bad_data(format!("server URL {url:?} must start with tcp://")))?
            .to_string();
        let mut stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true).ok();
        let hello = Request::Hello {
            protocol: SERVE_PROTOCOL_VERSION,
            analyzer: ANALYZER_VERSION.to_string(),
        };
        let _span = telemetry::span("serve.rpc.hello");
        write_frame(&mut stream, hello.to_json().as_bytes())?;
        let reply = read_frame(&mut stream)?;
        match Reply::parse(&reply).map_err(bad_data)? {
            Reply::HelloOk { .. } => Ok(ServeClient { stream, addr }),
            Reply::Error { message } => Err(bad_data(format!("server {addr}: {message}"))),
            other => Err(bad_data(format!("server {addr}: unexpected handshake reply {other:?}"))),
        }
    }

    /// The daemon address this client dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, request.to_json().as_bytes())?;
        let reply = read_frame(&mut self.stream)?;
        Reply::parse(&reply).map_err(bad_data)
    }

    /// Submits `corpus` for analysis. The reply is [`Reply::Analyze`] on
    /// success, [`Reply::Busy`] under backpressure (the caller decides
    /// whether to retry), or [`Reply::Error`].
    pub fn analyze(
        &mut self,
        corpus: &Corpus,
        options: AnalysisOptions,
        mode: CacheMode,
    ) -> io::Result<Reply> {
        let _span = telemetry::span("serve.rpc.analyze");
        self.round_trip(&Request::analyze(corpus, options, mode))
    }

    /// Scrapes the daemon's metrics: the same Prometheus text it writes
    /// to its `--metrics-out` file.
    pub fn metrics(&mut self) -> io::Result<String> {
        let _span = telemetry::span("serve.rpc.metrics");
        match self.round_trip(&Request::Metrics)? {
            Reply::Metrics { prometheus } => Ok(prometheus),
            Reply::Error { message } => Err(bad_data(format!("server {}: {message}", self.addr))),
            other => Err(bad_data(format!("unexpected metrics reply {other:?}"))),
        }
    }

    /// Subscribes to watch events, consuming the client (the connection
    /// becomes a one-way event stream). `Ok` carries the subscription
    /// and whether the daemon is actually watching a tree.
    pub fn subscribe(mut self) -> io::Result<(WatchSubscription, bool)> {
        match self.round_trip(&Request::Watch)? {
            Reply::WatchOk { watching } => {
                Ok((WatchSubscription { stream: self.stream }, watching))
            }
            Reply::Error { message } => Err(bad_data(format!("server {}: {message}", self.addr))),
            other => Err(bad_data(format!("unexpected watch reply {other:?}"))),
        }
    }
}

/// A subscribed connection: yields one [`WatchEvent`] per daemon
/// re-analysis until the daemon goes away.
#[derive(Debug)]
pub struct WatchSubscription {
    stream: TcpStream,
}

impl WatchSubscription {
    /// Blocks until the next change event. `UnexpectedEof` means the
    /// daemon shut down.
    pub fn next_event(&mut self) -> io::Result<WatchEvent> {
        let body = read_frame(&mut self.stream)?;
        WatchEvent::parse(&body).map_err(bad_data)
    }
}
