//! The resident analysis daemon: `ffisafe serve`.
//!
//! An [`AnalysisServer`] wraps ONE shared
//! [`AnalysisService`] and serves it to any number of clients over plain
//! `std::net` — the same zero-dependency TCP discipline as
//! `ffisafe cache-serve`, one thread per connection, per-connection
//! failures ending that session only.
//!
//! What makes it more than a socket wrapper:
//!
//! - **Admission control.** Every analyze request passes the
//!   [`Admission`] gate: at most `max_inflight` analyses execute, at most
//!   `queue_depth` wait, and anything beyond that is refused with an
//!   explicit BUSY reply carrying the load snapshot. Backpressure is a
//!   protocol feature, not an accident of TCP buffers.
//! - **Per-client fairness.** An admitted request that left `jobs` at 0
//!   gets `fair_share_jobs(cores, running)` inference workers — the same
//!   fair-share rule the batch executor applies, driven by the *live*
//!   number of concurrent requests. Two simultaneous clients each get
//!   half the machine instead of each spinning up `cores` threads.
//! - **Telemetry from day one.** Every request runs under a
//!   `server.request` span, feeds `ffisafe_server_*` counters and a
//!   request-latency histogram, and the METRICS wire op plus
//!   `--trace-out`/`--metrics-out` snapshots expose all of it live.

use crate::admission::Admission;
use crate::protocol::{
    read_frame, write_frame, AnalyzeOutcome, Reply, Request, WatchEvent, SERVE_PROTOCOL_VERSION,
};
use ffisafe_core::{
    available_cores, fair_share_jobs, AnalysisRequest, AnalysisService, CacheMode, Corpus,
    ServiceConfig,
};
use ffisafe_support::telemetry::{
    self, HistogramValue, LogLevel, MetricsRegistry, TraceFileWriter, LATENCY_BUCKETS,
};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The analyzer version pinned by the handshake; a daemon and client
/// from different releases refuse to talk rather than disagree subtly.
pub const ANALYZER_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Configuration for one [`AnalysisServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The wrapped service's configuration (cache store, batch width).
    pub service: ServiceConfig,
    /// Concurrent analyses admitted; `0` means "auto" (one per core, so
    /// a saturated daemon still runs every admitted analysis with at
    /// least one fair-share worker).
    pub max_inflight: usize,
    /// Analyses allowed to wait for a slot before BUSY is returned.
    pub queue_depth: usize,
    /// Directory tree to watch and re-analyze on change; `None` disables
    /// watch mode.
    pub watch_root: Option<PathBuf>,
    /// Poll interval for the watcher.
    pub watch_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            service: ServiceConfig::default(),
            max_inflight: 0,
            queue_depth: 16,
            watch_root: None,
            watch_interval: Duration::from_millis(500),
        }
    }
}

/// Lock-free lifetime counters for one daemon. Feeds the METRICS wire op
/// and the `--metrics-out` file.
#[derive(Debug, Default)]
pub(crate) struct ServeCounters {
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_refused: AtomicU64,
    pub(crate) requests_total: AtomicU64,
    pub(crate) busy_total: AtomicU64,
    pub(crate) op_errors: AtomicU64,
    pub(crate) metrics_requests: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) workers_executed_total: AtomicU64,
    pub(crate) report_hits_total: AtomicU64,
    pub(crate) watch_runs_total: AtomicU64,
    pub(crate) watch_events_sent: AtomicU64,
}

/// State shared by every session thread (and the watcher) of one daemon.
pub(crate) struct ServeShared {
    pub(crate) service: AnalysisService,
    pub(crate) admission: Admission,
    pub(crate) counters: ServeCounters,
    /// Request latency observations, drained into the registry per scrape.
    latency: Mutex<HistogramValue>,
    /// Shared trace-flush policy (accumulate + atomic whole-snapshot
    /// rewrite), identical to `cache-serve`.
    trace: Option<TraceFileWriter>,
    metrics_out: Option<PathBuf>,
    /// Connections subscribed to watch events. The session thread stops
    /// writing after the subscription, so the broadcaster is the only
    /// writer on these streams.
    pub(crate) subscribers: Mutex<Vec<TcpStream>>,
    /// Whether a watcher is running (`--watch` was given).
    pub(crate) watching: bool,
}

impl ServeShared {
    /// Builds the daemon's metrics registry from the lifetime counters
    /// and the current admission state.
    pub(crate) fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = &self.counters;
        reg.inc_counter(
            "ffisafe_server_sessions_opened_total",
            "Client sessions accepted after a successful handshake",
            &[],
            c.sessions_opened.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_sessions_refused_total",
            "Client sessions refused at the handshake (version mismatch)",
            &[],
            c.sessions_refused.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_requests_total",
            "Analyze requests completed",
            &[],
            c.requests_total.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_busy_total",
            "Analyze requests refused by admission control",
            &[],
            c.busy_total.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_op_errors_total",
            "Requests that returned an error status",
            &[],
            c.op_errors.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_metrics_requests_total",
            "METRICS wire ops served",
            &[],
            c.metrics_requests.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_bytes_read_total",
            "Request frame bytes read from clients",
            &[],
            c.bytes_read.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_bytes_written_total",
            "Reply frame bytes written to clients",
            &[],
            c.bytes_written.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_workers_executed_total",
            "Inference workers executed across all requests",
            &[],
            c.workers_executed_total.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_report_hits_total",
            "Requests answered whole from the tier-2 report cache",
            &[],
            c.report_hits_total.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_watch_runs_total",
            "Watch-mode re-analyses triggered by tree changes",
            &[],
            c.watch_runs_total.load(Ordering::Relaxed),
        );
        reg.inc_counter(
            "ffisafe_server_watch_events_sent_total",
            "Watch change events delivered to subscribers",
            &[],
            c.watch_events_sent.load(Ordering::Relaxed),
        );
        reg.set_gauge(
            "ffisafe_server_inflight",
            "Analyses currently executing",
            &[],
            self.admission.running() as f64,
        );
        reg.set_gauge(
            "ffisafe_server_queued",
            "Analyses currently waiting for an execution slot",
            &[],
            self.admission.queued() as f64,
        );
        reg.set_gauge(
            "ffisafe_server_watch_subscribers",
            "Connections subscribed to watch events",
            &[],
            self.subscribers.lock().unwrap_or_else(|p| p.into_inner()).len() as f64,
        );
        reg.record_histogram(
            "ffisafe_server_request_seconds",
            "End-to-end analyze request latency (admission wait included)",
            &[],
            self.latency.lock().unwrap_or_else(|p| p.into_inner()).clone(),
        );
        reg
    }

    fn observe_latency(&self, seconds: f64) {
        self.latency.lock().unwrap_or_else(|p| p.into_inner()).observe(seconds);
    }

    /// Rewrites the daemon's `--trace-out` / `--metrics-out` snapshot
    /// files; called as each session (and each watch run) ends, so the
    /// files always cover the daemon so far.
    pub(crate) fn export(&self) {
        if let Some(path) = &self.metrics_out {
            if let Err(e) = std::fs::write(path, self.metrics().to_prometheus()) {
                telemetry::log(
                    LogLevel::Error,
                    "serve",
                    &format!("failed to write {}: {e}", path.display()),
                );
            }
        }
        if let Some(writer) = &self.trace {
            if let Err(e) = writer.flush() {
                telemetry::log(
                    LogLevel::Error,
                    "serve",
                    &format!("failed to write {}: {e}", writer.path().display()),
                );
            }
        }
    }

    /// Runs one admitted analysis and folds the outcome into counters,
    /// latency, and spans. Shared by the wire path and the watcher.
    pub(crate) fn run_analysis(
        &self,
        span_name: &'static str,
        corpus: Corpus,
        mut options: ffisafe_core::AnalysisOptions,
        mode: CacheMode,
    ) -> Result<AnalyzeOutcome, String> {
        let started = Instant::now();
        let mut span = telemetry::span_with(span_name, || {
            vec![
                ("files", corpus.files().count().to_string()),
                ("running", self.admission.running().to_string()),
            ]
        });
        if options.jobs == 0 {
            // Live fair share: this request holds one of `running` slots.
            options.jobs = fair_share_jobs(available_cores(), self.admission.running());
        }
        span.arg("jobs", options.jobs.to_string());
        let request = AnalysisRequest::new(corpus).options(options).cache_mode(mode);
        let report = self.service.analyze(&request).map_err(|e| e.to_string())?;
        let outcome = AnalyzeOutcome {
            errors: report.error_count() as u64,
            warnings: report.warning_count() as u64,
            workers_executed: report.stats.workers_executed as u64,
            report_hit: report.stats.cache_report_hit,
            jobs: options.jobs as u64,
            rendered: report.render(),
            rendered_stable: report.render_stable(),
            report_json: report.to_json(),
        };
        span.arg("errors", outcome.errors.to_string());
        span.arg("workers_executed", outcome.workers_executed.to_string());
        span.arg("report_hit", outcome.report_hit.to_string());
        drop(span);
        self.observe_latency(started.elapsed().as_secs_f64());
        let c = &self.counters;
        c.requests_total.fetch_add(1, Ordering::Relaxed);
        c.workers_executed_total.fetch_add(outcome.workers_executed, Ordering::Relaxed);
        c.report_hits_total.fetch_add(u64::from(outcome.report_hit), Ordering::Relaxed);
        Ok(outcome)
    }

    /// Delivers one watch event to every subscriber, dropping the ones
    /// whose connection is dead.
    pub(crate) fn broadcast(&self, event: &WatchEvent) {
        let body = event.to_json();
        let mut subs = self.subscribers.lock().unwrap_or_else(|p| p.into_inner());
        subs.retain_mut(|stream| match write_frame(stream, body.as_bytes()) {
            Ok(()) => {
                self.counters.watch_events_sent.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        });
    }
}

/// A resident daemon serving one [`AnalysisService`] to many TCP clients.
pub struct AnalysisServer {
    listener: TcpListener,
    config: ServeConfig,
    shared: Arc<ServeShared>,
}

impl AnalysisServer {
    /// Binds `addr` (port 0 for an ephemeral port) and prepares to serve.
    /// Fails when the listener cannot bind or the service's cache cannot
    /// open.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<AnalysisServer> {
        let service = AnalysisService::with_config(config.service.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        let max_inflight =
            if config.max_inflight == 0 { available_cores() } else { config.max_inflight };
        Ok(AnalysisServer {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(ServeShared {
                service,
                admission: Admission::new(max_inflight, config.queue_depth),
                counters: ServeCounters::default(),
                latency: Mutex::new(HistogramValue::new(LATENCY_BUCKETS)),
                trace: None,
                metrics_out: None,
                subscribers: Mutex::new(Vec::new()),
                watching: config.watch_root.is_some(),
            }),
            config,
        })
    }

    /// Rewrite a Chrome trace-event JSON snapshot of the daemon's spans
    /// to `path` after each session ends. Must be called before serving.
    pub fn set_trace_out(&mut self, path: PathBuf) {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.trace = Some(TraceFileWriter::new(path));
        }
    }

    /// Rewrite a Prometheus text snapshot of the daemon's metrics to
    /// `path` after each session ends. Must be called before serving.
    pub fn set_metrics_out(&mut self, path: PathBuf) {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.metrics_out = Some(path);
        }
    }

    /// The bound address — useful when binding port 0.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The admission gate, exposed so tests can saturate it
    /// deterministically before exercising the BUSY path.
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// Accepts clients forever, one thread per connection; starts the
    /// watcher first when configured. Per-connection errors end that
    /// session only. Returns only if the listener itself fails.
    pub fn serve(&self) -> io::Result<()> {
        if let Ok(addr) = self.local_addr() {
            telemetry::log(LogLevel::Info, "serve", &format!("listening on {addr}"));
        }
        if let Some(root) = &self.config.watch_root {
            crate::watch::spawn_watcher(
                Arc::clone(&self.shared),
                root.clone(),
                self.config.watch_interval,
            );
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = serve_session(stream, &shared);
                telemetry::flush_thread();
                shared.export();
            });
        }
    }

    /// Runs [`AnalysisServer::serve`] on a background thread and returns
    /// the bound address. Tests and in-process callers use this; the CLI
    /// calls `serve` directly.
    pub fn spawn(self) -> io::Result<std::net::SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.serve();
        });
        Ok(addr)
    }
}

/// One client session: handshake, then request/reply until disconnect.
/// A `WATCH` request turns the session into a subscription: the reply
/// stream is handed to the broadcaster and this thread only keeps
/// reading to notice the disconnect.
fn serve_session(mut stream: TcpStream, shared: &ServeShared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let peer =
        stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_string());
    handshake_server(&mut stream, shared, &peer)?;
    let (mut requests, mut bytes_in, mut bytes_out) = (0u64, 0u64, 0u64);
    let result = loop {
        let body = match read_frame(&mut stream) {
            Ok(body) => body,
            // Disconnect is the normal end of a session.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => {
                // Oversized frame or mid-frame garbage: the stream cannot
                // be resynchronized, so answer with an error and end the
                // session — the listener and every other client live on.
                if e.kind() == io::ErrorKind::InvalidData {
                    shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = Reply::Error { message: e.to_string() }.to_json();
                    let _ = write_frame(&mut stream, reply.as_bytes());
                }
                break Err(e);
            }
        };
        bytes_in += body.len() as u64;
        shared.counters.bytes_read.fetch_add(body.len() as u64, Ordering::Relaxed);
        let mut subscribed = false;
        let reply = match Request::parse(&body) {
            Ok(Request::Analyze { bypass, options, files }) => {
                handle_analyze(shared, bypass, options, files)
            }
            Ok(Request::Metrics) => {
                shared.counters.metrics_requests.fetch_add(1, Ordering::Relaxed);
                Reply::Metrics { prometheus: shared.metrics().to_prometheus() }
            }
            Ok(Request::Watch) => {
                subscribed = shared.watching;
                Reply::WatchOk { watching: shared.watching }
            }
            Ok(Request::Hello { .. }) => {
                shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
                Reply::Error { message: "unexpected HELLO after the handshake".to_string() }
            }
            Err(msg) => {
                shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
                telemetry::log(LogLevel::Warn, "serve", &format!("bad request from {peer}: {msg}"));
                Reply::Error { message: msg }
            }
        };
        let reply = reply.to_json();
        bytes_out += reply.len() as u64;
        shared.counters.bytes_written.fetch_add(reply.len() as u64, Ordering::Relaxed);
        requests += 1;
        if let Err(e) = write_frame(&mut stream, reply.as_bytes()) {
            break Err(e);
        }
        // Flush this thread's spans into the global sink while the
        // session is still alive, so METRICS/trace snapshots from other
        // sessions see them.
        telemetry::flush_thread();
        shared.export();
        if subscribed {
            // From here the broadcaster owns writes; we hold the read
            // half only to notice the disconnect.
            let clone = match stream.try_clone() {
                Ok(clone) => clone,
                Err(e) => break Err(e),
            };
            shared.subscribers.lock().unwrap_or_else(|p| p.into_inner()).push(clone);
            telemetry::log(LogLevel::Info, "serve", &format!("watch subscriber ({peer})"));
            let mut probe = [0u8; 1];
            loop {
                use std::io::Read as _;
                match stream.read(&mut probe) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {} // Subscribers shouldn't send; tolerate it.
                }
            }
            break Ok(());
        }
    };
    telemetry::log(
        LogLevel::Info,
        "serve",
        &format!(
            "session closed ({peer}): {requests} request(s), {bytes_in} B in, {bytes_out} B out"
        ),
    );
    result
}

fn handle_analyze(
    shared: &ServeShared,
    bypass: bool,
    options: ffisafe_core::AnalysisOptions,
    files: Vec<(String, String)>,
) -> Reply {
    let permit = match shared.admission.try_admit() {
        Ok(permit) => permit,
        Err(busy) => {
            shared.counters.busy_total.fetch_add(1, Ordering::Relaxed);
            return Reply::Busy { running: busy.running as u64, queued: busy.queued as u64 };
        }
    };
    let mut builder = Corpus::builder();
    for (name, src) in files {
        builder = match builder.source(name, src) {
            Ok(builder) => builder,
            Err(e) => {
                shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
                return Reply::Error { message: e.to_string() };
            }
        };
    }
    let mode = if bypass { CacheMode::Bypass } else { CacheMode::Shared };
    let result = shared.run_analysis("server.request", builder.build(), options, mode);
    drop(permit);
    match result {
        Ok(outcome) => Reply::Analyze(Box::new(outcome)),
        Err(message) => {
            shared.counters.op_errors.fetch_add(1, Ordering::Relaxed);
            Reply::Error { message }
        }
    }
}

fn handshake_server(stream: &mut TcpStream, shared: &ServeShared, peer: &str) -> io::Result<()> {
    let body = read_frame(stream)?;
    let _span = telemetry::span_with("server.hello", || vec![("bytes_in", body.len().to_string())]);
    let refusal = match Request::parse(&body) {
        Ok(Request::Hello { protocol, analyzer }) => {
            if protocol != SERVE_PROTOCOL_VERSION {
                Some(format!(
                    "protocol version mismatch: client {protocol}, server {SERVE_PROTOCOL_VERSION}"
                ))
            } else if analyzer != ANALYZER_VERSION {
                Some(format!(
                    "analyzer version mismatch: client {analyzer:?}, server {ANALYZER_VERSION:?}"
                ))
            } else {
                None
            }
        }
        Ok(_) => Some("expected HELLO".to_string()),
        Err(msg) => Some(format!("malformed HELLO: {msg}")),
    };
    let reply = match &refusal {
        None => {
            shared.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
            telemetry::log(LogLevel::Info, "serve", &format!("session open ({peer})"));
            Reply::HelloOk {
                protocol: SERVE_PROTOCOL_VERSION,
                analyzer: ANALYZER_VERSION.to_string(),
            }
        }
        Some(msg) => {
            shared.counters.sessions_refused.fetch_add(1, Ordering::Relaxed);
            telemetry::log(LogLevel::Warn, "serve", &format!("session refused ({peer}): {msg}"));
            Reply::Error { message: msg.clone() }
        }
    };
    write_frame(stream, reply.to_json().as_bytes())?;
    match refusal {
        None => Ok(()),
        Some(msg) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
    }
}
