//! The `ffisafe serve` wire protocol: u32-length-prefixed JSON frames.
//!
//! Every message is a *frame* — a little-endian `u32` byte length followed
//! by that many bytes of UTF-8 JSON — the same framing discipline as the
//! cache wire protocol, with a smaller [`MAX_FRAME_BYTES`] cap because
//! requests carry source text, not cache payloads. A length prefix over
//! the cap is treated as corruption: the daemon answers with an error
//! reply and ends that session (the stream cannot be resynchronized), but
//! keeps serving every other client.
//!
//! A connection starts with one HELLO round-trip pinning both the
//! protocol version ([`SERVE_PROTOCOL_VERSION`]) and the analyzer
//! version; a daemon for a different version *refuses* the session — it
//! never tears down the listener, and it never wipes anything, because
//! matching clients may be mid-flight.
//!
//! ```text
//! client → {"op":"hello","protocol":1,"analyzer":"0.2.0"}
//! server → {"status":"ok","protocol":1,"analyzer":"0.2.0"} | {"status":"error",...}
//!
//! client → {"op":"analyze","cache":"shared"|"bypass",
//!           "options":{"flow_sensitive":b,"gc_effects":b,"jobs":n},
//!           "files":[{"name":...,"src":...},...]}
//! server → {"status":"ok","errors":n,...,"rendered":...,"report":...}
//!        | {"status":"busy","running":n,"queued":n,"error":...}
//!        | {"status":"error","error":...}
//!
//! client → {"op":"metrics"}
//! server → {"status":"ok","metrics":"<Prometheus text>"}
//!
//! client → {"op":"watch"}
//! server → {"status":"ok","watching":true}
//! server → {"event":"change",...}            (stream, one frame per change)
//! ```
//!
//! Requests and replies are plain data ([`Request`], [`Reply`],
//! [`WatchEvent`]) with symmetric `to_json`/`parse` so both ends and the
//! tests speak through one codec.

use ffisafe_core::{AnalysisOptions, CacheMode, Corpus};
use ffisafe_support::json::{self, escape_into, Json};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Bump when the frame layout or operation set changes. A mismatch
/// refuses the session at the handshake.
pub const SERVE_PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame body. Larger length prefixes are corruption
/// (or abuse) and must not allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame: length prefix, body, flush.
pub fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one frame. `UnexpectedEof` on the length prefix is the normal
/// end of a session; a prefix over [`MAX_FRAME_BYTES`] is `InvalidData`
/// (the caller must not try to resynchronize the stream after it).
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data(format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing or non-boolean `{key}`"))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// The handshake: first frame of every session.
    Hello {
        /// The client's [`SERVE_PROTOCOL_VERSION`].
        protocol: u32,
        /// The client's analyzer version string.
        analyzer: String,
    },
    /// Analyze a corpus shipped inline as named sources.
    Analyze {
        /// `true` forces a cold run ([`CacheMode::Bypass`]).
        bypass: bool,
        /// Analysis options; `jobs = 0` lets the daemon assign a fair
        /// share of its cores.
        options: AnalysisOptions,
        /// `(name, source)` pairs; the kind is inferred from each name's
        /// extension, exactly as CLI arguments are.
        files: Vec<(String, String)>,
    },
    /// Scrape the daemon's metrics registry as Prometheus text.
    Metrics,
    /// Subscribe this connection to watch-mode diagnostic events.
    Watch,
}

impl Request {
    /// An [`Request::Analyze`] for `corpus` under `options`/`mode`.
    pub fn analyze(corpus: &Corpus, options: AnalysisOptions, mode: CacheMode) -> Request {
        Request::Analyze {
            bypass: mode == CacheMode::Bypass,
            options,
            files: corpus.files().map(|f| (f.name().to_string(), f.src().to_string())).collect(),
        }
    }

    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Hello { protocol, analyzer } => {
                out.push_str("{\"op\":\"hello\",\"protocol\":");
                let _ = write!(out, "{protocol}");
                out.push_str(",\"analyzer\":");
                quote_into(&mut out, analyzer);
                out.push('}');
            }
            Request::Analyze { bypass, options, files } => {
                out.push_str("{\"op\":\"analyze\",\"cache\":");
                out.push_str(if *bypass { "\"bypass\"" } else { "\"shared\"" });
                let _ = write!(
                    out,
                    ",\"options\":{{\"flow_sensitive\":{},\"gc_effects\":{},\"jobs\":{}}}",
                    options.flow_sensitive, options.gc_effects, options.jobs
                );
                out.push_str(",\"files\":[");
                for (i, (name, src)) in files.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    quote_into(&mut out, name);
                    out.push_str(",\"src\":");
                    quote_into(&mut out, src);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Request::Metrics => out.push_str("{\"op\":\"metrics\"}"),
            Request::Watch => out.push_str("{\"op\":\"watch\"}"),
        }
        out
    }

    /// Parses a request frame body.
    pub fn parse(body: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(body).map_err(|_| "request is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let op = str_field(&doc, "op")?;
        match op.as_str() {
            "hello" => Ok(Request::Hello {
                protocol: u64_field(&doc, "protocol")? as u32,
                analyzer: str_field(&doc, "analyzer")?,
            }),
            "analyze" => {
                let bypass = match str_field(&doc, "cache")?.as_str() {
                    "shared" => false,
                    "bypass" => true,
                    other => return Err(format!("unknown cache mode `{other}`")),
                };
                let opts = doc.get("options").ok_or("missing `options`")?;
                let options = AnalysisOptions {
                    flow_sensitive: bool_field(opts, "flow_sensitive")?,
                    gc_effects: bool_field(opts, "gc_effects")?,
                    jobs: u64_field(opts, "jobs")? as usize,
                };
                let files = doc
                    .get("files")
                    .and_then(Json::as_array)
                    .ok_or("missing `files` array")?
                    .iter()
                    .map(|f| Ok((str_field(f, "name")?, str_field(f, "src")?)))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Request::Analyze { bypass, options, files })
            }
            "metrics" => Ok(Request::Metrics),
            "watch" => Ok(Request::Watch),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// The result payload of a successful analyze round-trip.
///
/// `rendered_stable` is the byte-stable text report (no wall-clock
/// suffix) — the field the byte-identical-to-local-analysis contract is
/// asserted on. `report_json` is the full versioned
/// [`ffisafe_core::AnalysisReport::to_json`] document, whose
/// `seconds`-type fields are naturally volatile.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeOutcome {
    /// Error diagnostics in the report.
    pub errors: u64,
    /// Warning diagnostics in the report.
    pub warnings: u64,
    /// Inference workers that actually executed (0 on a warm hit).
    pub workers_executed: u64,
    /// Whether the whole report replayed from the tier-2 report cache.
    pub report_hit: bool,
    /// Worker-pool width the daemon granted this request.
    pub jobs: u64,
    /// The human report, as `ffisafe` would print it (wall-clock suffix
    /// included).
    pub rendered: String,
    /// The byte-stable human report (no timings).
    pub rendered_stable: String,
    /// The full versioned JSON report.
    pub report_json: String,
}

/// One server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Handshake accepted.
    HelloOk {
        /// The server's protocol version.
        protocol: u32,
        /// The server's analyzer version.
        analyzer: String,
    },
    /// Analysis completed.
    Analyze(Box<AnalyzeOutcome>),
    /// The admission queue is full; try again later.
    Busy {
        /// Requests currently executing.
        running: u64,
        /// Requests currently queued.
        queued: u64,
    },
    /// The daemon's metrics registry as Prometheus text.
    Metrics {
        /// The exposition text.
        prometheus: String,
    },
    /// Watch subscription accepted; change events follow as their own
    /// frames.
    WatchOk {
        /// Whether the daemon is actually watching a tree (`false` when
        /// it was started without `--watch`; the subscription then never
        /// produces events).
        watching: bool,
    },
    /// The request failed.
    Error {
        /// Why.
        message: String,
    },
}

impl Reply {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Reply::HelloOk { protocol, analyzer } => {
                let _ = write!(out, "{{\"status\":\"ok\",\"protocol\":{protocol},\"analyzer\":");
                quote_into(&mut out, analyzer);
                out.push('}');
            }
            Reply::Analyze(o) => {
                let _ = write!(
                    out,
                    "{{\"status\":\"ok\",\"errors\":{},\"warnings\":{},\"workers_executed\":{},\"report_hit\":{},\"jobs\":{},\"rendered\":",
                    o.errors, o.warnings, o.workers_executed, o.report_hit, o.jobs
                );
                quote_into(&mut out, &o.rendered);
                out.push_str(",\"rendered_stable\":");
                quote_into(&mut out, &o.rendered_stable);
                out.push_str(",\"report\":");
                quote_into(&mut out, &o.report_json);
                out.push('}');
            }
            Reply::Busy { running, queued } => {
                let _ = write!(
                    out,
                    "{{\"status\":\"busy\",\"running\":{running},\"queued\":{queued},\"error\":\"admission queue full\"}}"
                );
            }
            Reply::Metrics { prometheus } => {
                out.push_str("{\"status\":\"ok\",\"metrics\":");
                quote_into(&mut out, prometheus);
                out.push('}');
            }
            Reply::WatchOk { watching } => {
                let _ = write!(out, "{{\"status\":\"ok\",\"watching\":{watching}}}");
            }
            Reply::Error { message } => {
                out.push_str("{\"status\":\"error\",\"error\":");
                quote_into(&mut out, message);
                out.push('}');
            }
        }
        out
    }

    /// Parses a reply frame body. The variant is keyed on `status` plus
    /// which fields are present.
    pub fn parse(body: &[u8]) -> Result<Reply, String> {
        let text = std::str::from_utf8(body).map_err(|_| "reply is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match str_field(&doc, "status")?.as_str() {
            "busy" => Ok(Reply::Busy {
                running: u64_field(&doc, "running")?,
                queued: u64_field(&doc, "queued")?,
            }),
            "error" => Ok(Reply::Error { message: str_field(&doc, "error")? }),
            "ok" => {
                if doc.get("metrics").is_some() {
                    Ok(Reply::Metrics { prometheus: str_field(&doc, "metrics")? })
                } else if doc.get("watching").is_some() {
                    Ok(Reply::WatchOk { watching: bool_field(&doc, "watching")? })
                } else if doc.get("rendered").is_some() {
                    Ok(Reply::Analyze(Box::new(AnalyzeOutcome {
                        errors: u64_field(&doc, "errors")?,
                        warnings: u64_field(&doc, "warnings")?,
                        workers_executed: u64_field(&doc, "workers_executed")?,
                        report_hit: bool_field(&doc, "report_hit")?,
                        jobs: u64_field(&doc, "jobs")?,
                        rendered: str_field(&doc, "rendered")?,
                        rendered_stable: str_field(&doc, "rendered_stable")?,
                        report_json: str_field(&doc, "report")?,
                    })))
                } else {
                    Ok(Reply::HelloOk {
                        protocol: u64_field(&doc, "protocol")? as u32,
                        analyzer: str_field(&doc, "analyzer")?,
                    })
                }
            }
            other => Err(format!("unknown status `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------
// Watch events
// ---------------------------------------------------------------------

/// One watch-mode change notification, streamed to every subscribed
/// connection after the daemon re-analyzes the watched tree.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchEvent {
    /// The watched root, as configured.
    pub root: String,
    /// Monotonic change counter (1 = the initial analysis at startup).
    pub generation: u64,
    /// Error diagnostics in the re-analysis.
    pub errors: u64,
    /// Warning diagnostics in the re-analysis.
    pub warnings: u64,
    /// Inference workers the re-analysis executed (0 when the change was
    /// already cached, e.g. a revert).
    pub workers_executed: u64,
    /// The byte-stable text report of the re-analysis.
    pub rendered_stable: String,
}

impl WatchEvent {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"event\":\"change\",\"root\":");
        quote_into(&mut out, &self.root);
        let _ = write!(
            out,
            ",\"generation\":{},\"errors\":{},\"warnings\":{},\"workers_executed\":{},\"rendered_stable\":",
            self.generation, self.errors, self.warnings, self.workers_executed
        );
        quote_into(&mut out, &self.rendered_stable);
        out.push('}');
        out
    }

    /// Parses an event frame body.
    pub fn parse(body: &[u8]) -> Result<WatchEvent, String> {
        let text = std::str::from_utf8(body).map_err(|_| "event is not UTF-8".to_string())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match str_field(&doc, "event")?.as_str() {
            "change" => Ok(WatchEvent {
                root: str_field(&doc, "root")?,
                generation: u64_field(&doc, "generation")?,
                errors: u64_field(&doc, "errors")?,
                warnings: u64_field(&doc, "warnings")?,
                workers_executed: u64_field(&doc, "workers_executed")?,
                rendered_stable: str_field(&doc, "rendered_stable")?,
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_codec() {
        let corpus = Corpus::builder()
            .ml_source("lib.ml", "external f : int -> int = \"ml_f\"\n")
            .c_source("glue \"quoted\".c", "value ml_f(value n) { return n; }\n")
            .build();
        let requests = [
            Request::Hello { protocol: SERVE_PROTOCOL_VERSION, analyzer: "0.2.0".into() },
            Request::analyze(
                &corpus,
                AnalysisOptions { flow_sensitive: false, gc_effects: true, jobs: 3 },
                CacheMode::Bypass,
            ),
            Request::Metrics,
            Request::Watch,
        ];
        for request in requests {
            let parsed = Request::parse(request.to_json().as_bytes()).expect("parses");
            assert_eq!(parsed, request);
        }
    }

    #[test]
    fn replies_round_trip_through_the_codec() {
        let replies = [
            Reply::HelloOk { protocol: 1, analyzer: "0.2.0".into() },
            Reply::Analyze(Box::new(AnalyzeOutcome {
                errors: 2,
                warnings: 1,
                workers_executed: 7,
                report_hit: false,
                jobs: 4,
                rendered: "line \"one\"\n".into(),
                rendered_stable: "line one\n".into(),
                report_json: "{\n  \"schema_version\": 1\n}\n".into(),
            })),
            Reply::Busy { running: 8, queued: 16 },
            Reply::Metrics { prometheus: "# TYPE x counter\nx 1\n".into() },
            Reply::WatchOk { watching: true },
            Reply::Error { message: "nope\n\"quoted\"".into() },
        ];
        for reply in replies {
            let parsed = Reply::parse(reply.to_json().as_bytes()).expect("parses");
            assert_eq!(parsed, reply);
        }
    }

    #[test]
    fn watch_events_round_trip_through_the_codec() {
        let event = WatchEvent {
            root: "/tmp/watched".into(),
            generation: 3,
            errors: 1,
            warnings: 0,
            workers_executed: 5,
            rendered_stable: "report\n".into(),
        };
        assert_eq!(WatchEvent::parse(event.to_json().as_bytes()).unwrap(), event);
        assert!(WatchEvent::parse(b"{\"event\":\"other\"}").is_err());
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            &b"\xff\xfe"[..],
            b"not json",
            b"{}",
            b"{\"op\":\"warp\"}",
            b"{\"op\":\"analyze\"}",
            b"{\"op\":\"analyze\",\"cache\":\"warm\",\"options\":{},\"files\":[]}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
