//! `ffisafe-serve` — the resident analysis daemon and its client.
//!
//! Batch analysis (the CLI, sweeps) pays corpus load + service
//! construction + cold caches on every invocation. This crate keeps ONE
//! [`AnalysisService`](ffisafe_core::AnalysisService) resident behind a
//! TCP listener so that editors, CI fan-out, and repeated local runs
//! share its warm caches and its machine budget:
//!
//! - [`protocol`] — the u32-length-prefixed JSON wire format: versioned
//!   HELLO handshake, analyze/metrics/watch ops, typed
//!   [`Request`]/[`Reply`] codec.
//! - [`admission`] — the bounded execution gate behind explicit BUSY
//!   backpressure.
//! - [`daemon`] — [`AnalysisServer`]: the listener, per-client fair
//!   scheduling, telemetry, `--trace-out`/`--metrics-out` snapshots.
//! - [`watch`] — fingerprint-polling re-analysis of a source tree,
//!   streaming [`WatchEvent`]s to subscribers.
//! - [`client`] — [`ServeClient`], the blocking client the CLI's
//!   `--server-url` mode and the load harness use.
//!
//! Everything runs on `std` alone, like the rest of the workspace.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod protocol;
pub(crate) mod watch;

pub use admission::{Admission, Busy, Permit};
pub use client::{ServeClient, WatchSubscription};
pub use daemon::{AnalysisServer, ServeConfig, ANALYZER_VERSION};
pub use protocol::{
    AnalyzeOutcome, Reply, Request, WatchEvent, MAX_FRAME_BYTES, SERVE_PROTOCOL_VERSION,
};
