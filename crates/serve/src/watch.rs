//! Watch mode: poll a source tree, re-analyze on change, stream
//! diagnostics to subscribers.
//!
//! The watcher is deliberately boring: every `interval` it re-reads the
//! tree into a [`Corpus`] and compares content fingerprints — the same
//! 128-bit digest the cache keys on, so "changed" means *the analysis
//! input changed*, not that an mtime wobbled or an editor wrote a
//! temp file. On change it takes a *blocking* admission slot (the
//! watcher must never be refused — a dropped change would silently
//! desynchronize subscribers), re-analyzes through the shared service
//! (warm functions replay from the cache), and broadcasts one
//! [`WatchEvent`] frame to every subscribed connection.

use crate::daemon::ServeShared;
use crate::protocol::WatchEvent;
use ffisafe_core::{AnalysisOptions, CacheMode, Corpus};
use ffisafe_support::telemetry::{self, LogLevel};
use ffisafe_support::Fingerprint;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Starts the watch loop on a background thread. The thread runs for the
/// rest of the process, like the session threads it feeds.
pub(crate) fn spawn_watcher(shared: Arc<ServeShared>, root: PathBuf, interval: Duration) {
    std::thread::spawn(move || {
        telemetry::log(
            LogLevel::Info,
            "serve",
            &format!("watching {} every {:?}", root.display(), interval),
        );
        let mut last: Option<Fingerprint> = None;
        let mut generation = 0u64;
        loop {
            let corpus = match Corpus::from_dir(&root) {
                Ok(corpus) => corpus,
                Err(e) => {
                    // A mid-edit tree (file vanished between listing and
                    // reading) heals on the next poll.
                    telemetry::log(
                        LogLevel::Warn,
                        "serve",
                        &format!("watch read of {} failed: {e}", root.display()),
                    );
                    std::thread::sleep(interval);
                    continue;
                }
            };
            let fingerprint = corpus.fingerprint();
            if last != Some(fingerprint) {
                last = Some(fingerprint);
                generation += 1;
                run_once(&shared, &root, corpus, generation);
            }
            std::thread::sleep(interval);
        }
    });
}

/// One watch re-analysis: admit (blocking), analyze, count, broadcast.
fn run_once(shared: &ServeShared, root: &std::path::Path, corpus: Corpus, generation: u64) {
    let permit = shared.admission.admit();
    let result =
        shared.run_analysis("server.watch", corpus, AnalysisOptions::default(), CacheMode::Shared);
    drop(permit);
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(e) => {
            telemetry::log(
                LogLevel::Error,
                "serve",
                &format!("watch analysis of {} failed: {e}", root.display()),
            );
            return;
        }
    };
    shared.counters.watch_runs_total.fetch_add(1, Ordering::Relaxed);
    telemetry::log(
        LogLevel::Info,
        "serve",
        &format!(
            "watch generation {generation}: {} error(s), {} worker(s) executed",
            outcome.errors, outcome.workers_executed
        ),
    );
    shared.broadcast(&WatchEvent {
        root: root.display().to_string(),
        generation,
        errors: outcome.errors,
        warnings: outcome.warnings,
        workers_executed: outcome.workers_executed,
        rendered_stable: outcome.rendered_stable,
    });
    telemetry::flush_thread();
    shared.export();
}
