//! End-to-end: a daemon serving concurrent clients must be
//! indistinguishable from local analysis, and a warm resubmission must
//! execute zero inference workers.

use ffisafe_core::{
    AnalysisOptions, AnalysisRequest, AnalysisService, CacheMode, Corpus, ServiceConfig,
};
use ffisafe_serve::{AnalysisServer, Reply, ServeClient, ServeConfig};
use std::net::SocketAddr;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ffisafe-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus(tag: &str, buggy: bool) -> Corpus {
    let ret = if buggy { "Val_int(n)" } else { "Val_int(Int_val(n) + 1)" };
    Corpus::builder()
        .ml_source(format!("{tag}.ml"), format!("external f : int -> int = \"{tag}_f\"\n"))
        .c_source(format!("{tag}_stubs.c"), format!("value {tag}_f(value n) {{ return {ret}; }}\n"))
        .build()
}

fn spawn_daemon(cache_dir: &std::path::Path) -> SocketAddr {
    let config = ServeConfig {
        service: ServiceConfig { cache_dir: Some(cache_dir.to_path_buf()), ..Default::default() },
        ..Default::default()
    };
    AnalysisServer::bind("127.0.0.1:0", config).unwrap().spawn().unwrap()
}

fn analyze_ok(client: &mut ServeClient, corpus: &Corpus) -> ffisafe_serve::AnalyzeOutcome {
    match client.analyze(corpus, AnalysisOptions::default(), CacheMode::Shared).unwrap() {
        Reply::Analyze(outcome) => *outcome,
        other => panic!("expected analyze reply, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_local_analysis_byte_for_byte() {
    let cache = temp_dir("shared");
    let addr = spawn_daemon(&cache);
    let url = format!("tcp://{addr}");

    // Two clients, two different corpora, concurrently.
    let handles: Vec<_> = [("alpha", false), ("beta", true)]
        .into_iter()
        .map(|(tag, buggy)| {
            let url = url.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&url).unwrap();
                (tag, buggy, analyze_ok(&mut client, &corpus(tag, buggy)))
            })
        })
        .collect();

    // Local reference runs use their own cold cache so the cache counters
    // inside the JSON report agree with the daemon's first sight of each
    // corpus.
    let local_cache = temp_dir("local");
    let local = AnalysisService::with_config(ServiceConfig {
        cache_dir: Some(local_cache.clone()),
        ..Default::default()
    })
    .unwrap();
    for handle in handles {
        let (tag, buggy, outcome) = handle.join().unwrap();
        let report = local.analyze(&AnalysisRequest::new(corpus(tag, buggy))).unwrap();
        assert_eq!(
            outcome.rendered_stable,
            report.render_stable(),
            "daemon and local reports must be byte-identical for {tag}"
        );
        assert_eq!(outcome.errors, report.error_count() as u64);
        assert_eq!(buggy, outcome.errors > 0, "{tag} report:\n{}", outcome.rendered);
    }
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&local_cache);
}

#[test]
fn warm_resubmission_executes_zero_workers() {
    let cache = temp_dir("warm");
    let addr = spawn_daemon(&cache);
    let mut client = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    let corpus = corpus("gamma", false);

    let cold = analyze_ok(&mut client, &corpus);
    assert!(!cold.report_hit, "first submission must be a cache miss");
    assert!(cold.workers_executed > 0, "cold run must execute workers");

    // Same corpus again — even from a brand-new connection.
    let mut second = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    let warm = analyze_ok(&mut second, &corpus);
    assert!(warm.report_hit, "resubmission must replay the tier-2 report");
    assert_eq!(warm.workers_executed, 0, "warm resubmission must execute zero workers");
    assert_eq!(warm.rendered_stable, cold.rendered_stable, "warm replay must be byte-identical");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn bypass_requests_skip_the_cache() {
    let cache = temp_dir("bypass");
    let addr = spawn_daemon(&cache);
    let mut client = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    let corpus = corpus("delta", false);

    let first = analyze_ok(&mut client, &corpus);
    assert!(first.workers_executed > 0);
    let again = match client.analyze(&corpus, AnalysisOptions::default(), CacheMode::Bypass) {
        Ok(Reply::Analyze(outcome)) => *outcome,
        other => panic!("expected analyze reply, got {other:?}"),
    };
    assert!(!again.report_hit, "bypass must not read the report cache");
    assert!(again.workers_executed > 0, "bypass must re-execute workers");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn metrics_op_reports_request_counters() {
    let cache = temp_dir("metrics");
    let addr = spawn_daemon(&cache);
    let mut client = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    let _ = analyze_ok(&mut client, &corpus("epsilon", false));
    let text = client.metrics().unwrap();
    assert!(text.contains("ffisafe_server_requests_total 1"), "metrics:\n{text}");
    assert!(text.contains("ffisafe_server_sessions_opened_total 1"), "metrics:\n{text}");
    assert!(text.contains("ffisafe_server_request_seconds_count 1"), "metrics:\n{text}");
    let _ = std::fs::remove_dir_all(&cache);
}
