//! Protocol edge cases (satellite 3): the daemon must degrade per
//! session, never per process.
//!
//! - An oversized frame gets an error reply, not a panic, and the
//!   listener keeps accepting.
//! - A mid-frame disconnect ends that session only; other clients keep
//!   being served.
//! - A HELLO version mismatch refuses the session without tearing down
//!   the listener.
//! - A saturated admission queue answers BUSY with a load snapshot.

use ffisafe_core::{AnalysisOptions, CacheMode, Corpus};
use ffisafe_serve::protocol::{read_frame, write_frame, Reply, Request};
use ffisafe_serve::{
    AnalysisServer, ServeClient, ServeConfig, ANALYZER_VERSION, SERVE_PROTOCOL_VERSION,
};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};

fn corpus(tag: &str) -> Corpus {
    Corpus::builder()
        .ml_source(format!("{tag}.ml"), format!("external f : int -> int = \"{tag}_f\"\n"))
        .c_source(
            format!("{tag}_stubs.c"),
            format!("value {tag}_f(value n) {{ return Val_int(Int_val(n) + 1); }}\n"),
        )
        .build()
}

/// A daemon with no cache store (every request analyzes cold).
fn spawn_daemon(config: ServeConfig) -> (SocketAddr, ()) {
    let server = AnalysisServer::bind("127.0.0.1:0", config).unwrap();
    (server.spawn().unwrap(), ())
}

fn handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    let hello =
        Request::Hello { protocol: SERVE_PROTOCOL_VERSION, analyzer: ANALYZER_VERSION.to_string() };
    write_frame(&mut stream, hello.to_json().as_bytes()).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert!(matches!(Reply::parse(&reply).unwrap(), Reply::HelloOk { .. }));
    stream
}

fn assert_still_serving(addr: SocketAddr, tag: &str) {
    let mut client = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    match client.analyze(&corpus(tag), AnalysisOptions::default(), CacheMode::Shared).unwrap() {
        Reply::Analyze(outcome) => assert_eq!(outcome.errors, 0, "{}", outcome.rendered),
        other => panic!("daemon no longer serving: {other:?}"),
    }
}

#[test]
fn oversized_frame_gets_an_error_reply_not_a_panic() {
    let (addr, ()) = spawn_daemon(ServeConfig::default());
    let mut stream = handshake(addr);
    // A length prefix far over MAX_FRAME_BYTES; no body follows.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Reply::parse(&reply).unwrap() {
        Reply::Error { message } => assert!(message.contains("exceeds"), "{message}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    // That session is over, but the daemon still serves new clients.
    assert_still_serving(addr, "after-oversize");
}

#[test]
fn mid_frame_disconnect_leaves_the_daemon_serving_others() {
    let (addr, ()) = spawn_daemon(ServeConfig::default());
    {
        let mut stream = handshake(addr);
        // Promise 1000 bytes, send 3, hang up.
        stream.write_all(&1000u32.to_le_bytes()).unwrap();
        stream.write_all(b"abc").unwrap();
        stream.flush().unwrap();
    }
    assert_still_serving(addr, "after-disconnect");
}

#[test]
fn hello_version_mismatch_refuses_the_session_only() {
    let (addr, ()) = spawn_daemon(ServeConfig::default());

    // Wrong protocol version.
    let mut stream = TcpStream::connect(addr).unwrap();
    let hello =
        Request::Hello { protocol: SERVE_PROTOCOL_VERSION + 1, analyzer: ANALYZER_VERSION.into() };
    write_frame(&mut stream, hello.to_json().as_bytes()).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Reply::parse(&reply).unwrap() {
        Reply::Error { message } => {
            assert!(message.contains("protocol version mismatch"), "{message}")
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // Wrong analyzer version.
    let mut stream = TcpStream::connect(addr).unwrap();
    let hello = Request::Hello { protocol: SERVE_PROTOCOL_VERSION, analyzer: "0.0.0-other".into() };
    write_frame(&mut stream, hello.to_json().as_bytes()).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Reply::parse(&reply).unwrap() {
        Reply::Error { message } => {
            assert!(message.contains("analyzer version mismatch"), "{message}")
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // The listener survived both refusals.
    assert_still_serving(addr, "after-mismatch");
}

#[test]
fn saturated_admission_queue_answers_busy() {
    // One slot, no queue; hold the slot directly so the BUSY path is
    // deterministic rather than a race against a slow analysis.
    let server = AnalysisServer::bind(
        "127.0.0.1:0",
        ServeConfig { max_inflight: 1, queue_depth: 0, ..Default::default() },
    )
    .unwrap();
    // Leak the permit's referent: the server moves into its accept
    // thread, so hold the gate through a leaked borrow instead.
    let server: &'static AnalysisServer = Box::leak(Box::new(server));
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.serve();
    });
    let permit = server.admission().try_admit().unwrap();

    let mut client = ServeClient::connect(&format!("tcp://{addr}")).unwrap();
    match client.analyze(&corpus("busy"), AnalysisOptions::default(), CacheMode::Shared).unwrap() {
        Reply::Busy { running, queued } => {
            assert_eq!(running, 1);
            assert_eq!(queued, 0);
        }
        other => panic!("expected BUSY, got {other:?}"),
    }

    // Freeing the slot lets the same connection through.
    drop(permit);
    match client.analyze(&corpus("busy"), AnalysisOptions::default(), CacheMode::Shared).unwrap() {
        Reply::Analyze(outcome) => assert_eq!(outcome.errors, 0, "{}", outcome.rendered),
        other => panic!("expected analyze reply after the slot freed, got {other:?}"),
    }
}
