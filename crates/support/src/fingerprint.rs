//! Stable content fingerprints for the incremental-reanalysis cache.
//!
//! The cache subsystem addresses everything — lowered function IR, the
//! `.ml`/prototype surface a function observes, whole corpora — by a
//! 128-bit [`Fingerprint`]. The hasher is built from two independently
//! seeded `splitmix64` lanes (the same mixer as [`crate::rng::Rng64`]),
//! so it needs no external dependency and, crucially, is **stable across
//! platforms, processes and runs**: unlike `std`'s `DefaultHasher`, equal
//! inputs always produce equal fingerprints, which is what makes them
//! usable as on-disk cache keys.
//!
//! This is a content-addressing hash, not a cryptographic one; the cache
//! is a local trusted store and 128 bits make accidental collisions
//! negligible.
//!
//! # Examples
//!
//! ```
//! use ffisafe_support::fingerprint::{Fingerprint, FingerprintHasher};
//!
//! let mut h = FingerprintHasher::new();
//! h.write_str("value ml_f(value n)");
//! h.write_u32(2);
//! let a = h.finish();
//! assert_eq!(a, {
//!     let mut h = FingerprintHasher::new();
//!     h.write_str("value ml_f(value n)");
//!     h.write_u32(2);
//!     h.finish()
//! });
//! assert_ne!(a, Fingerprint::of_bytes(b"something else"));
//! assert_eq!(Fingerprint::parse_hex(&a.to_hex()), Some(a));
//! ```

use std::fmt;

/// A 128-bit stable content hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// Fingerprints a byte slice in one call.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_bytes(bytes);
        h.finish()
    }

    /// Lowercase 32-digit hex form — the on-disk entry file stem.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses the [`Fingerprint::to_hex`] form back.
    pub fn parse_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let a = u64::from_str_radix(&s[..16], 16).ok()?;
        let b = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint(a, b))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

fn splitmix64(state: &mut u64, input: u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(input);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streaming hasher producing a [`Fingerprint`].
///
/// Inputs are length-prefixed internally, so `write_str("ab")` followed by
/// `write_str("c")` hashes differently from `write_str("a")` then
/// `write_str("bc")` — field boundaries cannot silently collide.
#[derive(Clone, Debug)]
pub struct FingerprintHasher {
    a: u64,
    b: u64,
    acc_a: u64,
    acc_b: u64,
    /// Bytes pending in the current 8-byte chunk.
    pending: [u8; 8],
    pending_len: usize,
    total: u64,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    /// Creates a hasher with the two lane seeds.
    pub fn new() -> Self {
        FingerprintHasher {
            a: 0x5151_5151_c0ff_ee00,
            b: 0xdead_beef_0bad_cafe,
            acc_a: 0,
            acc_b: 0,
            pending: [0; 8],
            pending_len: 0,
            total: 0,
        }
    }

    fn mix(&mut self, chunk: u64) {
        self.acc_a ^= splitmix64(&mut self.a, chunk);
        self.acc_b = self.acc_b.rotate_left(23) ^ splitmix64(&mut self.b, chunk ^ self.acc_a);
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.pending_len > 0 {
            let take = rest.len().min(8 - self.pending_len);
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&rest[..take]);
            self.pending_len += take;
            rest = &rest[take..];
            if self.pending_len < 8 {
                // `rest` is exhausted; the partial chunk stays buffered.
                return;
            }
            let chunk = u64::from_le_bytes(self.pending);
            self.mix(chunk);
            self.pending_len = 0;
        }
        let mut iter = rest.chunks_exact(8);
        for c in &mut iter {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let tail = iter.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds another fingerprint (for composing digests of digests).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_u64(fp.0);
        self.write_u64(fp.1);
    }

    /// Total bytes fed so far. With the [`std::fmt::Write`] impl this lets
    /// callers stream a `Debug` rendering without materializing it and
    /// then delimit the field by writing the streamed byte count.
    pub fn bytes_written(&self) -> u64 {
        self.total
    }

    /// Finalizes: flushes the pending chunk and folds in the total length,
    /// so prefixes of an input never collide with the input itself.
    pub fn finish(mut self) -> Fingerprint {
        if self.pending_len > 0 {
            let mut last = [0u8; 8];
            last[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            last[7] = 0x80 | self.pending_len as u8;
            let chunk = u64::from_le_bytes(last);
            self.mix(chunk);
        }
        let total = self.total;
        self.mix(total ^ 0xa076_1d64_78bd_642f);
        Fingerprint(self.acc_a, self.acc_b)
    }
}

/// Streams formatted output (e.g. `write!(h, "{value:?}")`) straight into
/// the hash, with no intermediate `String`. Note this feeds *raw* bytes —
/// unlike the inherent [`FingerprintHasher::write_str`], no length prefix
/// is added, so callers composing multiple formatted fields must delimit
/// them (e.g. by writing [`FingerprintHasher::bytes_written`] deltas).
impl fmt::Write for FingerprintHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_write_streams_raw_bytes() {
        use std::fmt::Write as _;
        let mut h1 = FingerprintHasher::new();
        write!(h1, "{:?}", (1u32, "ab")).unwrap();
        let mut h2 = FingerprintHasher::new();
        h2.write_bytes(format!("{:?}", (1u32, "ab")).as_bytes());
        assert_eq!(h1.bytes_written(), h2.bytes_written());
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn equal_inputs_equal_outputs() {
        let mut h1 = FingerprintHasher::new();
        let mut h2 = FingerprintHasher::new();
        for h in [&mut h1, &mut h2] {
            h.write_str("external f : int -> int");
            h.write_u64(7);
            h.write_bool(true);
        }
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn chunk_boundaries_do_not_matter() {
        let data = b"0123456789abcdef0123456789abcdef!";
        let whole = Fingerprint::of_bytes(data);
        for split in [1, 7, 8, 9, 16, 31] {
            let mut h = FingerprintHasher::new();
            h.write_bytes(&data[..split]);
            h.write_bytes(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_equals_whole_write() {
        // Regression: a write landing entirely inside the pending buffer
        // must not clobber `pending_len` on the fall-through path.
        let data = b"incremental hashing, one byte at a time, must agree";
        let whole = Fingerprint::of_bytes(data);
        let mut h = FingerprintHasher::new();
        for b in data {
            h.write_bytes(&[*b]);
        }
        assert_eq!(h.finish(), whole);

        // and mid-stream single-byte differences must change the digest
        let mut h1 = FingerprintHasher::new();
        h1.write_str("prefix-prefix-prefix");
        h1.write_str("f");
        h1.write_str("suffix-suffix");
        let mut h2 = FingerprintHasher::new();
        h2.write_str("prefix-prefix-prefix");
        h2.write_str("g");
        h2.write_str("suffix-suffix");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn field_boundaries_do_matter() {
        let mut h1 = FingerprintHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = FingerprintHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn prefix_differs_from_whole() {
        assert_ne!(Fingerprint::of_bytes(b"abcd"), Fingerprint::of_bytes(b"abc"));
        assert_ne!(Fingerprint::of_bytes(b""), Fingerprint::of_bytes(b"\0"));
    }

    #[test]
    fn hex_roundtrip() {
        let fp = Fingerprint::of_bytes(b"roundtrip");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::parse_hex("nope"), None);
        assert_eq!(Fingerprint::parse_hex(&"z".repeat(32)), None);
    }

    #[test]
    fn small_corpus_has_no_collisions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u32 {
            let fp = Fingerprint::of_bytes(format!("input-{i}").as_bytes());
            assert!(seen.insert(fp), "collision at {i}");
        }
    }
}
