//! A dependency-free JSON value, writer helpers and parser.
//!
//! The workspace emits machine-readable artifacts in two places — the
//! versioned [`AnalysisReport::to_json`] structured report and the
//! `BENCH_pipeline.json` perf trajectory — and consumes them in shard
//! reducers, round-trip tests and the `bench_diff` regression gate. All
//! of that flows through this module: [`escape`] for writers and
//! [`parse`]/[`Json`] for readers. No external crate is involved; the
//! grammar is plain RFC 8259 JSON (objects, arrays, strings, numbers,
//! booleans, null) with `\uXXXX` escapes and surrogate pairs.
//!
//! [`AnalysisReport::to_json`]: ../../ffisafe_core/driver/struct.AnalysisReport.html#method.to_json
//!
//! # Examples
//!
//! ```
//! use ffisafe_support::json::{escape, parse, Json};
//!
//! let v = parse(r#"{"schema_version": 1, "counts": [2, 3], "tool": "ffisafe"}"#).unwrap();
//! assert_eq!(v.get("schema_version").and_then(Json::as_u64), Some(1));
//! assert_eq!(v.get("counts").and_then(Json::as_array).map(|a| a.len()), Some(2));
//! assert_eq!(v.get("tool").and_then(Json::as_str), Some("ffisafe"));
//! assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
//! ```

use std::fmt;

/// Maximum nesting depth [`parse`] accepts; deeper documents are rejected
/// rather than risking a stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
///
/// Objects preserve key order (a `Vec` of pairs, not a map): the emitters
/// in this workspace write keys in a stable order and the round-trip tests
/// assert against it.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A parse failure: byte offset into the input plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser had reached.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters use the short escapes where JSON defines
/// them and `\u00XX` otherwise.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// [`escape`], appending to an existing buffer.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        // from_str_radix would accept a leading `+`, which JSON does not.
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("invalid \\u escape"));
        }
        let text = std::str::from_utf8(digits).expect("hex digits are ASCII");
        let code = u16::from_str_radix(text, 16).expect("4 hex digits fit in u16");
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // surrogate pair: a \uXXXX low half must follow
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + (((hi as u32) - 0xd800) << 10)
                                    + ((lo as u32) - 0xdc00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue; // pos already advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar (the input is a valid &str)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes one or more ASCII digits; errors if none are present.
    fn digits(&mut self, context: &'static str) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err(context));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        // The full RFC 8259 grammar, enforced here rather than delegated
        // to f64::from_str (which would accept "007", "1." and "1.e5").
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("leading zeros are not allowed"));
            }
        } else {
            self.digits("expected a digit")?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits("expected a digit after `.`")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected a digit in the exponent")?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn containers_preserve_order() {
        let v = parse(r#"{"b": [1, 2, {"c": null}], "a": true}"#).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" back\\ nl\n tab\t cr\r bell\u{07} nul\u{0} uni→☃ 𝄞";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""\ud834\udd1e""#).unwrap(), Json::Str("𝄞".into()));
        assert!(parse(r#""\ud834""#).is_err(), "unpaired surrogate");
        assert!(parse(r#""\ud834\u0041""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "tru",
            "nul",
            "1e",
            "--1",
            "\u{7}",
            "[1 2]",
            "{\"a\":1,}",
            "\"\\q\"",
            "01x",
            "[]]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn number_grammar_is_rfc_8259_strict() {
        // f64::from_str is laxer than JSON; the scanner must not be.
        for bad in ["007", "01", "-01", "1.", "1.e5", ".5", "-.5", "1e", "1e+", "+1", "1.2.3"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        assert_eq!(parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(parse("-0.5e-2").unwrap(), Json::Num(-0.005));
        assert_eq!(parse("10").unwrap(), Json::Num(10.0));
        // a `+` smuggled into a \u escape is rejected too
        assert!(parse(r#""\u+041""#).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_as_u64_guard() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1.0").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn trailing_garbage_rejected_whitespace_ok() {
        assert!(parse("{} {}").is_err());
        assert!(parse("  {\"a\": 1}\n\t").is_ok());
    }
}
