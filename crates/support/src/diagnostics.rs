//! Diagnostics: machine-classifiable findings with severities matching the
//! columns of the paper's Figure 9.
//!
//! The paper's experimental results classify every report into one of four
//! buckets: outright **errors**, **warnings** for questionable coding
//! practice, **false positives** (reports on code that is actually correct)
//! and **imprecision** warnings (places where the analysis lacks precise
//! flow-sensitive information). The first, second and fourth are intrinsic
//! to the analysis and are encoded here as [`Severity`]; false positives are
//! a *judgment about* an error report, made by the benchmark harness against
//! ground truth, not a property of the diagnostic itself.

use crate::span::Span;
use std::fmt;

/// Coarse severity, mirroring the Figure 9 columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A type or GC safety violation (Figure 9 "Errors" column).
    Error,
    /// Questionable coding practice (Figure 9 "Warnings" column).
    Warning,
    /// The analysis lacked precise information (Figure 9 "Imprecision").
    Imprecision,
    /// Informational note attached to another diagnostic.
    Note,
}

impl Severity {
    /// Returns `true` for [`Severity::Error`].
    pub fn is_error(self) -> bool {
        matches!(self, Severity::Error)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Imprecision => "imprecision",
            Severity::Note => "note",
        };
        f.write_str(s)
    }
}

/// Stable machine-readable codes for every finding the analysis can emit.
///
/// `E*` are type/GC safety errors, `W*` questionable-practice warnings and
/// `P*` imprecision reports, following §5.2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagnosticCode {
    // ---- errors -------------------------------------------------------
    /// Unification failure between inferred and declared multi-lingual types
    /// (e.g. `Val_int` applied where `Int_val` was needed).
    TypeMismatch,
    /// An unboxed value was used where a boxed value is required or
    /// vice-versa (boxedness lattice violation).
    BoxednessMismatch,
    /// A nullary-constructor value exceeds the number of nullary
    /// constructors of its sum type (`T + 1 ≤ Ψ` violated).
    ConstructorRange,
    /// A structured-block access uses a tag with no corresponding
    /// non-nullary constructor.
    TagRange,
    /// A structured-block field access is out of bounds for the product at
    /// that tag.
    FieldRange,
    /// A live pointer into the OCaml heap was not registered with the GC
    /// before a call that may trigger collection.
    UnrootedValue,
    /// A function registered values with `CAMLparam`/`CAMLlocal` but exits
    /// through plain `return` instead of `CAMLreturn`.
    MissingCamlReturn,
    /// `CAMLreturn` used although nothing was registered.
    SpuriousCamlReturn,
    /// An unsafe value was passed to a function or stored to the heap
    /// (offset not statically zero).
    UnsafeValue,
    /// Arity mismatch between the OCaml `external` and the C definition.
    ArityMismatch,
    /// Arity mismatch between a Rust `extern "C"` signature and the C
    /// definition with the same link name.
    RustArityMismatch,
    /// Representation-level type mismatch between a Rust `extern "C"`
    /// parameter/return and the C definition (e.g. integer vs pointer).
    RustTypeMismatch,
    /// A Rust struct/enum/union crosses the FFI boundary without
    /// `#[repr(C)]` (or another FFI-stable representation).
    RustMissingReprC,
    /// An FFI-unsafe payload (`String`, `Vec`, wide pointer, non-`repr`
    /// ADT, …) is reachable from a Rust boundary signature.
    RustFfiUnsafe,
    // ---- questionable practice -----------------------------------------
    /// Trailing `unit` parameter in the OCaml signature with no C
    /// counterpart.
    TrailingUnitParameter,
    /// A polymorphic (`'a`) external parameter used at a concrete
    /// representational type in C.
    PolymorphicAbuse,
    /// Value cast chains that are legal but fragile (heuristic).
    SuspiciousCast,
    /// A non-nullable Rust reference (`&T`) crosses the boundary where the
    /// C side has a plain (nullable) pointer; `Option<&T>` matches the C
    /// contract.
    RustNullability,
    // ---- imprecision ----------------------------------------------------
    /// Pointer arithmetic with a statically-unknown offset.
    UnknownOffset,
    /// A global variable holds a `value`; the analysis cannot track it.
    GlobalValue,
    /// A `value` variable (or struct containing one) has its address taken.
    AddressOfValue,
    /// Call through an unknown C function pointer.
    FunctionPointerCall,
    /// Polymorphic variants are not handled; report is likely spurious.
    PolymorphicVariant,
    // ---- notes ----------------------------------------------------------
    /// Free-form note providing context for another diagnostic.
    Context,
}

impl DiagnosticCode {
    /// The default severity this code is reported at.
    pub fn severity(self) -> Severity {
        use DiagnosticCode::*;
        match self {
            TypeMismatch | BoxednessMismatch | ConstructorRange | TagRange | FieldRange
            | UnrootedValue | MissingCamlReturn | SpuriousCamlReturn | UnsafeValue
            | ArityMismatch | RustArityMismatch | RustTypeMismatch | RustMissingReprC
            | RustFfiUnsafe => Severity::Error,
            TrailingUnitParameter | PolymorphicAbuse | SuspiciousCast | RustNullability => {
                Severity::Warning
            }
            UnknownOffset | GlobalValue | AddressOfValue | FunctionPointerCall
            | PolymorphicVariant => Severity::Imprecision,
            Context => Severity::Note,
        }
    }

    /// Stable short code string (`E001` …) for reports and tests.
    pub fn code_str(self) -> &'static str {
        use DiagnosticCode::*;
        match self {
            TypeMismatch => "E001",
            BoxednessMismatch => "E002",
            ConstructorRange => "E003",
            TagRange => "E004",
            FieldRange => "E005",
            UnrootedValue => "E006",
            MissingCamlReturn => "E007",
            SpuriousCamlReturn => "E008",
            UnsafeValue => "E009",
            ArityMismatch => "E010",
            RustArityMismatch => "E011",
            RustTypeMismatch => "E012",
            RustMissingReprC => "E013",
            RustFfiUnsafe => "E014",
            TrailingUnitParameter => "W001",
            PolymorphicAbuse => "W002",
            SuspiciousCast => "W003",
            RustNullability => "W004",
            UnknownOffset => "P001",
            GlobalValue => "P002",
            AddressOfValue => "P003",
            FunctionPointerCall => "P004",
            PolymorphicVariant => "P005",
            Context => "N001",
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code_str())
    }
}

/// A single finding: code, severity, primary span, message and optional
/// notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    code: DiagnosticCode,
    severity: Severity,
    span: Span,
    message: String,
    notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: DiagnosticCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates an error-severity diagnostic (assertion helper for codes that
    /// default to errors).
    pub fn error(code: DiagnosticCode, span: Span, message: impl Into<String>) -> Self {
        let mut d = Diagnostic::new(code, span, message);
        d.severity = Severity::Error;
        d
    }

    /// Attaches an explanatory note.
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> Self {
        self.notes.push((span, message.into()));
        self
    }

    /// Overrides the severity (used by heuristics that downgrade reports).
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// The machine-readable code.
    pub fn code(&self) -> DiagnosticCode {
        self.code
    }

    /// Severity of this finding.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Primary span.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Attached notes.
    pub fn notes(&self) -> &[(Span, String)] {
        &self.notes
    }
}

/// An ordered collection of diagnostics with counting helpers.
///
/// # Examples
///
/// ```
/// use ffisafe_support::{DiagnosticBag, Diagnostic, DiagnosticCode, Span};
/// let mut bag = DiagnosticBag::new();
/// bag.push(Diagnostic::new(DiagnosticCode::UnknownOffset, Span::dummy(), "offset unknown"));
/// assert_eq!(bag.count_imprecision(), 1);
/// assert_eq!(bag.count_errors(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        DiagnosticBag::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Moves all diagnostics from `other` into `self`.
    pub fn append(&mut self, other: &mut DiagnosticBag) {
        self.diags.append(&mut other.diags);
    }

    /// All diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Returns `true` when no diagnostics were emitted.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics with [`Severity::Error`].
    pub fn count_errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of diagnostics with [`Severity::Warning`].
    pub fn count_warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of diagnostics with [`Severity::Imprecision`].
    pub fn count_imprecision(&self) -> usize {
        self.count(Severity::Imprecision)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity() == sev).count()
    }

    /// Diagnostics with the given code.
    pub fn with_code(&self, code: DiagnosticCode) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.code() == code)
    }

    /// Sorts diagnostics by (file, position, code) for stable output.
    pub fn sort(&mut self) {
        self.diags.sort_by_key(|d| (d.span().file, d.span().lo, d.code()));
    }

    /// Sorts, then removes exact duplicates (same code, span and message) —
    /// distinct rules can flag one offending expression identically.
    pub fn dedup(&mut self) {
        self.sort();
        self.diags.dedup_by(|a, b| {
            a.code() == b.code() && a.span() == b.span() && a.message() == b.message()
        });
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl Extend<Diagnostic> for DiagnosticBag {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.diags.extend(iter);
    }
}

impl FromIterator<Diagnostic> for DiagnosticBag {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        DiagnosticBag { diags: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_map::FileId;

    fn sp(lo: u32) -> Span {
        Span::new(FileId::from_raw(0), lo, lo + 1)
    }

    #[test]
    fn code_severity_buckets() {
        assert_eq!(DiagnosticCode::TypeMismatch.severity(), Severity::Error);
        assert_eq!(DiagnosticCode::TrailingUnitParameter.severity(), Severity::Warning);
        assert_eq!(DiagnosticCode::UnknownOffset.severity(), Severity::Imprecision);
        assert_eq!(DiagnosticCode::Context.severity(), Severity::Note);
    }

    #[test]
    fn code_strings_are_unique() {
        use DiagnosticCode::*;
        let all = [
            TypeMismatch,
            BoxednessMismatch,
            ConstructorRange,
            TagRange,
            FieldRange,
            UnrootedValue,
            MissingCamlReturn,
            SpuriousCamlReturn,
            UnsafeValue,
            ArityMismatch,
            RustArityMismatch,
            RustTypeMismatch,
            RustMissingReprC,
            RustFfiUnsafe,
            TrailingUnitParameter,
            PolymorphicAbuse,
            SuspiciousCast,
            RustNullability,
            UnknownOffset,
            GlobalValue,
            AddressOfValue,
            FunctionPointerCall,
            PolymorphicVariant,
            Context,
        ];
        let mut strs: Vec<_> = all.iter().map(|c| c.code_str()).collect();
        strs.sort();
        strs.dedup();
        assert_eq!(strs.len(), all.len());
    }

    #[test]
    fn bag_counts_by_severity() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::new(DiagnosticCode::TypeMismatch, sp(0), "a"));
        bag.push(Diagnostic::new(DiagnosticCode::UnrootedValue, sp(1), "b"));
        bag.push(Diagnostic::new(DiagnosticCode::TrailingUnitParameter, sp(2), "c"));
        bag.push(Diagnostic::new(DiagnosticCode::UnknownOffset, sp(3), "d"));
        assert_eq!(bag.count_errors(), 2);
        assert_eq!(bag.count_warnings(), 1);
        assert_eq!(bag.count_imprecision(), 1);
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn bag_sort_is_stable_by_position() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::new(DiagnosticCode::TypeMismatch, sp(9), "late"));
        bag.push(Diagnostic::new(DiagnosticCode::TypeMismatch, sp(1), "early"));
        bag.sort();
        let msgs: Vec<_> = bag.iter().map(|d| d.message().to_string()).collect();
        assert_eq!(msgs, ["early", "late"]);
    }

    #[test]
    fn notes_and_severity_override() {
        let d = Diagnostic::new(DiagnosticCode::TypeMismatch, sp(0), "m")
            .with_note(sp(1), "declared here")
            .with_severity(Severity::Imprecision);
        assert_eq!(d.notes().len(), 1);
        assert_eq!(d.severity(), Severity::Imprecision);
    }

    #[test]
    fn with_code_filters() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::new(DiagnosticCode::TypeMismatch, sp(0), "a"));
        bag.push(Diagnostic::new(DiagnosticCode::UnknownOffset, sp(1), "b"));
        assert_eq!(bag.with_code(DiagnosticCode::TypeMismatch).count(), 1);
    }
}
