//! String interning shared by the OCaml and C frontends.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Comparison and hashing are O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index backing this symbol.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Interner mapping strings to [`Symbol`]s and back.
///
/// # Examples
///
/// ```
/// use ffisafe_support::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("Val_int");
/// let b = i.intern("Val_int");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "Val_int");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string backing `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not issued by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let s = i.intern("CAMLparam1");
        assert_eq!(i.resolve(s), "CAMLparam1");
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get("nope"), None);
        let s = i.intern("yep");
        assert_eq!(i.get("yep"), Some(s));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
