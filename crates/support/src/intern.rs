//! String interning shared by the OCaml and C frontends.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Comparison and hashing are O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index backing this symbol.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Interner mapping strings to [`Symbol`]s and back.
///
/// An interner is either self-contained or an overlay view over a frozen,
/// `Arc`-shared base (see [`Interner::overlay`]): lookups consult the base
/// first, fresh strings append locally, and symbols are numbered
/// continuously across the seam — an overlay issues exactly the symbols a
/// deep clone of the base would.
///
/// # Examples
///
/// ```
/// use ffisafe_support::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("Val_int");
/// let b = i.intern("Val_int");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "Val_int");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    base: Option<Arc<Interner>>,
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Creates a copy-on-write view over a shared base interner. O(1).
    pub fn overlay(base: Arc<Interner>) -> Self {
        debug_assert!(base.base.is_none(), "overlay bases must be flat interners");
        Interner { base: Some(base), map: HashMap::new(), strings: Vec::new() }
    }

    fn base_len(&self) -> usize {
        self.base.as_deref().map_or(0, |b| b.strings.len())
    }

    /// Interns `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(b) = self.base.as_deref() {
            if let Some(&sym) = b.map.get(s) {
                return sym;
            }
        }
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol((self.base_len() + self.strings.len()) as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if let Some(b) = self.base.as_deref() {
            if let Some(&sym) = b.map.get(s) {
                return Some(sym);
            }
        }
        self.map.get(s).copied()
    }

    /// The string backing `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not issued by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        let idx = sym.0 as usize;
        let base_len = self.base_len();
        if idx < base_len {
            &self.base.as_deref().expect("base exists for base-range symbol").strings[idx]
        } else {
            &self.strings[idx - base_len]
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.base_len() + self.strings.len()
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let s = i.intern("CAMLparam1");
        assert_eq!(i.resolve(s), "CAMLparam1");
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get("nope"), None);
        let s = i.intern("yep");
        assert_eq!(i.get("yep"), Some(s));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn overlay_issues_clone_identical_symbols() {
        let mut base = Interner::new();
        let caml = base.intern("caml_alloc");
        let mut cloned = base.clone();
        let base = Arc::new(base);
        let mut view = Interner::overlay(base.clone());

        // base strings resolve through the overlay
        assert_eq!(view.get("caml_alloc"), Some(caml));
        assert_eq!(view.resolve(caml), "caml_alloc");
        assert_eq!(view.intern("caml_alloc"), caml);

        // fresh strings get the same symbols a deep clone would issue
        assert_eq!(view.intern("local_one"), cloned.intern("local_one"));
        assert_eq!(view.intern("local_two"), cloned.intern("local_two"));
        assert_eq!(view.len(), cloned.len());
        assert_eq!(view.resolve(view.get("local_two").unwrap()), "local_two");

        // a sibling overlay never sees another view's strings
        let sibling = Interner::overlay(base);
        assert_eq!(sibling.get("local_one"), None);
        assert_eq!(sibling.len(), 1);
    }
}
