//! Shared infrastructure for the `ffisafe` workspace.
//!
//! This crate provides the plumbing every phase of the multi-lingual
//! type-inference pipeline relies on:
//!
//! * [`SourceMap`] / [`Span`] — byte-offset spans into registered source
//!   files, resolvable to `file:line:col` locations for diagnostics.
//! * [`Diagnostic`] — machine-classifiable findings with severity levels
//!   matching the columns of the paper's Figure 9 (errors, questionable
//!   practice warnings, imprecision warnings).
//! * [`Interner`] / [`Symbol`] — cheap interned identifiers shared by the
//!   OCaml and C frontends.
//! * [`Fingerprint`] / [`FingerprintHasher`] — platform-stable 128-bit
//!   content hashes keying the incremental-reanalysis cache.
//! * [`table`] — a small plain-text table renderer used by the Figure 9
//!   harness and the CLI.
//!
//! # Examples
//!
//! ```
//! use ffisafe_support::{SourceMap, Diagnostic, DiagnosticCode};
//!
//! let mut sm = SourceMap::new();
//! let file = sm.add_file("glue.c", "value f(value x) { return x; }");
//! let span = sm.span(file, 6, 7);
//! let diag = Diagnostic::error(DiagnosticCode::TypeMismatch, span, "bad use of value");
//! assert!(diag.severity().is_error());
//! ```

#![warn(missing_docs)]

pub mod diagnostics;
pub mod fingerprint;
pub mod intern;
pub mod json;
pub mod rng;
pub mod session;
pub mod source_map;
pub mod span;
pub mod table;
pub mod telemetry;

pub use diagnostics::{Diagnostic, DiagnosticBag, DiagnosticCode, Severity};
pub use fingerprint::{Fingerprint, FingerprintHasher};
pub use intern::{Interner, Symbol};
pub use session::{AnalysisOptions, Phase, PhaseTimings, Session};
pub use source_map::{FileId, Loc, SourceFile, SourceMap};
pub use span::Span;
pub use telemetry::{HistogramValue, LogLevel, MetricsRegistry, SpanEvent, TraceFileWriter};
