//! Byte-offset spans into source files.

use crate::source_map::FileId;

/// A half-open byte range `[lo, hi)` inside a single source file.
///
/// Spans are deliberately tiny (`Copy`) so every AST node, IR statement and
/// diagnostic can carry one without overhead.
///
/// # Examples
///
/// ```
/// use ffisafe_support::{Span, FileId};
/// let a = Span::new(FileId::from_raw(0), 4, 9);
/// let b = Span::new(FileId::from_raw(0), 7, 12);
/// assert_eq!(a.merge(b).len(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// File this span points into.
    pub file: FileId,
    /// Start byte offset (inclusive).
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi` of `file`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(file: FileId, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "span lo ({lo}) must not exceed hi ({hi})");
        Span { file, lo, hi }
    }

    /// A zero-length span used for synthesized constructs.
    pub fn dummy() -> Self {
        Span { file: FileId::from_raw(u32::MAX), lo: 0, hi: 0 }
    }

    /// Returns `true` for spans produced by [`Span::dummy`].
    pub fn is_dummy(&self) -> bool {
        self.file == FileId::from_raw(u32::MAX)
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Returns `true` if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// If the spans come from different files the left span wins; this keeps
    /// merge total, which is convenient for parsers recovering across
    /// synthesized tokens.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() || self.file != other.file {
            return self;
        }
        Span { file: self.file, lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Returns `true` if `offset` lies within the span.
    pub fn contains(&self, offset: u32) -> bool {
        self.lo <= offset && offset < self.hi
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::dummy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32) -> FileId {
        FileId::from_raw(n)
    }

    #[test]
    fn merge_same_file_widens() {
        let a = Span::new(f(1), 10, 20);
        let b = Span::new(f(1), 15, 30);
        assert_eq!(a.merge(b), Span::new(f(1), 10, 30));
        assert_eq!(b.merge(a), Span::new(f(1), 10, 30));
    }

    #[test]
    fn merge_different_files_keeps_left() {
        let a = Span::new(f(1), 10, 20);
        let b = Span::new(f(2), 0, 5);
        assert_eq!(a.merge(b), a);
    }

    #[test]
    fn merge_with_dummy_keeps_real() {
        let a = Span::new(f(1), 10, 20);
        assert_eq!(a.merge(Span::dummy()), a);
        assert_eq!(Span::dummy().merge(a), a);
    }

    #[test]
    fn contains_is_half_open() {
        let a = Span::new(f(0), 3, 6);
        assert!(!a.contains(2));
        assert!(a.contains(3));
        assert!(a.contains(5));
        assert!(!a.contains(6));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_span_panics() {
        let _ = Span::new(f(0), 9, 3);
    }

    #[test]
    fn dummy_is_empty_and_dummy() {
        assert!(Span::dummy().is_dummy());
        assert!(Span::dummy().is_empty());
        assert!(!Span::new(f(0), 0, 1).is_dummy());
    }
}
