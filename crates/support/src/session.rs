//! The analysis [`Session`]: shared state threaded through every pipeline
//! stage.
//!
//! Before the session refactor each layer of the pipeline owned ad-hoc
//! copies of the source map, the interner and its diagnostic buffer, and
//! options were passed piecemeal. A `Session` centralizes all four plus
//! per-phase wall-clock timing, so that:
//!
//! * every [`crate::Span`] in the run resolves against one [`SourceMap`];
//! * every name interned anywhere in the run means the same [`Symbol`];
//! * diagnostics from any stage land in one sink, sorted once at the end;
//! * `--jobs`-style knobs reach every stage without signature churn.
//!
//! # Examples
//!
//! ```
//! use ffisafe_support::session::{AnalysisOptions, Phase, Session};
//!
//! let mut session = Session::new();
//! let file = session.add_file("glue.c", "value f(value x) { return x; }");
//! let sym = session.intern("f");
//! assert_eq!(session.interner().resolve(sym), "f");
//! let n = session.time(Phase::FrontendC, |s| s.source_map().file(file).line_count());
//! assert_eq!(n, 1);
//! assert!(session.timings().total() > std::time::Duration::ZERO);
//! ```

use crate::diagnostics::{Diagnostic, DiagnosticBag};
use crate::fingerprint::{Fingerprint, FingerprintHasher};
use crate::intern::{Interner, Symbol};
use crate::source_map::{FileId, SourceMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Tunable analysis switches, shared by every pipeline stage.
///
/// `flow_sensitive` and `gc_effects` drive the ablation experiments
/// (DESIGN.md E5); `jobs` sizes the inference worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Track `B`/`I`/`T` refinements from dynamic tests. Disabling this
    /// removes the dataflow analysis of §3.3 while keeping unification.
    pub flow_sensitive: bool,
    /// Track GC effects and registration obligations (§2, (App)).
    pub gc_effects: bool,
    /// Worker threads for the per-function inference stage. `0` means
    /// "auto": use [`std::thread::available_parallelism`].
    pub jobs: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions { flow_sensitive: true, gc_effects: true, jobs: 0 }
    }
}

impl AnalysisOptions {
    /// The number of worker threads the inference stage will actually use:
    /// `jobs` if nonzero, otherwise the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Returns `self` with an explicit worker count (builder style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Fingerprint of every option that can change analysis *results*.
    ///
    /// `jobs` is deliberately excluded: reports are byte-identical at any
    /// worker count (the parallel-determinism invariant), so a cache entry
    /// written at `--jobs 1` must hit at `--jobs 8` and vice versa.
    pub fn semantic_digest(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str("AnalysisOptions");
        h.write_bool(self.flow_sensitive);
        h.write_bool(self.gc_effects);
        h.finish()
    }
}

/// The pipeline stages a session times.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// OCaml frontend: parse `.ml`, build the repository, translate Φ/ρ.
    FrontendMl,
    /// C frontend: parse `.c`, lower to the Figure 5 IR.
    FrontendC,
    /// Rust-FFI frontend: parse `.rs`, collect `extern "C"` boundary
    /// signatures and check them against the C surface.
    FrontendRust,
    /// Per-function flow-sensitive inference (the parallel stage).
    Infer,
    /// Deferred constraint discharge: GC solve, Ψ bounds, practice checks.
    Discharge,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] =
        [Phase::FrontendMl, Phase::FrontendC, Phase::FrontendRust, Phase::Infer, Phase::Discharge];

    fn index(self) -> usize {
        match self {
            Phase::FrontendMl => 0,
            Phase::FrontendC => 1,
            Phase::FrontendRust => 2,
            Phase::Infer => 3,
            Phase::Discharge => 4,
        }
    }

    /// Stable lowercase name (used in reports and `BENCH_pipeline.json`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::FrontendMl => "frontend_ml",
            Phase::FrontendC => "frontend_c",
            Phase::FrontendRust => "frontend_rust",
            Phase::Infer => "infer",
            Phase::Discharge => "discharge",
        }
    }

    /// Trace span name for this phase (`phase.<name>`, see README
    /// "Observability").
    pub fn span_name(self) -> &'static str {
        match self {
            Phase::FrontendMl => "phase.frontend_ml",
            Phase::FrontendC => "phase.frontend_c",
            Phase::FrontendRust => "phase.frontend_rust",
            Phase::Infer => "phase.infer",
            Phase::Discharge => "phase.discharge",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cumulative wall-clock and work time per [`Phase`].
///
/// *Wall* is elapsed time; *work* is the total compute the phase performed.
/// For serial phases the two coincide, so [`PhaseTimings::record`] charges
/// both. The parallel inference stage overrides its work total with the sum
/// of per-function analysis time ([`PhaseTimings::set_work`]) — on a warm
/// cached run that sum drops to (near) zero while wall still includes
/// fingerprinting and replay, which is exactly the signal `--timings`
/// surfaces.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    totals: [Duration; 5],
    work: [Duration; 5],
}

impl PhaseTimings {
    /// Adds `elapsed` to `phase`'s wall and work totals.
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        self.totals[phase.index()] += elapsed;
        self.work[phase.index()] += elapsed;
    }

    /// Cumulative wall-clock time spent in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Cumulative work performed by `phase` (= wall for serial phases).
    pub fn get_work(&self, phase: Phase) -> Duration {
        self.work[phase.index()]
    }

    /// Replaces `phase`'s work total (parallel stages report true work).
    pub fn set_work(&mut self, phase: Phase, work: Duration) {
        self.work[phase.index()] = work;
    }

    /// Sum of wall-clock over all phases.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// `(phase, cumulative wall-clock)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Duration)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }
}

/// Shared state for one analysis run: source map, interner, diagnostic
/// sink, options and per-phase timings.
///
/// Stages receive `&mut Session` and must not construct their own
/// [`SourceMap`] or [`Interner`]; that guarantee is what makes every span
/// and symbol in a run globally meaningful.
#[derive(Clone, Debug, Default)]
pub struct Session {
    source_map: SourceMap,
    interner: Interner,
    diagnostics: DiagnosticBag,
    options: AnalysisOptions,
    timings: PhaseTimings,
}

impl Session {
    /// Creates a session with default options.
    pub fn new() -> Self {
        Session::default()
    }

    /// Creates a session with explicit options.
    pub fn with_options(options: AnalysisOptions) -> Self {
        Session { options, ..Session::default() }
    }

    /// Registers a source file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, src: impl Into<String>) -> FileId {
        self.source_map.add_file(name, src)
    }

    /// The session-wide source map.
    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// Interns a string in the session-wide interner.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// The session-wide interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (for stages that batch-intern).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The options this run was configured with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Mutable access to the options (CLI / test configuration only; stages
    /// must treat options as read-only).
    pub fn options_mut(&mut self) -> &mut AnalysisOptions {
        &mut self.options
    }

    /// Adds a finding to the session's diagnostic sink.
    pub fn emit(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Moves all diagnostics from `bag` into the sink.
    pub fn emit_all(&mut self, bag: &mut DiagnosticBag) {
        self.diagnostics.append(bag);
    }

    /// The diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &DiagnosticBag {
        &self.diagnostics
    }

    /// Drains the accumulated diagnostics, leaving the sink empty.
    pub fn take_diagnostics(&mut self) -> DiagnosticBag {
        std::mem::take(&mut self.diagnostics)
    }

    /// Runs `f`, charging its wall-clock time to `phase` and recording a
    /// `phase.<name>` trace span when tracing is enabled.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Session) -> T) -> T {
        let _span = crate::telemetry::span(phase.span_name());
        let start = Instant::now();
        let out = f(self);
        self.timings.record(phase, start.elapsed());
        out
    }

    /// Per-phase timings recorded so far.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// Mutable access to the timings (drivers that record true parallel
    /// work totals).
    pub fn timings_mut(&mut self) -> &mut PhaseTimings {
        &mut self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::DiagnosticCode;
    use crate::span::Span;

    #[test]
    fn default_options_auto_jobs() {
        let o = AnalysisOptions::default();
        assert_eq!(o.jobs, 0);
        assert!(o.effective_jobs() >= 1);
        assert_eq!(o.with_jobs(3).effective_jobs(), 3);
    }

    #[test]
    fn session_threads_one_source_map_and_interner() {
        let mut s = Session::new();
        let f1 = s.add_file("a.ml", "type t = A");
        let f2 = s.add_file("b.c", "value f(value x) { return x; }");
        assert_ne!(f1, f2);
        let a = s.intern("ml_examine");
        let b = s.intern("ml_examine");
        assert_eq!(a, b);
        assert_eq!(s.interner().len(), 1);
    }

    #[test]
    fn diagnostics_accumulate_and_drain() {
        let mut s = Session::new();
        s.emit(Diagnostic::new(DiagnosticCode::TypeMismatch, Span::dummy(), "x"));
        let mut extra = DiagnosticBag::new();
        extra.push(Diagnostic::new(DiagnosticCode::UnknownOffset, Span::dummy(), "y"));
        s.emit_all(&mut extra);
        assert_eq!(s.diagnostics().len(), 2);
        let drained = s.take_diagnostics();
        assert_eq!(drained.len(), 2);
        assert!(s.diagnostics().is_empty());
    }

    #[test]
    fn timings_accumulate_per_phase() {
        let mut s = Session::new();
        s.time(Phase::Infer, |_| std::thread::sleep(Duration::from_millis(1)));
        s.time(Phase::Infer, |_| ());
        s.time(Phase::Discharge, |_| ());
        assert!(s.timings().get(Phase::Infer) >= Duration::from_millis(1));
        assert_eq!(s.timings().get(Phase::FrontendMl), Duration::ZERO);
        let names: Vec<_> = s.timings().iter().map(|(p, _)| p.name()).collect();
        assert_eq!(names, ["frontend_ml", "frontend_c", "frontend_rust", "infer", "discharge"]);
    }

    #[test]
    fn work_defaults_to_wall_and_can_be_overridden() {
        let mut t = PhaseTimings::default();
        t.record(Phase::Infer, Duration::from_millis(10));
        assert_eq!(t.get_work(Phase::Infer), t.get(Phase::Infer));
        t.set_work(Phase::Infer, Duration::from_millis(3));
        assert_eq!(t.get_work(Phase::Infer), Duration::from_millis(3));
        assert_eq!(t.get(Phase::Infer), Duration::from_millis(10));
    }

    #[test]
    fn semantic_digest_ignores_jobs_but_not_switches() {
        let base = AnalysisOptions::default();
        assert_eq!(base.semantic_digest(), base.with_jobs(8).semantic_digest());
        let mut no_flow = base;
        no_flow.flow_sensitive = false;
        assert_ne!(base.semantic_digest(), no_flow.semantic_digest());
        let mut no_gc = base;
        no_gc.gc_effects = false;
        assert_ne!(base.semantic_digest(), no_gc.semantic_digest());
        assert_ne!(no_flow.semantic_digest(), no_gc.semantic_digest());
    }
}
