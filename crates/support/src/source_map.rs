//! Registry of source files and span → line/column resolution.

use crate::span::Span;
use std::fmt;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(u32);

impl FileId {
    /// Builds a `FileId` from a raw index. Mostly useful in tests; real ids
    /// come from [`SourceMap::add_file`].
    pub fn from_raw(raw: u32) -> Self {
        FileId(raw)
    }

    /// The raw index backing this id.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

/// A registered source file: name, contents and a line-start index.
#[derive(Clone, Debug)]
pub struct SourceFile {
    name: String,
    src: String,
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile { name: name.into(), src, line_starts }
    }

    /// File name as registered.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full source text.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Number of lines in the file (at least 1, even when empty).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-based line and column for a byte offset (clamped to the file end).
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.src.len() as u32);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// The source text of 1-based line `line`, without the newline.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)? as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| (e as usize).saturating_sub(1))
            .unwrap_or(self.src.len());
        Some(&self.src[start..end.max(start)])
    }
}

/// A fully-resolved source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loc {
    /// Name of the file containing the location.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.col)
    }
}

/// Owns all registered source files and resolves [`Span`]s.
///
/// # Examples
///
/// ```
/// use ffisafe_support::SourceMap;
/// let mut sm = SourceMap::new();
/// let id = sm.add_file("a.ml", "type t = A | B\n");
/// let span = sm.span(id, 9, 10);
/// let loc = sm.resolve(span);
/// assert_eq!((loc.line, loc.col), (1, 10));
/// assert_eq!(sm.snippet(span), "A");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, src: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name, src));
        id
    }

    /// Looks up a registered file.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this map.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Returns the file for `id` if it belongs to this map.
    pub fn get_file(&self, id: FileId) -> Option<&SourceFile> {
        self.files.get(id.0 as usize)
    }

    /// All registered files in registration order.
    pub fn files(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files.iter().enumerate().map(|(i, f)| (FileId(i as u32), f))
    }

    /// Convenience constructor for a span into `file`.
    pub fn span(&self, file: FileId, lo: u32, hi: u32) -> Span {
        Span::new(file, lo, hi)
    }

    /// Resolves the start of `span` to a [`Loc`]. Dummy spans resolve to a
    /// placeholder location.
    pub fn resolve(&self, span: Span) -> Loc {
        if span.is_dummy() {
            return Loc { file: "<builtin>".into(), line: 0, col: 0 };
        }
        match self.get_file(span.file) {
            None => Loc { file: "<unknown>".into(), line: 0, col: 0 },
            Some(f) => {
                let (line, col) = f.line_col(span.lo);
                Loc { file: f.name().to_string(), line, col }
            }
        }
    }

    /// The source text covered by `span` (empty for dummy spans).
    pub fn snippet(&self, span: Span) -> &str {
        if span.is_dummy() {
            return "";
        }
        match self.get_file(span.file) {
            None => "",
            Some(f) => {
                let lo = (span.lo as usize).min(f.src.len());
                let hi = (span.hi as usize).min(f.src.len());
                &f.src[lo..hi]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("x.c", "ab\ncd\nef");
        let f = sm.file(id);
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
        assert_eq!(f.line_col(6), (3, 1));
        assert_eq!(f.line_col(100), (3, 3)); // clamped past the end
    }

    #[test]
    fn line_text_lookup() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("x.c", "first\nsecond\nthird");
        let f = sm.file(id);
        assert_eq!(f.line_text(1), Some("first"));
        assert_eq!(f.line_text(2), Some("second"));
        assert_eq!(f.line_text(3), Some("third"));
        assert_eq!(f.line_text(4), None);
        assert_eq!(f.line_text(0), None);
    }

    #[test]
    fn empty_file_has_one_line() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("e", "");
        assert_eq!(sm.file(id).line_count(), 1);
        assert_eq!(sm.file(id).line_col(0), (1, 1));
    }

    #[test]
    fn snippet_extraction() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("x", "hello world");
        assert_eq!(sm.snippet(Span::new(id, 6, 11)), "world");
        assert_eq!(sm.snippet(Span::dummy()), "");
    }

    #[test]
    fn resolve_dummy_and_unknown() {
        let sm = SourceMap::new();
        assert_eq!(sm.resolve(Span::dummy()).file, "<builtin>");
        let bogus = Span::new(FileId::from_raw(7), 0, 0);
        assert_eq!(sm.resolve(bogus).file, "<unknown>");
    }

    #[test]
    fn display_loc() {
        let loc = Loc { file: "glue.c".into(), line: 12, col: 3 };
        assert_eq!(loc.to_string(), "glue.c:12:3");
    }

    #[test]
    fn files_iterates_in_order() {
        let mut sm = SourceMap::new();
        sm.add_file("a", "");
        sm.add_file("b", "");
        let names: Vec<_> = sm.files().map(|(_, f)| f.name().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
