//! A small plain-text table renderer for the Figure 9 harness and the CLI.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An in-memory table rendered with aligned columns and a header rule.
///
/// # Examples
///
/// ```
/// use ffisafe_support::table::{Table, Align};
/// let mut t = Table::new(vec!["Program".into(), "Errors".into()]);
/// t.set_align(1, Align::Right);
/// t.add_row(vec!["apm-1.00".into(), "0".into()]);
/// let s = t.render();
/// assert!(s.contains("Program"));
/// assert!(s.contains("apm-1.00"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers (all left-aligned).
    pub fn new(headers: Vec<String>) -> Self {
        let n = headers.len();
        Table { headers, aligns: vec![Align::Left; n], rows: Vec::new() }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn set_align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string with a `-` rule under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        self.render_cells(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            self.render_cells(&mut out, row, &widths);
        }
        out
    }

    fn render_cells(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        let ncols = widths.len();
        for (i, &w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            match self.aligns[i] {
                Align::Left => {
                    let _ = write!(out, "{cell:<w$}");
                }
                Align::Right => {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            if i + 1 < ncols {
                out.push_str("  ");
            }
        }
        // trim trailing spaces of left-aligned final column
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "n".into()]);
        t.set_align(1, Align::Right);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "250".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("250"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.add_row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn right_alignment_pads_left() {
        let mut t = Table::new(vec!["num".into()]);
        t.set_align(0, Align::Right);
        t.add_row(vec!["7".into()]);
        let s = t.render();
        let last = s.lines().last().unwrap();
        assert_eq!(last, "  7");
    }
}
