//! Dependency-free telemetry: tracing spans, a metrics registry, and
//! leveled logging.
//!
//! The module has three faces that share one monotonic clock:
//!
//! - **Tracing** — [`span`] / [`span_with`] return a guard that records a
//!   complete span (name, start, duration, thread, key/value args) into a
//!   per-thread buffer when tracing is enabled, and cost one relaxed atomic
//!   load when it is not. Buffers flush into a global sink on overflow, on
//!   thread exit, and on [`flush_thread`]; [`drain_spans`] collects
//!   everything recorded so far and [`chrome_trace_json`] serializes spans
//!   as Chrome trace-event JSON (loadable in `chrome://tracing` and
//!   Perfetto).
//! - **Metrics** — [`MetricsRegistry`] holds named counters, gauges, and
//!   fixed-boundary histograms with optional labels, and renders them as
//!   Prometheus text exposition ([`MetricsRegistry::to_prometheus`]) or as
//!   a human-readable table ([`MetricsRegistry::render_text`]).
//! - **Logging** — [`log`] writes leveled, elapsed-stamped lines to
//!   stderr, filtered by a global level set with [`set_log_level`].
//!
//! Telemetry is inert by design: nothing here ever writes to stdout, and
//! a disabled span allocates nothing, so analysis and sweep reports are
//! byte-identical whether tracing is on or off.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// A double-quoted, JSON-escaped rendering of `s`.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json::escape_into(&mut out, s);
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide telemetry epoch (the first
/// time any telemetry clock was read). Monotonic; shared by spans and logs.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// Flush a thread's span buffer into the global sink when it reaches this
/// many events, bounding per-thread memory during long runs.
const FLUSH_THRESHOLD: usize = 256;

/// One completed span: a named interval on one thread, with optional
/// string key/value arguments (attempt numbers, byte counts, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name from the documented schema (e.g. `infer.solve`).
    pub name: &'static str,
    /// Start offset in microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (small integers assigned in spawn order).
    pub tid: u64,
    /// Key/value annotations attached to the span.
    pub args: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// End offset in microseconds since the telemetry epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Look up an annotation by key.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }
}

struct ThreadBuffer {
    tid: u64,
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer { tid: NEXT_TID.fetch_add(1, Ordering::Relaxed), events: Vec::new() }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        sink.append(&mut self.events);
    }
}

// Backstop only: thread-local destructors run during thread *teardown*,
// which `std::thread::scope` does not wait for (the scope unblocks as soon
// as every closure has returned). A joiner that drains immediately after a
// scope can therefore race this flush and miss the thread's spans — worker
// closures that record spans must call [`flush_thread`] before returning.
impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

/// Enable or disable span recording globally. Disabled is the default;
/// a disabled [`span`] call is a single relaxed atomic load.
pub fn set_tracing(enabled: bool) {
    if enabled {
        // Anchor the clock before the first span so timestamps are small.
        epoch();
    }
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Guard for an in-flight span. Records the completed span into the
/// current thread's buffer when dropped (if tracing was enabled when the
/// span was opened). When tracing is off the guard is empty and `Drop`
/// does nothing.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    start_us: u64,
    args: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Whether this guard will record a span (i.e. tracing was enabled
    /// when it was opened). Use to skip expensive annotation formatting.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// Attach a key/value annotation. No-op on a non-recording guard, so
    /// values already computed (byte counts, hit flags) can be attached
    /// unconditionally.
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(open) = &mut self.open {
            open.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let end = now_us();
        let event = SpanEvent {
            name: open.name,
            start_us: open.start_us,
            dur_us: end.saturating_sub(open.start_us),
            tid: 0, // filled in below from the thread buffer
            args: open.args,
        };
        let _ = BUFFER.try_with(|buf| {
            let mut buf = buf.borrow_mut();
            let mut event = event;
            event.tid = buf.tid;
            buf.events.push(event);
            if buf.events.len() >= FLUSH_THRESHOLD {
                buf.flush();
            }
        });
    }
}

/// Open a span with the given name. Returns a guard that records the
/// completed span when dropped. Inert (no allocation) when tracing is off.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    SpanGuard { open: Some(OpenSpan { name, start_us: now_us(), args: Vec::new() }) }
}

/// Open a span with annotations computed lazily — the closure only runs
/// when tracing is enabled, so argument formatting costs nothing when off.
pub fn span_with(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    SpanGuard { open: Some(OpenSpan { name, start_us: now_us(), args: args() }) }
}

/// Flush the current thread's span buffer into the global sink.
///
/// Every worker closure that records spans must call this before
/// returning: thread-exit flushing via the buffer's destructor is only a
/// backstop, because scoped-thread joins do not wait for thread-local
/// teardown and a drain right after the scope would race it.
pub fn flush_thread() {
    let _ = BUFFER.try_with(|buf| buf.borrow_mut().flush());
}

/// Collect every span recorded so far (flushing the current thread first)
/// and clear the sink. Spans are ordered by start time, with longer spans
/// first on ties so parents precede children.
pub fn drain_spans() -> Vec<SpanEvent> {
    flush_thread();
    let mut events = {
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *sink)
    };
    events.sort_by(|a, b| {
        a.start_us.cmp(&b.start_us).then(b.dur_us.cmp(&a.dur_us)).then(a.tid.cmp(&b.tid))
    });
    events
}

/// Serialize spans as Chrome trace-event JSON: a top-level array of
/// complete (`"ph":"X"`) events with microsecond timestamps. The output
/// loads directly in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
/// and parses with [`crate::json::parse`].
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let pid = std::process::id();
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"ffisafe\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
            quote(ev.name),
            pid,
            ev.tid,
            ev.start_us,
            ev.dur_us
        );
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", quote(k), quote(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Count nesting violations: spans on the same thread must be either
/// disjoint or properly contained (a child's interval inside its
/// parent's). Returns 0 for a well-formed trace.
pub fn nesting_violations(events: &[SpanEvent]) -> usize {
    let mut by_tid: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for ev in events {
        by_tid.entry(ev.tid).or_default().push((ev.start_us, ev.end_us()));
    }
    let mut violations = 0;
    for intervals in by_tid.values_mut() {
        // Sort by start ascending, then end descending so parents come first.
        intervals.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for &(start, end) in intervals.iter() {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, top_end)) = stack.last() {
                if end > top_end {
                    violations += 1;
                    continue;
                }
            }
            stack.push((start, end));
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Trace files
// ---------------------------------------------------------------------------

/// The trace-flush policy shared by every resident daemon (`cache-serve`,
/// `ffisafe serve`): spans drained from the global sink accumulate across
/// flushes, and each [`TraceFileWriter::flush`] rewrites the `--trace-out`
/// file as one *complete* Chrome trace-event snapshot of the daemon so
/// far.
///
/// Two properties the ad-hoc per-daemon code used to get wrong:
///
/// * **no clobbering** — a flush never discards earlier sessions' spans;
///   the accumulator grows monotonically, so the Nth snapshot is a
///   superset of the (N-1)th;
/// * **no torn reads** — the snapshot is written to a sibling `.tmp` file
///   and renamed into place, so a trace viewer (or `trace_check`) opening
///   the file mid-flush never sees a half-written JSON document.
#[derive(Debug)]
pub struct TraceFileWriter {
    path: PathBuf,
    /// Spans accumulated across flushes; every snapshot renders all of
    /// them, so the file is always the daemon's complete history.
    accumulated: Mutex<Vec<SpanEvent>>,
}

impl TraceFileWriter {
    /// A writer that will snapshot to `path`. Nothing is written until the
    /// first [`TraceFileWriter::flush`].
    pub fn new(path: PathBuf) -> TraceFileWriter {
        TraceFileWriter { path, accumulated: Mutex::new(Vec::new()) }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drains the global span sink (flushing the calling thread's buffer
    /// first) into the accumulator and atomically rewrites the snapshot
    /// file. Concurrent flushes serialize on the accumulator.
    pub fn flush(&self) -> std::io::Result<()> {
        flush_thread();
        let mut accumulated = self.accumulated.lock().unwrap_or_else(|p| p.into_inner());
        accumulated.extend(drain_spans());
        let tmp = self.path.with_file_name(format!(
            "{}.tmp",
            self.path.file_name().and_then(|n| n.to_str()).unwrap_or("trace.json")
        ));
        std::fs::write(&tmp, chrome_trace_json(&accumulated))?;
        std::fs::rename(&tmp, &self.path)
    }

    /// Number of spans accumulated so far (observability for tests).
    pub fn span_count(&self) -> usize {
        self.accumulated.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Fixed histogram boundaries (seconds) for latency metrics, chosen to
/// resolve both tier-2 cache hits (~0.1ms) and multi-second cold sweeps.
pub const LATENCY_BUCKETS: &[f64] =
    &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Fixed-boundary distribution with sum and count.
    Histogram,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramValue),
}

/// Observed distribution: cumulative bucket counts over fixed boundaries
/// plus total sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramValue {
    /// Upper bounds of the buckets, ascending; an implicit `+Inf` bucket
    /// follows the last bound.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (not cumulative; one per bound plus
    /// one for `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramValue {
    /// An empty histogram over `bounds`. Public so daemons can accumulate
    /// observations outside a registry (behind their own lock) and
    /// materialize a registry on demand via
    /// [`MetricsRegistry::record_histogram`].
    pub fn new(bounds: &[f64]) -> Self {
        HistogramValue {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug)]
struct MetricFamily {
    help: &'static str,
    kind: MetricKind,
    /// Samples keyed by their rendered label set (`""` for unlabeled).
    samples: BTreeMap<String, MetricValue>,
}

/// A registry of named counters, gauges, and histograms with optional
/// labels. Families are created implicitly on first touch; names and
/// label sets render in sorted order so output is deterministic.
///
/// This is a plain value (no global state): each CLI invocation or daemon
/// builds a registry from its domain stats (`AnalysisStats`, `MapStats`,
/// `CacheStats`) and renders it, so the human `--timings` output and the
/// Prometheus `--metrics-out` file cannot drift apart.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<&'static str, MetricFamily>,
}

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}={}", k, quote(v));
    }
    out
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn family(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
    ) -> &mut MetricFamily {
        let fam = self.families.entry(name).or_insert_with(|| MetricFamily {
            help,
            kind,
            samples: BTreeMap::new(),
        });
        debug_assert!(fam.kind == kind, "metric {name} redeclared with a different kind");
        fam
    }

    /// Add `delta` to a counter, creating it at zero on first touch.
    pub fn inc_counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        let fam = self.family(name, help, MetricKind::Counter);
        let slot = fam.samples.entry(label_key(labels)).or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(v) = slot {
            *v += delta;
        }
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let fam = self.family(name, help, MetricKind::Gauge);
        fam.samples.insert(label_key(labels), MetricValue::Gauge(value));
    }

    /// Record one observation into a fixed-boundary histogram.
    pub fn observe(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let fam = self.family(name, help, MetricKind::Histogram);
        let slot = fam
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| MetricValue::Histogram(HistogramValue::new(bounds)));
        if let MetricValue::Histogram(h) = slot {
            h.observe(value);
        }
    }

    /// Insert (or replace) a fully-accumulated histogram sample — the
    /// bulk form of [`MetricsRegistry::observe`] for daemons that count
    /// observations in their own state and build a registry per scrape.
    pub fn record_histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: HistogramValue,
    ) {
        let fam = self.family(name, help, MetricKind::Histogram);
        fam.samples.insert(label_key(labels), MetricValue::Histogram(value));
    }

    /// Read a counter back, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.samples.get(&label_key(labels))? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Read a gauge back, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.samples.get(&label_key(labels))? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Render the registry in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, histogram `_bucket`/`_sum`/`_count`
    /// expansion with cumulative `le` buckets).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {} {}", name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", name, fam.kind.prometheus_name());
            for (labels, value) in &fam.samples {
                match value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{}{} {}", name, brace(labels), v);
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(out, "{}{} {}", name, brace(labels), fmt_f64(*v));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.counts[i];
                            let le = label_key(&[("le", &fmt_f64(*bound))]);
                            let all = join_labels(labels, &le);
                            let _ = writeln!(out, "{}_bucket{{{}}} {}", name, all, cumulative);
                        }
                        cumulative += h.counts[h.bounds.len()];
                        let le = join_labels(labels, "le=\"+Inf\"");
                        let _ = writeln!(out, "{}_bucket{{{}}} {}", name, le, cumulative);
                        let _ = writeln!(out, "{}_sum{} {}", name, brace(labels), fmt_f64(h.sum));
                        let _ = writeln!(out, "{}_count{} {}", name, brace(labels), h.count);
                    }
                }
            }
        }
        out
    }

    /// Render the registry as a human-readable table (one `name{labels}
    /// value` line per sample, aligned) — the single source for the CLI's
    /// `--timings` stderr output.
    pub fn render_text(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, fam) in &self.families {
            for (labels, value) in &fam.samples {
                let key = format!("{}{}", name, brace(labels));
                let val = match value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => {
                        if v.fract() == 0.0 && v.abs() < 1e9 {
                            format!("{}", *v as i64)
                        } else {
                            format!("{v:.3}")
                        }
                    }
                    MetricValue::Histogram(h) => {
                        format!("count={} sum={}", h.count, fmt_f64(h.sum))
                    }
                };
                rows.push((key, val));
            }
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (key, val) in rows {
            let _ = writeln!(out, "  {key:<width$}  {val}");
        }
        out
    }
}

fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

/// Severity levels for [`log`], ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or dropped work.
    Error = 0,
    /// Degraded behavior the operator should know about (e.g. a network
    /// error degraded a cache get to a miss).
    Warn = 1,
    /// Lifecycle events: session open/close, listener bound.
    Info = 2,
    /// Per-operation detail.
    Debug = 3,
}

impl LogLevel {
    /// Parse a level name as accepted by `--log-level`.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// The lowercase level name.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Warn as u8);

/// Set the global maximum level: messages above it are discarded.
/// Defaults to `warn`.
pub fn set_log_level(level: LogLevel) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
pub fn log_enabled(level: LogLevel) -> bool {
    (level as u8) <= LOG_LEVEL.load(Ordering::Relaxed)
}

/// Emit one leveled line to stderr, stamped with seconds elapsed on the
/// shared telemetry clock: `[    1.234s] info  component: message`.
pub fn log(level: LogLevel, component: &str, message: &str) {
    if !log_enabled(level) {
        return;
    }
    let elapsed = epoch().elapsed().as_secs_f64();
    eprintln!("[{elapsed:>9.3}s] {:<5} {component}: {message}", level.name());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, tid: u64, start: u64, end: u64) -> SpanEvent {
        SpanEvent { name, start_us: start, dur_us: end - start, tid, args: Vec::new() }
    }

    #[test]
    fn nesting_checker_accepts_proper_trees_and_disjoint_spans() {
        let events = vec![
            ev("root", 1, 0, 100),
            ev("child", 1, 10, 40),
            ev("grandchild", 1, 12, 38),
            ev("sibling", 1, 50, 90),
            ev("other-thread", 2, 5, 500),
            ev("later", 1, 100, 120), // shares a boundary with root: disjoint
        ];
        assert_eq!(nesting_violations(&events), 0);
    }

    #[test]
    fn nesting_checker_flags_partial_overlap() {
        let events = vec![ev("a", 1, 0, 50), ev("b", 1, 25, 75)];
        assert_eq!(nesting_violations(&events), 1);
    }

    #[test]
    fn chrome_trace_json_is_parseable_and_complete() {
        let mut event = ev("sweep.library", 3, 7, 19);
        event.args = vec![("library", "gsl\"x".to_string()), ("attempt", "0".to_string())];
        let text = chrome_trace_json(&[event, ev("phase.infer", 3, 8, 18)]);
        let doc = json::parse(&text).expect("trace must parse");
        let arr = doc.as_array().expect("top-level array");
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert_eq!(first.get("name").and_then(|j| j.as_str()), Some("sweep.library"));
        assert_eq!(first.get("ph").and_then(|j| j.as_str()), Some("X"));
        assert_eq!(first.get("ts").and_then(|j| j.as_u64()), Some(7));
        assert_eq!(first.get("dur").and_then(|j| j.as_u64()), Some(12));
        assert_eq!(
            first.get("args").and_then(|a| a.get("library")).and_then(|j| j.as_str()),
            Some("gsl\"x")
        );
    }

    #[test]
    fn registry_prometheus_output_is_sorted_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("z_total", "last family", &[], 3);
        reg.set_gauge("a_seconds", "first family", &[("phase", "infer")], 0.25);
        reg.inc_counter("z_total", "last family", &[], 4);
        let text = reg.to_prometheus();
        let expected = "# HELP a_seconds first family\n\
                        # TYPE a_seconds gauge\n\
                        a_seconds{phase=\"infer\"} 0.25\n\
                        # HELP z_total last family\n\
                        # TYPE z_total counter\n\
                        z_total 7\n";
        assert_eq!(text, expected);
        assert_eq!(reg.counter("z_total", &[]), Some(7));
        assert_eq!(reg.gauge("a_seconds", &[("phase", "infer")]), Some(0.25));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut reg = MetricsRegistry::new();
        for v in [0.0005, 0.003, 0.003, 0.2, 99.0] {
            reg.observe("lat_seconds", "latency", &[], &[0.001, 0.01, 1.0], v);
        }
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.01\"} 3\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 4\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_seconds_count 5\n"));
    }

    #[test]
    fn render_text_aligns_and_preserves_labels() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("wall_seconds", "w", &[("phase", "infer")], 0.125);
        reg.inc_counter("hits_total", "h", &[], 12);
        let text = reg.render_text();
        assert!(text.contains("wall_seconds{phase=\"infer\"}"));
        assert!(text.contains("0.125"));
        assert!(text.contains("hits_total"));
        assert!(text.contains("12"));
    }

    #[test]
    fn record_histogram_installs_the_accumulated_sample() {
        let mut h = HistogramValue::new(&[0.01, 1.0]);
        h.observe(0.005);
        h.observe(0.5);
        h.observe(5.0);
        let mut reg = MetricsRegistry::new();
        reg.record_histogram("req_seconds", "request latency", &[], h);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE req_seconds histogram\n"), "{text}");
        assert!(text.contains("req_seconds_bucket{le=\"0.01\"} 1\n"), "{text}");
        assert!(text.contains("req_seconds_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("req_seconds_count 3\n"), "{text}");
    }

    #[test]
    fn trace_file_writer_accumulates_across_flushes_atomically() {
        let dir = std::env::temp_dir().join(format!("ffisafe-tracewriter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let writer = TraceFileWriter::new(dir.join("trace.json"));

        // First flush: whatever the sink holds right now (other tests may
        // share the process-global sink, so only count relative growth).
        writer.flush().unwrap();
        let after_first = writer.span_count();

        // Record one span with tracing forced on, then flush again: the
        // accumulator must grow, earlier spans must survive, and the file
        // must parse as a complete snapshot of everything so far.
        set_tracing(true);
        drop(span("probe.trace-writer"));
        set_tracing(false);
        writer.flush().unwrap();
        // Another test may share the process-global sink, so assert growth
        // rather than an exact count.
        assert!(writer.span_count() > after_first, "flush must append, not clobber");

        let text = std::fs::read_to_string(writer.path()).unwrap();
        let doc = json::parse(&text).expect("snapshot parses");
        let events = doc.as_array().expect("top-level array");
        assert_eq!(events.len(), writer.span_count(), "snapshot renders the full accumulator");
        assert!(!dir.join("trace.json.tmp").exists(), "tmp file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_level_parse_round_trips() {
        for name in ["error", "warn", "info", "debug"] {
            assert_eq!(LogLevel::parse(name).unwrap().name(), name);
        }
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Error < LogLevel::Debug);
    }
}

#[cfg(test)]
mod live_tracing {
    use super::*;

    /// A drain right after a scope must see the worker's spans when the
    /// worker follows the documented discipline of flushing before its
    /// closure returns (thread-exit flushing alone races the scope join).
    #[test]
    fn flushed_worker_spans_survive_an_immediate_drain() {
        set_tracing(true);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = span("probe.child");
                drop(_g);
                flush_thread();
            });
        });
        let g = span("probe.main");
        drop(g);
        let events = drain_spans();
        set_tracing(false);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"probe.child"), "{names:?}");
        assert!(names.contains(&"probe.main"), "{names:?}");
    }
}
