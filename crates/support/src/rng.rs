//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The soundness harness and the benchmark corpus both need reproducible
//! randomness; vendoring a full `rand` stack for that is overkill (and the
//! build environment is offline). This is `splitmix64` — 64 bits of state,
//! passes practical statistical tests, and is stable across platforms, so
//! seeded corpora are byte-identical everywhere.
//!
//! The API mirrors the subset of `rand` the workspace uses (`seed_from_u64`,
//! `gen_range` over half-open and inclusive integer ranges, `gen_bool`).
//!
//! # Examples
//!
//! ```
//! use ffisafe_support::rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.gen_range(0..100usize), b.gen_range(0..100usize));
//! let die = a.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit PRNG (splitmix64).
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams
    /// on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample from an integer range; panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// A random printable-ish string, including multi-byte chars and
    /// control characters, up to `max_len` chars — the shared fuzz input
    /// of the frontend robustness suites.
    pub fn arbitrary_text(&mut self, max_len: usize) -> String {
        let pool: Vec<char> = ('\u{20}'..'\u{7f}')
            .chain(['\n', '\t', '\r', '\0', 'λ', 'é', '≤', '🦀', '\u{7}', '\u{1b}'])
            .collect();
        let len = self.gen_range(0..=max_len);
        (0..len).map(|_| pool[self.gen_range(0..pool.len())]).collect()
    }

    /// Uniform `u64` below `bound` (> 0), by rejection to avoid modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Integer scalars [`Rng64::gen_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi]` (both inclusive, `lo <= hi`).
    fn sample_inclusive(rng: &mut Rng64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width + 1) as i128) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> T;
}

impl<T: SampleUniform + SubOne> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut Rng64) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(rng, self.start, self.end.sub_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut Rng64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Decrement by one, for converting a half-open bound to inclusive.
pub trait SubOne {
    /// `self - 1`.
    fn sub_one(self) -> Self;
}

macro_rules! impl_sub_one {
    ($($t:ty),*) => {$(
        impl SubOne for $t {
            fn sub_one(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sub_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3..9i64);
            assert!((-3..9).contains(&v));
            let w = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&w));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng64::seed_from_u64(2);
        assert!(!(0..50).any(|_| rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
