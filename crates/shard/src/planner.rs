//! The sweep planner: walks a corpus root, fingerprints every library,
//! partitions them into shards and writes the versioned
//! `sweep-manifest.json`.
//!
//! A **corpus root** is a directory of libraries: every immediate
//! subdirectory containing at least one FFI source (`.ml`/`.mli`/`.c`/
//! `.h`, found recursively) is one library, and FFI files sitting directly
//! in the root form a library named `.`. Within a library, files load in
//! the same deterministic sorted-path order as [`Corpus::from_dir`], so a
//! library's [`Corpus::fingerprint`] is a pure function of the tree — the
//! key under which shards hit the shared cache store.
//!
//! Sharding is deterministic too: libraries are sorted by name and split
//! into contiguous, size-balanced chunks. The partitioning never affects
//! the reduced [`crate::SweepReport`] (the reducer re-sorts by library
//! name); it only decides what travels together to one worker.

use ffisafe_core::{source_files_under, ApiError, Corpus};
use ffisafe_support::json::escape_into;
use ffisafe_support::{Fingerprint, FingerprintHasher};
use std::path::{Path, PathBuf};

/// Version of `sweep-manifest.json`. Bumped whenever a field changes
/// meaning, moves or disappears; adding fields does not bump it.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// One library discovered under the corpus root: its name, its source
/// files (sorted), its content fingerprint and (optionally) its loaded
/// corpus.
#[derive(Clone, Debug)]
pub struct LibraryPlan {
    /// Directory name relative to the root (`.` for root-level files).
    pub name: String,
    /// The FFI source files, in deterministic sorted-path order.
    pub files: Vec<PathBuf>,
    /// The library's content digest (see [`Corpus::fingerprint`]).
    pub fingerprint: Fingerprint,
    /// The loaded corpus. `None` after [`SweepPlan::drop_sources`] —
    /// child-process mapping re-reads sources from disk, so keeping a
    /// thousand libraries' text resident would be pure overhead.
    pub corpus: Option<Corpus>,
}

/// One shard: a contiguous run of libraries plus the digest that names
/// the shard's total content.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Position in [`SweepPlan::shards`].
    pub index: usize,
    /// Digest of every member's name and corpus fingerprint — two plans
    /// agree on a shard key exactly when the shard carries identical
    /// content, which is what lets warm shards be served from a shared
    /// cache store instead of re-shipping artifacts.
    pub key: Fingerprint,
    /// Indices into [`SweepPlan::libraries`].
    pub members: Vec<usize>,
}

/// The full plan for one sweep: every library and its shard assignment.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// The corpus root the plan was built from.
    pub root: PathBuf,
    /// Every discovered library, sorted by name.
    pub libraries: Vec<LibraryPlan>,
    /// The shard partitioning (contiguous, size-balanced chunks).
    pub shards: Vec<ShardPlan>,
    /// Libraries that could not be *planned* (unreadable subtree, file
    /// deleted mid-walk, symlink loop, …). One broken library must not
    /// sink a thousand-library sweep, so these flow into
    /// [`crate::SweepReport::failures`] instead of aborting the plan;
    /// only a root that cannot be read at all is fatal.
    pub failures: Vec<crate::reducer::SweepFailure>,
}

impl SweepPlan {
    /// Total libraries planned.
    pub fn library_count(&self) -> usize {
        self.libraries.len()
    }

    /// Frees every library's loaded source text, keeping names, file
    /// lists and fingerprints. Called for child-process sweeps, where
    /// the children re-read sources from disk and the resident text
    /// would otherwise scale with the whole corpus instead of the
    /// in-flight shards.
    pub fn drop_sources(&mut self) {
        for library in &mut self.libraries {
            library.corpus = None;
        }
    }

    /// The versioned machine-readable manifest: which libraries exist,
    /// their content fingerprints and file lists, and how they were
    /// partitioned into shards.
    ///
    /// Schema (v1, see [`MANIFEST_SCHEMA_VERSION`]):
    ///
    /// ```text
    /// {
    ///   "manifest_schema_version": 1,
    ///   "tool": "ffisafe",
    ///   "tool_version": "<crate version>",
    ///   "root": "<corpus root>",
    ///   "libraries": N,
    ///   "shards": [ { "shard": i, "key": "<hex128>",
    ///                 "libraries": [ { "name", "fingerprint": "<hex128>",
    ///                                  "files": [ "<path>", ... ] } ] } ]
    /// }
    /// ```
    pub fn manifest_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"manifest_schema_version\": {MANIFEST_SCHEMA_VERSION},\n"));
        out.push_str("  \"tool\": \"ffisafe\",\n");
        out.push_str(&format!("  \"tool_version\": \"{}\",\n", env!("CARGO_PKG_VERSION")));
        out.push_str("  \"root\": \"");
        escape_into(&mut out, &self.root.display().to_string());
        out.push_str("\",\n");
        out.push_str(&format!("  \"libraries\": {},\n", self.libraries.len()));
        out.push_str("  \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"shard\": {}, \"key\": \"{}\", \"libraries\": [",
                shard.index,
                shard.key.to_hex()
            ));
            for (j, &member) in shard.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let lib = &self.libraries[member];
                out.push_str("\n      {\"name\": \"");
                escape_into(&mut out, &lib.name);
                out.push_str(&format!(
                    "\", \"fingerprint\": \"{}\", \"files\": [",
                    lib.fingerprint.to_hex()
                ));
                for (k, file) in lib.files.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    escape_into(&mut out, &file.display().to_string());
                    out.push('"');
                }
                out.push_str("]}");
            }
            out.push_str(if shard.members.is_empty() { "]}" } else { "\n    ]}" });
        }
        out.push_str(if self.shards.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

/// Builds the plan for `root`: discovers libraries, loads and fingerprints
/// each, and partitions them into `shard_count` shards (`0` means one
/// shard per library — maximal fan-out). The partitioning is clamped to
/// `[1, libraries]`, so any requested count is safe.
pub fn plan(root: &Path, shard_count: usize) -> Result<SweepPlan, ApiError> {
    let (libraries, failures) = discover_libraries(root)?;
    let n = libraries.len();
    let shards = if n == 0 {
        Vec::new()
    } else {
        let count = if shard_count == 0 { n } else { shard_count.clamp(1, n) };
        partition(&libraries, count)
    };
    Ok(SweepPlan { root: root.to_path_buf(), libraries, shards, failures })
}

/// Every immediate subdirectory of `root` with ≥ 1 FFI source (searched
/// recursively) becomes a library; root-level FFI files form a library
/// named `.`. Sorted by library name. A library whose subtree cannot be
/// walked or loaded becomes a planning failure, not an error — only an
/// unreadable root aborts.
fn discover_libraries(
    root: &Path,
) -> Result<(Vec<LibraryPlan>, Vec<crate::reducer::SweepFailure>), ApiError> {
    let read = std::fs::read_dir(root)
        .map_err(|e| ApiError::Io { path: root.display().to_string(), message: e.to_string() })?;
    let mut dirs = Vec::new();
    let mut root_files = Vec::new();
    for dirent in read {
        let dirent = dirent.map_err(|e| ApiError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        let path = dirent.path();
        if path.is_dir() {
            dirs.push(path);
        } else if ffisafe_core::SourceKind::from_name(&path.display().to_string()).is_some() {
            root_files.push(path);
        }
    }
    dirs.sort_by_key(|p| p.display().to_string());
    root_files.sort_by_key(|p| p.display().to_string());

    let mut libraries = Vec::new();
    let mut failures = Vec::new();
    let mut admit = |name: String, result: Result<Option<LibraryPlan>, ApiError>| match result {
        Ok(Some(library)) => libraries.push(library),
        Ok(None) => {}
        Err(e) => {
            failures.push(crate::reducer::SweepFailure { library: name, error: e.to_string() })
        }
    };
    if !root_files.is_empty() {
        admit(".".to_string(), load_library(".".to_string(), root_files).map(Some));
    }
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        let loaded = source_files_under(&dir).and_then(|files| {
            if files.is_empty() {
                Ok(None)
            } else {
                load_library(name.clone(), files).map(Some)
            }
        });
        admit(name, loaded);
    }
    libraries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok((libraries, failures))
}

fn load_library(name: String, files: Vec<PathBuf>) -> Result<LibraryPlan, ApiError> {
    let mut builder = Corpus::builder();
    for file in &files {
        builder = builder.source_path(file)?;
    }
    let corpus = builder.build();
    Ok(LibraryPlan { name, files, fingerprint: corpus.fingerprint(), corpus: Some(corpus) })
}

/// Splits `libraries` (already name-sorted) into `count` contiguous
/// chunks whose sizes differ by at most one.
fn partition(libraries: &[LibraryPlan], count: usize) -> Vec<ShardPlan> {
    let n = libraries.len();
    let base = n / count;
    let extra = n % count;
    let mut shards = Vec::with_capacity(count);
    let mut next = 0usize;
    for index in 0..count {
        let take = base + usize::from(index < extra);
        let members: Vec<usize> = (next..next + take).collect();
        next += take;
        shards.push(ShardPlan { index, key: shard_key(libraries, &members), members });
    }
    shards
}

/// The digest naming a shard's total content: each member's name and
/// corpus fingerprint, in order.
fn shard_key(libraries: &[LibraryPlan], members: &[usize]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-shard-key");
    h.write_u64(members.len() as u64);
    for &m in members {
        h.write_str(&libraries[m].name);
        h.write_fingerprint(libraries[m].fingerprint);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_tree(tag: &str, libs: &[(&str, &[(&str, &str)])]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ffisafe-planner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (lib, files) in libs {
            let dir = root.join(lib);
            std::fs::create_dir_all(&dir).unwrap();
            for (name, src) in *files {
                std::fs::write(dir.join(name), src).unwrap();
            }
        }
        root
    }

    fn three_lib_tree(tag: &str) -> PathBuf {
        temp_tree(
            tag,
            &[
                (
                    "liba",
                    &[
                        ("lib.ml", "external f : int -> int = \"ml_f\"\n"),
                        ("glue.c", "value ml_f(value n) { return Val_int(Int_val(n)); }\n"),
                    ],
                ),
                (
                    "libb",
                    &[
                        ("lib.ml", "external g : int -> int = \"ml_g\"\n"),
                        ("glue.c", "value ml_g(value n) { return Val_int(n); }\n"),
                        ("notes.txt", "not source\n"),
                    ],
                ),
                (
                    "libc",
                    &[
                        ("lib.ml", "external h : string -> int = \"ml_h\"\n"),
                        ("glue.c", "value ml_h(value s) { return Val_int(0); }\n"),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn plan_discovers_sorted_libraries_and_skips_non_ffi_dirs() {
        let root = three_lib_tree("discover");
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(root.join("docs/README.md"), "no sources here\n").unwrap();

        let plan = plan(&root, 0).unwrap();
        let names: Vec<&str> = plan.libraries.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["liba", "libb", "libc"]);
        assert_eq!(plan.libraries[1].files.len(), 2, "notes.txt skipped");
        assert_eq!(plan.shards.len(), 3, "0 = one shard per library");
        // plan is deterministic
        let again = super::plan(&root, 0).unwrap();
        assert_eq!(plan.manifest_json(), again.manifest_json());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn partition_is_contiguous_balanced_and_clamped() {
        let root = three_lib_tree("partition");
        let p2 = plan(&root, 2).unwrap();
        let sizes: Vec<usize> = p2.shards.iter().map(|s| s.members.len()).collect();
        assert_eq!(sizes, [2, 1]);
        let flat: Vec<usize> = p2.shards.iter().flat_map(|s| s.members.clone()).collect();
        assert_eq!(flat, [0, 1, 2], "contiguous, every library exactly once");
        let p8 = plan(&root, 8).unwrap();
        assert_eq!(p8.shards.len(), 3, "clamped to the library count");
        // shard keys depend on membership
        assert_ne!(p2.shards[0].key, p8.shards[0].key);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_is_versioned_and_parseable() {
        let root = three_lib_tree("manifest");
        let plan = plan(&root, 2).unwrap();
        let doc = ffisafe_support::json::parse(&plan.manifest_json()).expect("valid JSON");
        use ffisafe_support::json::Json;
        assert_eq!(doc.get("manifest_schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("libraries").and_then(Json::as_u64), Some(3));
        let shards = doc.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards.len(), 2);
        let lib0 = shards[0].get("libraries").and_then(Json::as_array).unwrap()[0].clone();
        assert_eq!(lib0.get("name").and_then(Json::as_str), Some("liba"));
        assert_eq!(
            lib0.get("fingerprint").and_then(Json::as_str).map(str::len),
            Some(32),
            "128-bit hex fingerprint"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_root_plans_zero_shards() {
        let root = temp_tree("empty", &[]);
        std::fs::create_dir_all(&root).unwrap();
        let plan = plan(&root, 4).unwrap();
        assert_eq!(plan.library_count(), 0);
        assert!(plan.shards.is_empty());
        assert!(ffisafe_support::json::parse(&plan.manifest_json()).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_is_a_typed_io_error() {
        let err = plan(Path::new("/definitely/not/here"), 1).unwrap_err();
        assert!(matches!(err, ApiError::Io { .. }), "{err:?}");
    }

    #[test]
    fn an_unloadable_library_is_a_planning_failure_not_an_abort() {
        let root = three_lib_tree("broken-lib");
        // a dangling symlink named like an FFI source: the walk finds it,
        // the load cannot read it
        std::fs::create_dir_all(root.join("libzz")).unwrap();
        std::os::unix::fs::symlink("/definitely/not/here.ml", root.join("libzz/broken.ml"))
            .unwrap();

        let plan = plan(&root, 2).unwrap();
        let names: Vec<&str> = plan.libraries.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["liba", "libb", "libc"], "healthy libraries still planned");
        assert_eq!(plan.failures.len(), 1);
        assert_eq!(plan.failures[0].library, "libzz");
        assert!(plan.failures[0].error.contains("cannot read"), "{:?}", plan.failures[0]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drop_sources_keeps_fingerprints_and_files() {
        let root = three_lib_tree("dropsrc");
        let mut plan = plan(&root, 1).unwrap();
        let fps: Vec<_> = plan.libraries.iter().map(|l| l.fingerprint).collect();
        let manifest = plan.manifest_json();
        plan.drop_sources();
        assert!(plan.libraries.iter().all(|l| l.corpus.is_none()));
        assert_eq!(fps, plan.libraries.iter().map(|l| l.fingerprint).collect::<Vec<_>>());
        assert_eq!(manifest, plan.manifest_json(), "manifest needs no loaded sources");
        let _ = std::fs::remove_dir_all(&root);
    }
}
