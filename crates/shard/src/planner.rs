//! The sweep planner: walks a corpus root, fingerprints every library,
//! partitions them into shards and writes the versioned
//! `sweep-manifest.json`.
//!
//! A **corpus root** is a directory of libraries: every immediate
//! subdirectory containing at least one FFI source (`.ml`/`.mli`/`.rs`/`.c`/
//! `.h`, found recursively) is one library, and FFI files sitting directly
//! in the root form a library named `.`. Within a library, files load in
//! the same deterministic sorted-path order as [`Corpus::from_dir`], so a
//! library's [`Corpus::fingerprint`] is a pure function of the tree — the
//! key under which shards hit the shared cache store.
//!
//! Sharding is deterministic in either schedule. [`Schedule::Name`]
//! (the default) sorts libraries by name and splits them into contiguous,
//! size-balanced chunks. [`Schedule::Cost`] packs shards by **historical
//! per-library cost** — longest-processing-time-first (LPT) onto the
//! least-loaded shard — using the cost rows a previous run persisted into
//! `sweep-manifest.json`, so one expensive library no longer shares a
//! chunk with (and stalls behind) a pile of cheap neighbors. The
//! partitioning never affects the reduced [`crate::SweepReport`] (the
//! reducer re-sorts by library name); it only decides what travels
//! together to one worker and in which order work starts.

use ffisafe_core::{source_files_under, ApiError, Corpus};
use ffisafe_support::json::{self, escape_into, Json};
use ffisafe_support::telemetry;
use ffisafe_support::{Fingerprint, FingerprintHasher};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Version of `sweep-manifest.json`. Bumped whenever a field changes
/// meaning, moves or disappears; adding fields does not bump it.
///
/// v2: adds the top-level `schedule` field and a per-library `cost`
/// object (the [`LibraryCost`] row recorded after every run). v1
/// manifests still load — they simply carry no cost data, so a
/// cost-scheduled sweep over them falls back to name order.
pub const MANIFEST_SCHEMA_VERSION: u32 = 2;

/// Floor cost used when packing, so zero-cost (warm or unknown) libraries
/// still spread across shards instead of piling onto shard 0.
const MIN_PACK_COST: f64 = 1e-6;

/// How libraries are packed into shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous, size-balanced chunks of the name-sorted library list.
    #[default]
    Name,
    /// LPT cost packing: libraries are placed heaviest-first onto the
    /// least-loaded shard, using historical [`LibraryCost`] rows from a
    /// prior manifest. Libraries without history cost the average of the
    /// known ones; with no history at all this degrades to [`Schedule::Name`].
    Cost,
}

impl Schedule {
    /// Parses the CLI spelling (`name` | `cost`).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "name" => Some(Schedule::Name),
            "cost" => Some(Schedule::Cost),
            _ => None,
        }
    }

    /// The CLI/manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::Name => "name",
            Schedule::Cost => "cost",
        }
    }
}

/// One library's cost row, persisted into `sweep-manifest.json` after
/// every run (manifest v2) and read back as the cost model of the next.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LibraryCost {
    /// The scheduling cost: expected *cold* inference work in seconds.
    /// Measured work when the recording run actually executed workers;
    /// carried forward from the previous manifest when it was served warm
    /// (a warm run's ~0 measurement says nothing about cold cost).
    pub cost_seconds: f64,
    /// Per-function inference work measured in the recording run.
    pub work_seconds: f64,
    /// Wall seconds the library took in the recording run.
    pub seconds: f64,
    /// C functions analyzed.
    pub functions: usize,
    /// Tier-1 cache hits in the recording run.
    pub cache_fn_hits: usize,
    /// Tier-1 cache misses in the recording run.
    pub cache_fn_misses: usize,
    /// Whether the whole report came from the tier-2 cache.
    pub report_hit: bool,
}

/// One library discovered under the corpus root: its name, its source
/// files (sorted), its content fingerprint and (optionally) its loaded
/// corpus.
#[derive(Clone, Debug)]
pub struct LibraryPlan {
    /// Directory name relative to the root (`.` for root-level files).
    pub name: String,
    /// The FFI source files, in deterministic sorted-path order.
    pub files: Vec<PathBuf>,
    /// The library's content digest (see [`Corpus::fingerprint`]).
    pub fingerprint: Fingerprint,
    /// The loaded corpus. `None` after [`SweepPlan::drop_sources`] —
    /// child-process mapping re-reads sources from disk, so keeping a
    /// thousand libraries' text resident would be pure overhead.
    pub corpus: Option<Corpus>,
    /// The library's cost row: the historical one at plan time, replaced
    /// by the measured one before the post-run manifest rewrite. `None`
    /// when no history exists and no run has completed yet.
    pub cost: Option<LibraryCost>,
}

/// One shard: a contiguous run of libraries plus the digest that names
/// the shard's total content.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Position in [`SweepPlan::shards`].
    pub index: usize,
    /// Digest of every member's name and corpus fingerprint — two plans
    /// agree on a shard key exactly when the shard carries identical
    /// content, which is what lets warm shards be served from a shared
    /// cache store instead of re-shipping artifacts.
    pub key: Fingerprint,
    /// Indices into [`SweepPlan::libraries`].
    pub members: Vec<usize>,
}

/// The full plan for one sweep: every library and its shard assignment.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// The corpus root the plan was built from.
    pub root: PathBuf,
    /// Every discovered library, sorted by name.
    pub libraries: Vec<LibraryPlan>,
    /// The shard partitioning (contiguous name chunks, or LPT cost packs).
    pub shards: Vec<ShardPlan>,
    /// The schedule the shards were packed with.
    pub schedule: Schedule,
    /// Libraries that could not be *planned* (unreadable subtree, file
    /// deleted mid-walk, symlink loop, …). One broken library must not
    /// sink a thousand-library sweep, so these flow into
    /// [`crate::SweepReport::failures`] instead of aborting the plan;
    /// only a root that cannot be read at all is fatal.
    pub failures: Vec<crate::reducer::SweepFailure>,
}

impl SweepPlan {
    /// Total libraries planned.
    pub fn library_count(&self) -> usize {
        self.libraries.len()
    }

    /// Frees every library's loaded source text, keeping names, file
    /// lists and fingerprints. Called for child-process sweeps, where
    /// the children re-read sources from disk and the resident text
    /// would otherwise scale with the whole corpus instead of the
    /// in-flight shards.
    pub fn drop_sources(&mut self) {
        for library in &mut self.libraries {
            library.corpus = None;
        }
    }

    /// Replaces every library's cost row with the freshly measured one —
    /// called by [`crate::sweep`] after the map phase so the rewritten
    /// manifest carries this run's data for the next run's cost model.
    pub fn set_costs(&mut self, costs: &HashMap<String, LibraryCost>) {
        for library in &mut self.libraries {
            if let Some(cost) = costs.get(&library.name) {
                library.cost = Some(*cost);
            }
        }
    }

    /// The versioned machine-readable manifest: which libraries exist,
    /// their content fingerprints, file lists and cost rows, and how they
    /// were partitioned into shards.
    ///
    /// Schema (v2, see [`MANIFEST_SCHEMA_VERSION`]):
    ///
    /// ```text
    /// {
    ///   "manifest_schema_version": 2,
    ///   "tool": "ffisafe",
    ///   "tool_version": "<crate version>",
    ///   "root": "<corpus root>",
    ///   "schedule": "name" | "cost",
    ///   "libraries": N,
    ///   "shards": [ { "shard": i, "key": "<hex128>",
    ///                 "libraries": [ { "name", "fingerprint": "<hex128>",
    ///                                  "files": [ "<path>", ... ],
    ///                                  "cost": { "cost_seconds", "work_seconds",
    ///                                            "seconds", "functions",
    ///                                            "fn_hits", "fn_misses",
    ///                                            "report_hit" } } ] } ]
    /// }
    /// ```
    ///
    /// The `cost` object is per library and optional (absent in v1
    /// manifests and for libraries that have never completed a run).
    pub fn manifest_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"manifest_schema_version\": {MANIFEST_SCHEMA_VERSION},\n"));
        out.push_str("  \"tool\": \"ffisafe\",\n");
        out.push_str(&format!("  \"tool_version\": \"{}\",\n", env!("CARGO_PKG_VERSION")));
        out.push_str("  \"root\": \"");
        escape_into(&mut out, &self.root.display().to_string());
        out.push_str("\",\n");
        out.push_str(&format!("  \"schedule\": \"{}\",\n", self.schedule.as_str()));
        out.push_str(&format!("  \"libraries\": {},\n", self.libraries.len()));
        out.push_str("  \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"shard\": {}, \"key\": \"{}\", \"libraries\": [",
                shard.index,
                shard.key.to_hex()
            ));
            for (j, &member) in shard.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let lib = &self.libraries[member];
                out.push_str("\n      {\"name\": \"");
                escape_into(&mut out, &lib.name);
                out.push_str(&format!(
                    "\", \"fingerprint\": \"{}\", \"files\": [",
                    lib.fingerprint.to_hex()
                ));
                for (k, file) in lib.files.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    escape_into(&mut out, &file.display().to_string());
                    out.push('"');
                }
                out.push(']');
                if let Some(cost) = &lib.cost {
                    out.push_str(&format!(
                        ", \"cost\": {{\"cost_seconds\": {:.6}, \"work_seconds\": {:.6}, \"seconds\": {:.6}, \"functions\": {}, \"fn_hits\": {}, \"fn_misses\": {}, \"report_hit\": {}}}",
                        cost.cost_seconds,
                        cost.work_seconds,
                        cost.seconds,
                        cost.functions,
                        cost.cache_fn_hits,
                        cost.cache_fn_misses,
                        cost.report_hit
                    ));
                }
                out.push('}');
            }
            out.push_str(if shard.members.is_empty() { "]}" } else { "\n    ]}" });
        }
        out.push_str(if self.shards.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

/// Reads the per-library cost rows out of a previous run's manifest.
///
/// Both schema versions load: v1 rows carry no `cost` object and simply
/// contribute nothing. A missing or unparseable manifest yields an empty
/// map — historical cost is an optimization, never a requirement.
pub fn load_manifest_costs(path: &Path) -> HashMap<String, LibraryCost> {
    let Ok(text) = std::fs::read_to_string(path) else { return HashMap::new() };
    let Ok(doc) = json::parse(&text) else { return HashMap::new() };
    let mut costs = HashMap::new();
    let Some(shards) = doc.get("shards").and_then(Json::as_array) else { return costs };
    for shard in shards {
        let Some(libraries) = shard.get("libraries").and_then(Json::as_array) else { continue };
        for lib in libraries {
            let Some(name) = lib.get("name").and_then(Json::as_str) else { continue };
            let Some(cost) = lib.get("cost") else { continue };
            let f = |key: &str| cost.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            let n = |key: &str| cost.get(key).and_then(Json::as_u64).unwrap_or(0) as usize;
            costs.insert(
                name.to_string(),
                LibraryCost {
                    cost_seconds: f("cost_seconds"),
                    work_seconds: f("work_seconds"),
                    seconds: f("seconds"),
                    functions: n("functions"),
                    cache_fn_hits: n("fn_hits"),
                    cache_fn_misses: n("fn_misses"),
                    report_hit: cost.get("report_hit").and_then(Json::as_bool).unwrap_or(false),
                },
            );
        }
    }
    costs
}

/// Builds the plan for `root` with the default [`Schedule::Name`] and no
/// cost history. See [`plan_with`].
pub fn plan(root: &Path, shard_count: usize) -> Result<SweepPlan, ApiError> {
    plan_with(root, shard_count, Schedule::Name, &HashMap::new())
}

/// Builds the plan for `root`: discovers libraries, loads and fingerprints
/// each, and partitions them into `shard_count` shards (`0` means one
/// shard per library — maximal fan-out). The partitioning is clamped to
/// `[1, libraries]`, so any requested count is safe.
///
/// `prior` is the cost model — typically [`load_manifest_costs`] over the
/// previous run's manifest. Under [`Schedule::Cost`] with at least one
/// known cost the libraries are LPT-packed; otherwise (including always
/// under [`Schedule::Name`]) they are split into contiguous name-sorted
/// chunks. Known cost rows are attached to the plan's libraries either
/// way, so the rewritten manifest preserves history for libraries that
/// get served warm this time.
pub fn plan_with(
    root: &Path,
    shard_count: usize,
    schedule: Schedule,
    prior: &HashMap<String, LibraryCost>,
) -> Result<SweepPlan, ApiError> {
    let mut span =
        telemetry::span_with("sweep.plan", || vec![("shards_requested", shard_count.to_string())]);
    let (mut libraries, failures) = discover_libraries(root)?;
    span.arg("libraries", libraries.len().to_string());
    for library in &mut libraries {
        library.cost = prior.get(&library.name).copied();
    }
    let n = libraries.len();
    let shards = if n == 0 {
        Vec::new()
    } else {
        let count = if shard_count == 0 { n } else { shard_count.clamp(1, n) };
        let any_known = libraries.iter().any(|l| l.cost.is_some());
        if schedule == Schedule::Cost && any_known {
            partition_lpt(&libraries, count)
        } else {
            partition(&libraries, count)
        }
    };
    Ok(SweepPlan { root: root.to_path_buf(), libraries, shards, schedule, failures })
}

/// Every immediate subdirectory of `root` with ≥ 1 FFI source (searched
/// recursively) becomes a library; root-level FFI files form a library
/// named `.`. Sorted by library name. A library whose subtree cannot be
/// walked or loaded becomes a planning failure, not an error — only an
/// unreadable root aborts.
fn discover_libraries(
    root: &Path,
) -> Result<(Vec<LibraryPlan>, Vec<crate::reducer::SweepFailure>), ApiError> {
    let read = std::fs::read_dir(root)
        .map_err(|e| ApiError::Io { path: root.display().to_string(), message: e.to_string() })?;
    let mut dirs = Vec::new();
    let mut root_files = Vec::new();
    for dirent in read {
        let dirent = dirent.map_err(|e| ApiError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        let path = dirent.path();
        if path.is_dir() {
            dirs.push(path);
        } else if ffisafe_core::SourceKind::from_name(&path.display().to_string()).is_some() {
            root_files.push(path);
        }
    }
    dirs.sort_by_key(|p| p.display().to_string());
    root_files.sort_by_key(|p| p.display().to_string());

    let mut libraries = Vec::new();
    let mut failures = Vec::new();
    let mut admit = |name: String, result: Result<Option<LibraryPlan>, ApiError>| match result {
        Ok(Some(library)) => libraries.push(library),
        Ok(None) => {}
        Err(e) => {
            failures.push(crate::reducer::SweepFailure { library: name, error: e.to_string() })
        }
    };
    if !root_files.is_empty() {
        admit(".".to_string(), load_library(".".to_string(), root_files).map(Some));
    }
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        let loaded = source_files_under(&dir).and_then(|files| {
            if files.is_empty() {
                Ok(None)
            } else {
                load_library(name.clone(), files).map(Some)
            }
        });
        admit(name, loaded);
    }
    libraries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok((libraries, failures))
}

fn load_library(name: String, files: Vec<PathBuf>) -> Result<LibraryPlan, ApiError> {
    let mut builder = Corpus::builder();
    for file in &files {
        builder = builder.source_path(file)?;
    }
    let corpus = builder.build();
    Ok(LibraryPlan {
        name,
        files,
        fingerprint: corpus.fingerprint(),
        corpus: Some(corpus),
        cost: None,
    })
}

/// Splits `libraries` (already name-sorted) into `count` contiguous
/// chunks whose sizes differ by at most one.
fn partition(libraries: &[LibraryPlan], count: usize) -> Vec<ShardPlan> {
    let n = libraries.len();
    let base = n / count;
    let extra = n % count;
    let mut shards = Vec::with_capacity(count);
    let mut next = 0usize;
    for index in 0..count {
        let take = base + usize::from(index < extra);
        let members: Vec<usize> = (next..next + take).collect();
        next += take;
        shards.push(ShardPlan { index, key: shard_key(libraries, &members), members });
    }
    shards
}

/// LPT packing: libraries sorted by (cost desc, name asc) are assigned
/// one at a time to the least-loaded shard (ties broken toward the lowest
/// shard index). Members stay in assignment order, so the heaviest
/// library in each shard is also the first one its worker starts —
/// long-pole work begins immediately instead of queueing behind cheap
/// neighbors. Deterministic: same costs + names ⇒ same packing.
fn partition_lpt(libraries: &[LibraryPlan], count: usize) -> Vec<ShardPlan> {
    let known: Vec<f64> = libraries.iter().filter_map(|l| l.cost.map(|c| c.cost_seconds)).collect();
    let average = known.iter().sum::<f64>() / known.len() as f64;
    let mut order: Vec<usize> = (0..libraries.len()).collect();
    let cost_of =
        |i: usize| libraries[i].cost.map(|c| c.cost_seconds).unwrap_or(average).max(MIN_PACK_COST);
    order.sort_by(|&a, &b| {
        cost_of(b)
            .partial_cmp(&cost_of(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| libraries[a].name.cmp(&libraries[b].name))
    });
    let mut loads = vec![0.0f64; count];
    let mut packs: Vec<Vec<usize>> = vec![Vec::new(); count];
    for lib in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        loads[lightest] += cost_of(lib);
        packs[lightest].push(lib);
    }
    packs
        .into_iter()
        .enumerate()
        .map(|(index, members)| ShardPlan { index, key: shard_key(libraries, &members), members })
        .collect()
}

/// The digest naming a shard's total content: each member's name and
/// corpus fingerprint, in order.
fn shard_key(libraries: &[LibraryPlan], members: &[usize]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-shard-key");
    h.write_u64(members.len() as u64);
    for &m in members {
        h.write_str(&libraries[m].name);
        h.write_fingerprint(libraries[m].fingerprint);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_tree(tag: &str, libs: &[(&str, &[(&str, &str)])]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ffisafe-planner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (lib, files) in libs {
            let dir = root.join(lib);
            std::fs::create_dir_all(&dir).unwrap();
            for (name, src) in *files {
                std::fs::write(dir.join(name), src).unwrap();
            }
        }
        root
    }

    fn three_lib_tree(tag: &str) -> PathBuf {
        temp_tree(
            tag,
            &[
                (
                    "liba",
                    &[
                        ("lib.ml", "external f : int -> int = \"ml_f\"\n"),
                        ("glue.c", "value ml_f(value n) { return Val_int(Int_val(n)); }\n"),
                    ],
                ),
                (
                    "libb",
                    &[
                        ("lib.ml", "external g : int -> int = \"ml_g\"\n"),
                        ("glue.c", "value ml_g(value n) { return Val_int(n); }\n"),
                        ("notes.txt", "not source\n"),
                    ],
                ),
                (
                    "libc",
                    &[
                        ("lib.ml", "external h : string -> int = \"ml_h\"\n"),
                        ("glue.c", "value ml_h(value s) { return Val_int(0); }\n"),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn plan_discovers_sorted_libraries_and_skips_non_ffi_dirs() {
        let root = three_lib_tree("discover");
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(root.join("docs/README.md"), "no sources here\n").unwrap();

        let plan = plan(&root, 0).unwrap();
        let names: Vec<&str> = plan.libraries.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["liba", "libb", "libc"]);
        assert_eq!(plan.libraries[1].files.len(), 2, "notes.txt skipped");
        assert_eq!(plan.shards.len(), 3, "0 = one shard per library");
        // plan is deterministic
        let again = super::plan(&root, 0).unwrap();
        assert_eq!(plan.manifest_json(), again.manifest_json());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn partition_is_contiguous_balanced_and_clamped() {
        let root = three_lib_tree("partition");
        let p2 = plan(&root, 2).unwrap();
        let sizes: Vec<usize> = p2.shards.iter().map(|s| s.members.len()).collect();
        assert_eq!(sizes, [2, 1]);
        let flat: Vec<usize> = p2.shards.iter().flat_map(|s| s.members.clone()).collect();
        assert_eq!(flat, [0, 1, 2], "contiguous, every library exactly once");
        let p8 = plan(&root, 8).unwrap();
        assert_eq!(p8.shards.len(), 3, "clamped to the library count");
        // shard keys depend on membership
        assert_ne!(p2.shards[0].key, p8.shards[0].key);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_is_versioned_and_parseable() {
        let root = three_lib_tree("manifest");
        let plan = plan(&root, 2).unwrap();
        let doc = ffisafe_support::json::parse(&plan.manifest_json()).expect("valid JSON");
        use ffisafe_support::json::Json;
        assert_eq!(doc.get("manifest_schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("schedule").and_then(Json::as_str), Some("name"));
        assert_eq!(doc.get("libraries").and_then(Json::as_u64), Some(3));
        let shards = doc.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards.len(), 2);
        let lib0 = shards[0].get("libraries").and_then(Json::as_array).unwrap()[0].clone();
        assert_eq!(lib0.get("name").and_then(Json::as_str), Some("liba"));
        assert_eq!(
            lib0.get("fingerprint").and_then(Json::as_str).map(str::len),
            Some(32),
            "128-bit hex fingerprint"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_root_plans_zero_shards() {
        let root = temp_tree("empty", &[]);
        std::fs::create_dir_all(&root).unwrap();
        let plan = plan(&root, 4).unwrap();
        assert_eq!(plan.library_count(), 0);
        assert!(plan.shards.is_empty());
        assert!(ffisafe_support::json::parse(&plan.manifest_json()).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_root_is_a_typed_io_error() {
        let err = plan(Path::new("/definitely/not/here"), 1).unwrap_err();
        assert!(matches!(err, ApiError::Io { .. }), "{err:?}");
    }

    #[test]
    fn an_unloadable_library_is_a_planning_failure_not_an_abort() {
        let root = three_lib_tree("broken-lib");
        // a dangling symlink named like an FFI source: the walk finds it,
        // the load cannot read it
        std::fs::create_dir_all(root.join("libzz")).unwrap();
        std::os::unix::fs::symlink("/definitely/not/here.ml", root.join("libzz/broken.ml"))
            .unwrap();

        let plan = plan(&root, 2).unwrap();
        let names: Vec<&str> = plan.libraries.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["liba", "libb", "libc"], "healthy libraries still planned");
        assert_eq!(plan.failures.len(), 1);
        assert_eq!(plan.failures[0].library, "libzz");
        assert!(plan.failures[0].error.contains("cannot read"), "{:?}", plan.failures[0]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cost_schedule_isolates_the_heavy_library() {
        let root = three_lib_tree("lpt");
        let mut prior = HashMap::new();
        prior.insert("liba".to_string(), LibraryCost { cost_seconds: 0.1, ..Default::default() });
        prior.insert("libb".to_string(), LibraryCost { cost_seconds: 9.0, ..Default::default() });
        prior.insert("libc".to_string(), LibraryCost { cost_seconds: 0.2, ..Default::default() });

        let plan = plan_with(&root, 2, Schedule::Cost, &prior).unwrap();
        assert_eq!(plan.schedule, Schedule::Cost);
        // heaviest library (libb, index 1) packs alone; the cheap pair share
        let solo: Vec<_> = plan.shards.iter().filter(|s| s.members == [1]).collect();
        assert_eq!(solo.len(), 1, "libb isolated: {:?}", plan.shards);
        let pair = plan.shards.iter().find(|s| s.members.len() == 2).unwrap();
        assert_eq!(pair.members, [2, 0], "heaviest-first within the shard");
        // deterministic
        let again = plan_with(&root, 2, Schedule::Cost, &prior).unwrap();
        assert_eq!(plan.manifest_json(), again.manifest_json());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cost_schedule_without_history_falls_back_to_name_partition() {
        let root = three_lib_tree("lpt-nohist");
        let by_cost = plan_with(&root, 2, Schedule::Cost, &HashMap::new()).unwrap();
        let by_name = plan(&root, 2).unwrap();
        let cost_members: Vec<_> = by_cost.shards.iter().map(|s| s.members.clone()).collect();
        let name_members: Vec<_> = by_name.shards.iter().map(|s| s.members.clone()).collect();
        assert_eq!(cost_members, name_members);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_cost_defaults_to_the_average_of_known_costs() {
        let root = three_lib_tree("lpt-avg");
        // only libb has history; liba/libc get the average (9.0) and spread
        let mut prior = HashMap::new();
        prior.insert("libb".to_string(), LibraryCost { cost_seconds: 9.0, ..Default::default() });
        let plan = plan_with(&root, 3, Schedule::Cost, &prior).unwrap();
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.members.len()).collect();
        assert_eq!(sizes, [1, 1, 1], "equal costs spread one per shard");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn costs_round_trip_through_the_manifest() {
        let root = three_lib_tree("cost-roundtrip");
        let mut plan = plan(&root, 2).unwrap();
        let mut measured = HashMap::new();
        measured.insert(
            "libb".to_string(),
            LibraryCost {
                cost_seconds: 1.25,
                work_seconds: 1.25,
                seconds: 1.5,
                functions: 7,
                cache_fn_hits: 2,
                cache_fn_misses: 5,
                report_hit: false,
            },
        );
        plan.set_costs(&measured);
        let path = root.join("sweep-manifest.json");
        std::fs::write(&path, plan.manifest_json()).unwrap();

        let loaded = load_manifest_costs(&path);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["libb"], measured["libb"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn v1_manifests_and_garbage_load_as_empty_cost_maps() {
        let root = temp_tree("v1-compat", &[]);
        std::fs::create_dir_all(&root).unwrap();
        let v1 = root.join("v1.json");
        std::fs::write(
            &v1,
            r#"{"manifest_schema_version": 1, "shards": [{"shard": 0, "key": "00",
                "libraries": [{"name": "liba", "fingerprint": "00", "files": []}]}]}"#,
        )
        .unwrap();
        assert!(load_manifest_costs(&v1).is_empty(), "v1 rows carry no cost");
        let junk = root.join("junk.json");
        std::fs::write(&junk, "not json at all").unwrap();
        assert!(load_manifest_costs(&junk).is_empty());
        assert!(load_manifest_costs(&root.join("missing.json")).is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drop_sources_keeps_fingerprints_and_files() {
        let root = three_lib_tree("dropsrc");
        let mut plan = plan(&root, 1).unwrap();
        let fps: Vec<_> = plan.libraries.iter().map(|l| l.fingerprint).collect();
        let manifest = plan.manifest_json();
        plan.drop_sources();
        assert!(plan.libraries.iter().all(|l| l.corpus.is_none()));
        assert_eq!(fps, plan.libraries.iter().map(|l| l.fingerprint).collect::<Vec<_>>());
        assert_eq!(manifest, plan.manifest_json(), "manifest needs no loaded sources");
        let _ = std::fs::remove_dir_all(&root);
    }
}
