//! The map executor: runs a [`SweepPlan`]'s shards with bounded
//! parallelism and work stealing, in one of two modes.
//!
//! * **In-process** ([`MapMode::InProcess`]): one long-lived
//!   [`AnalysisService`] owns the shared cache store; shard workers submit
//!   each member library as an [`AnalysisRequest`] and normalize the
//!   structured [`ffisafe_core::AnalysisReport`] directly — no JSON
//!   round-trip.
//! * **Child-process** ([`MapMode::ChildProcess`]): each library is
//!   analyzed by a spawned `ffisafe --format json` over the same shared
//!   `--cache-dir`; the executor parses the versioned JSON from stdout.
//!   Exit codes 0 (clean) and 1 (errors found) are both successful
//!   analyses; anything else — or unparseable output — is a failed
//!   attempt.
//!
//! Either way, a shard whose libraries are unchanged since a previous
//! sweep is **warm**: every member short-circuits at the tier-2 report
//! cache (or replays tier-1 outcomes), so no inference worker runs and no
//! artifact is re-shipped — the shard is served straight from the shared
//! store. [`MapStats::shards_warm`] counts those.
//!
//! Failed attempts are retried per library ([`MapConfig::retries`] extra
//! attempts); a library that fails every attempt becomes a
//! [`SweepFailure`] in the reduced report rather than sinking the sweep.
//!
//! Scheduling is **work-stealing at library granularity**: each shard is
//! a deque of its member libraries, each worker drains its home shard
//! from the front, and an idle worker steals from the *back* of the
//! longest remaining queue — so under a cost-packed plan the victim keeps
//! its heavy head while cheap tail work migrates to the idle worker.
//! Stragglers rebalance dynamically, and because results land in
//! per-library slots the reduced output never depends on who ran what.

use crate::planner::SweepPlan;
use crate::reducer::{LibraryReport, SweepFailure};
use ffisafe_cache::{open_backend, CacheStats};
use ffisafe_core::pipeline::cache::analyzer_cache_version;
use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, ApiError, ServiceConfig};
use ffisafe_support::telemetry;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// How shards are mapped onto compute.
#[derive(Clone, Debug)]
pub enum MapMode {
    /// Run every shard inside this process via one shared
    /// [`AnalysisService`].
    InProcess,
    /// Spawn one `ffisafe --format json` child per library, all sharing
    /// the sweep's `--cache-dir`.
    ChildProcess {
        /// Path to the `ffisafe` binary to spawn.
        program: PathBuf,
    },
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct MapConfig {
    /// Map mode (in-process or child processes).
    pub mode: MapMode,
    /// Concurrent workers; `0` means the machine's available parallelism.
    pub jobs: usize,
    /// The shared two-tier cache store; `None` sweeps uncached.
    pub cache_dir: Option<PathBuf>,
    /// A remote cache daemon (`tcp://host:port`, see
    /// [`ffisafe_cache::remote`]) instead of a local directory. Mutually
    /// exclusive with `cache_dir`.
    pub cache_url: Option<String>,
    /// Semantic analysis options applied to every library.
    /// [`AnalysisOptions::jobs`] of `0` gets a fair share of the cores
    /// per in-flight shard.
    pub options: AnalysisOptions,
    /// Extra attempts per library after a failed one.
    pub retries: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            mode: MapMode::InProcess,
            jobs: 0,
            cache_dir: None,
            cache_url: None,
            options: AnalysisOptions::default(),
            retries: 2,
        }
    }
}

/// Execution accounting for one sweep — everything allowed to vary run to
/// run (and therefore kept out of the stable [`crate::SweepReport`]
/// document).
#[derive(Clone, Copy, Debug, Default)]
pub struct MapStats {
    /// Shards the executor processed.
    pub shards_executed: usize,
    /// Shards whose every library was served from the cache with zero
    /// inference workers.
    pub shards_warm: usize,
    /// Libraries that failed after every retry.
    pub libraries_failed: usize,
    /// Retry attempts consumed across all libraries.
    pub retries_used: usize,
    /// Inference workers that actually ran (0 on a fully warm sweep).
    pub workers_executed: usize,
    /// Tier-1 cache hits summed over libraries.
    pub cache_fn_hits: usize,
    /// Tier-1 cache misses summed over libraries.
    pub cache_fn_misses: usize,
    /// Libraries served whole from the tier-2 report cache.
    pub report_hits: usize,
    /// C functions analyzed (summed).
    pub functions: usize,
    /// Fixpoint passes (summed).
    pub passes: usize,
    /// C lines analyzed (summed).
    pub c_loc: usize,
    /// OCaml lines analyzed (summed).
    pub ml_loc: usize,
    /// Rust lines analyzed (summed).
    pub rust_loc: usize,
    /// Summed per-function inference work in seconds (≈0 when warm).
    pub work_seconds: f64,
    /// The schedule's critical path: the largest per-worker sum of
    /// library `work_seconds`. This is what the map phase's wall clock
    /// converges to on an unloaded many-core host, so it exposes
    /// scheduling quality (one straggler worker = long critical path)
    /// even when the measuring host is itself short on cores.
    pub critical_path_seconds: f64,
    /// Wall-clock seconds for the whole map phase.
    pub wall_seconds: f64,
}

/// What the map phase hands the reducer.
#[derive(Debug)]
pub struct MapOutput {
    /// Per-library outcomes, in plan order.
    pub results: Vec<Result<LibraryReport, SweepFailure>>,
    /// Execution accounting.
    pub stats: MapStats,
    /// Occupancy of the shared store after the map phase (`None` when
    /// uncached).
    pub cache_store: Option<CacheStats>,
}

/// One shard's warmth bookkeeping under work stealing: members may
/// complete on any worker, so warmth is settled when the last one lands.
struct ShardTrack {
    remaining: usize,
    warm: bool,
}

/// Runs every shard of `plan` under `config`.
///
/// Each shard's members form a deque; `jobs` workers drain their home
/// shard front-first and steal from the back of the longest remaining
/// queue once it is empty (each library's own inference-stage parallelism
/// is governed by [`AnalysisOptions::jobs`]). Results land in per-library
/// slots, so *which worker finishes first never changes the output* — the
/// reducer sees plan order regardless of arrival order.
pub fn execute(plan: &SweepPlan, config: &MapConfig) -> Result<MapOutput, ApiError> {
    let _span = telemetry::span_with("sweep.map", || {
        vec![
            ("shards", plan.shards.len().to_string()),
            ("libraries", plan.libraries.len().to_string()),
        ]
    });
    let start = Instant::now();
    let location = ServiceConfig {
        cache_dir: config.cache_dir.clone(),
        cache_url: config.cache_url.clone(),
        batch_jobs: 0,
    }
    .cache_location()?;
    // Open the backend up front in both modes: the service needs it, and
    // in child mode this validates the directory or daemon once instead
    // of letting every child fail on it.
    let service = match &config.mode {
        MapMode::InProcess => Some(AnalysisService::with_config(ServiceConfig {
            cache_dir: config.cache_dir.clone(),
            cache_url: config.cache_url.clone(),
            batch_jobs: 0,
        })?),
        MapMode::ChildProcess { .. } => {
            if let Some(location) = &location {
                // Opening a local store also persists the index, so
                // children racing on a fresh store can never mistake each
                // other's entries for an interrupted unversioned store.
                open_backend(location, &analyzer_cache_version()).map_err(|e| ApiError::Cache {
                    dir: location.to_string(),
                    message: e.to_string(),
                })?;
            }
            None
        }
    };

    let n_shards = plan.shards.len();
    let n_libraries = plan.libraries.len();
    let width = effective_jobs(config.jobs).clamp(1, n_libraries.max(1));
    let cores = available_cores();
    let infer_jobs =
        if config.options.jobs == 0 { (cores / width).max(1) } else { config.options.jobs };

    // Which shard owns each library — warmth accounting must survive the
    // library completing on a thief instead of its home worker.
    let mut lib_shard = vec![0usize; n_libraries];
    for shard in &plan.shards {
        for &member in &shard.members {
            lib_shard[member] = shard.index;
        }
    }

    let queues: Vec<Mutex<VecDeque<usize>>> =
        plan.shards.iter().map(|s| Mutex::new(s.members.iter().copied().collect())).collect();
    // A shard is warm when the shared store served every member without
    // running an inference worker; uncached sweeps are never warm.
    let cached = location.is_some();
    let tracks: Vec<Mutex<ShardTrack>> = plan
        .shards
        .iter()
        .map(|s| {
            Mutex::new(ShardTrack {
                remaining: s.members.len(),
                warm: cached && !s.members.is_empty(),
            })
        })
        .collect();

    let slots: Vec<Mutex<Option<Result<LibraryReport, SweepFailure>>>> =
        (0..n_libraries).map(|_| Mutex::new(None)).collect();
    let retries_used = AtomicUsize::new(0);
    let shards_warm = AtomicUsize::new(0);
    let worker_paths: Vec<Mutex<f64>> = (0..width).map(|_| Mutex::new(0.0)).collect();

    if n_shards > 0 {
        std::thread::scope(|scope| {
            for worker in 0..width {
                let queues = &queues;
                let tracks = &tracks;
                let lib_shard = &lib_shard;
                let slots = &slots;
                let retries_used = &retries_used;
                let shards_warm = &shards_warm;
                let worker_paths = &worker_paths;
                let service = service.as_ref();
                scope.spawn(move || {
                    let home = worker % n_shards;
                    let mut path = 0.0f64;
                    while let Some(member) = next_library(queues, home) {
                        let library = &plan.libraries[member];
                        let mut last_err = String::new();
                        let mut outcome = None;
                        let stolen = lib_shard[member] != home;
                        for attempt in 0..=config.retries {
                            if attempt > 0 {
                                retries_used.fetch_add(1, Ordering::Relaxed);
                            }
                            // One span per library *attempt*: retries and
                            // steals are visible in the trace.
                            let _span = telemetry::span_with("sweep.library", || {
                                vec![
                                    ("library", library.name.clone()),
                                    ("attempt", attempt.to_string()),
                                    ("stolen", stolen.to_string()),
                                ]
                            });
                            match run_library(plan, member, service, config, infer_jobs) {
                                Ok(report) => {
                                    outcome = Some(report);
                                    break;
                                }
                                Err(e) => last_err = e,
                            }
                        }
                        let (result, served_from_cache) = match outcome {
                            Some(report) => {
                                // Warmth means the *cache* did the serving:
                                // a tier-2 report hit, or every function
                                // replayed from tier 1. `workers_executed ==
                                // 0` alone is not enough — a library with no
                                // C functions runs zero workers even cold.
                                let served = report.exec.report_hit
                                    || (report.exec.workers_executed == 0
                                        && report.exec.cache_fn_hits > 0);
                                path += report.exec.work_seconds;
                                (Ok(report), served)
                            }
                            None => (
                                Err(SweepFailure {
                                    library: library.name.clone(),
                                    error: last_err,
                                }),
                                false,
                            ),
                        };
                        *slots[member].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(result);
                        let mut track = tracks[lib_shard[member]]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if !served_from_cache {
                            track.warm = false;
                        }
                        track.remaining -= 1;
                        if track.remaining == 0 && track.warm {
                            shards_warm.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    *worker_paths[worker].lock().unwrap_or_else(PoisonError::into_inner) = path;
                    // Scoped joins don't wait for thread-local teardown, so
                    // the spans must be handed off before the closure ends.
                    telemetry::flush_thread();
                });
            }
        });
    }

    let results: Vec<Result<LibraryReport, SweepFailure>> = slots
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every planned library completed")
        })
        .collect();

    let mut stats = MapStats {
        shards_executed: n_shards,
        shards_warm: shards_warm.into_inner(),
        retries_used: retries_used.into_inner(),
        critical_path_seconds: worker_paths
            .into_iter()
            .map(|cell| cell.into_inner().unwrap_or_else(PoisonError::into_inner))
            .fold(0.0, f64::max),
        wall_seconds: start.elapsed().as_secs_f64(),
        ..MapStats::default()
    };
    for result in &results {
        match result {
            Ok(report) => {
                let e = &report.exec;
                stats.workers_executed += e.workers_executed;
                stats.cache_fn_hits += e.cache_fn_hits;
                stats.cache_fn_misses += e.cache_fn_misses;
                stats.report_hits += usize::from(e.report_hit);
                stats.functions += e.functions;
                stats.passes += e.passes;
                stats.c_loc += e.c_loc;
                stats.ml_loc += e.ml_loc;
                stats.rust_loc += e.rust_loc;
                stats.work_seconds += e.work_seconds;
            }
            Err(_) => stats.libraries_failed += 1,
        }
    }

    // Occupancy after the map phase. In-process the live backend is
    // authoritative; in child mode a fresh open reconciles whatever index
    // interleaving the children left behind (valid orphans are adopted),
    // so the numbers are content-determined, not schedule-determined.
    let cache_store = match (&service, &location) {
        (Some(service), _) => service.cache_stats(),
        (None, Some(location)) => {
            open_backend(location, &analyzer_cache_version()).ok().map(|store| {
                store.adopt_orphans();
                let _ = store.flush();
                store.stats()
            })
        }
        (None, None) => None,
    };

    Ok(MapOutput { results, stats, cache_store })
}

/// Pops the next library for a worker homed on shard `home`: own queue
/// front first, then steal from the back of the longest remaining queue.
/// `None` means every queue is empty — and stays empty, since libraries
/// are only ever removed.
fn next_library(queues: &[Mutex<VecDeque<usize>>], home: usize) -> Option<usize> {
    if let Some(member) = queues[home].lock().unwrap_or_else(PoisonError::into_inner).pop_front() {
        return Some(member);
    }
    loop {
        let mut victim: Option<(usize, usize)> = None; // (len, index)
        for (index, queue) in queues.iter().enumerate() {
            let len = queue.lock().unwrap_or_else(PoisonError::into_inner).len();
            if len > 0 && victim.is_none_or(|(best, _)| len > best) {
                victim = Some((len, index));
            }
        }
        let (_, index) = victim?;
        // Between the scan and this lock another thief may have drained
        // the victim; rescan rather than give up.
        if let Some(member) =
            queues[index].lock().unwrap_or_else(PoisonError::into_inner).pop_back()
        {
            return Some(member);
        }
    }
}

fn run_library(
    plan: &SweepPlan,
    member: usize,
    service: Option<&AnalysisService>,
    config: &MapConfig,
    infer_jobs: usize,
) -> Result<LibraryReport, String> {
    let library = &plan.libraries[member];
    match (service, &config.mode) {
        (Some(service), _) => {
            let Some(corpus) = &library.corpus else {
                return Err("library sources were dropped from the plan".to_string());
            };
            let mut options = config.options;
            options.jobs = infer_jobs;
            let request = AnalysisRequest::new(corpus.clone()).options(options);
            let report = service.analyze(&request).map_err(|e| e.to_string())?;
            Ok(LibraryReport::from_report(library.name.clone(), library.files.len(), &report))
        }
        (None, MapMode::ChildProcess { program }) => {
            let mut cmd = std::process::Command::new(program);
            for file in &library.files {
                cmd.arg(file);
            }
            cmd.args(["--format", "json", "--jobs", &infer_jobs.to_string()]);
            if !config.options.flow_sensitive {
                cmd.arg("--no-flow");
            }
            if !config.options.gc_effects {
                cmd.arg("--no-gc");
            }
            if let Some(dir) = &config.cache_dir {
                cmd.arg("--cache-dir").arg(dir);
            }
            if let Some(url) = &config.cache_url {
                cmd.arg("--cache-url").arg(url);
            }
            let output = cmd.output().map_err(|e| format!("cannot spawn {program:?}: {e}"))?;
            let code = output.status.code();
            if !matches!(code, Some(0 | 1)) {
                let stderr = String::from_utf8_lossy(&output.stderr);
                return Err(format!(
                    "child exited with {code:?}: {}",
                    stderr.lines().next().unwrap_or("(no stderr)")
                ));
            }
            let stdout = String::from_utf8_lossy(&output.stdout);
            LibraryReport::from_json(library.name.clone(), library.files.len(), &stdout)
        }
        (None, MapMode::InProcess) => unreachable!("in-process mode always has a service"),
    }
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        available_cores()
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use std::path::Path;

    fn tree(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ffisafe-executor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (lib, ext, c_body) in [
            ("aa", "f", "return Val_int(Int_val(n));"),
            ("bb", "g", "return Val_int(n);"), // type error
            ("cc", "h", "return Val_int(Int_val(n) + 1);"),
        ] {
            let dir = root.join(lib);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(
                dir.join("lib.ml"),
                format!("external {ext} : int -> int = \"ml_{ext}\"\n"),
            )
            .unwrap();
            std::fs::write(dir.join("glue.c"), format!("value ml_{ext}(value n) {{ {c_body} }}\n"))
                .unwrap();
        }
        root
    }

    #[test]
    fn in_process_map_fills_every_slot_in_plan_order() {
        let root = tree("slots");
        let plan = planner::plan(&root, 2).unwrap();
        let out = execute(&plan, &MapConfig::default()).unwrap();
        assert_eq!(out.results.len(), 3);
        let names: Vec<&str> =
            out.results.iter().map(|r| r.as_ref().unwrap().library.as_str()).collect();
        assert_eq!(names, ["aa", "bb", "cc"], "slot order == plan order");
        assert_eq!(out.results[1].as_ref().unwrap().summary.errors, 1, "bb is buggy");
        assert_eq!(out.stats.shards_executed, 2);
        assert_eq!(out.stats.shards_warm, 0, "uncached runs are never warm");
        assert_eq!(out.stats.libraries_failed, 0);
        assert!(out.stats.functions >= 3);
        assert!(out.cache_store.is_none(), "no cache dir, no occupancy");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_functionless_library_does_not_fake_shard_warmth() {
        let root = tree("mlonly");
        // an .ml-only library runs zero workers even on a cold run
        let dir = root.join("zz-mlonly");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("lib.ml"), "external z : int -> int = \"ml_z\"\n").unwrap();
        let plan = planner::plan(&root, 1).unwrap();
        let config = MapConfig { cache_dir: Some(root.join(".cache")), ..MapConfig::default() };
        let cold = execute(&plan, &config).unwrap();
        assert_eq!(cold.stats.shards_warm, 0, "cold runs are never warm");
        let warm = execute(&plan, &config).unwrap();
        assert_eq!(warm.stats.shards_warm, 1, "tier-2 hits make the shard warm");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_shards_are_counted_and_run_zero_workers() {
        let root = tree("warm");
        let cache = root.join(".cache");
        let plan = planner::plan(&root, 2).unwrap();
        let config = MapConfig { cache_dir: Some(cache), ..MapConfig::default() };
        let cold = execute(&plan, &config).unwrap();
        assert_eq!(cold.stats.shards_warm, 0);
        assert!(cold.stats.workers_executed >= 3);
        let occupancy = cold.cache_store.expect("cached sweep reports occupancy");
        assert!(occupancy.entries > 0);

        let warm = execute(&plan, &config).unwrap();
        assert_eq!(warm.stats.shards_warm, 2, "every shard warm on an unchanged tree");
        assert_eq!(warm.stats.workers_executed, 0, "warm sweep runs zero workers");
        assert_eq!(warm.stats.report_hits, 3);
        let warm_occ = warm.cache_store.unwrap();
        assert_eq!(warm_occ.entries, occupancy.entries, "occupancy is content-determined");
        assert_eq!(warm_occ.live_bytes, occupancy.live_bytes);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn child_mode_spawn_failures_become_sweep_failures_after_retries() {
        let root = tree("spawnfail");
        let plan = planner::plan(&root, 1).unwrap();
        let config = MapConfig {
            mode: MapMode::ChildProcess { program: Path::new("/definitely/not/ffisafe").into() },
            retries: 1,
            cache_dir: Some(root.join(".cache")),
            ..MapConfig::default()
        };
        let out = execute(&plan, &config).unwrap();
        assert!(
            root.join(".cache/index.bin").exists(),
            "the up-front open must persist the index before children race on the store"
        );
        assert_eq!(out.stats.libraries_failed, 3);
        assert_eq!(out.stats.retries_used, 3, "one retry per library");
        for result in &out.results {
            let failure = result.as_ref().unwrap_err();
            assert!(failure.error.contains("cannot spawn"), "{failure:?}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unopenable_cache_dir_is_a_typed_error_in_both_modes() {
        let root = tree("badcache");
        let plan = planner::plan(&root, 1).unwrap();
        for mode in
            [MapMode::InProcess, MapMode::ChildProcess { program: Path::new("/bin/false").into() }]
        {
            let config = MapConfig {
                mode,
                cache_dir: Some(Path::new("/proc/definitely-unwritable/x").into()),
                ..MapConfig::default()
            };
            let err = execute(&plan, &config).unwrap_err();
            assert!(matches!(err, ApiError::Cache { .. }), "{err:?}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
