//! `ffisafe-shard`: map/reduce sharded sweeps over multi-library FFI
//! corpora.
//!
//! The PLDI'05 tool checks one OCaml/C program; ecosystem studies
//! (McCormack et al.'s sweep over thousands of FFI-using Rust libraries
//! is the model) need the same check run **continuously over a whole
//! directory tree of libraries**. This crate supplies that subsystem in
//! three layers:
//!
//! 1. **Planner** ([`planner`]) — walks a corpus root (one subdirectory
//!    per library), loads and content-fingerprints every library, splits
//!    them into deterministic [`ShardPlan`]s and writes the versioned
//!    `sweep-manifest.json`.
//! 2. **Map executor** ([`executor`]) — runs shards with bounded
//!    parallelism, either in-process through one shared
//!    [`ffisafe_core::AnalysisService`] or as child `ffisafe --format
//!    json` processes, all over one shared `--cache-dir`. Unchanged
//!    (warm) shards are served straight from the tier-1/tier-2 cache
//!    entries — zero inference workers run. Failed libraries are retried,
//!    then reported as failures instead of sinking the sweep.
//! 3. **Reducer** ([`reducer`]) — merges per-shard results into one
//!    [`SweepReport`] whose rendered and JSON forms are **byte-identical**
//!    for any shard partitioning, shard arrival order, worker count or
//!    map mode — and for a warm re-sweep of an unchanged tree.
//!
//! [`sweep`] composes the three; the `ffisafe sweep` CLI subcommand is a
//! thin wrapper around it.
//!
//! # Examples
//!
//! ```
//! use ffisafe_shard::{sweep, SweepConfig};
//!
//! let root = std::env::temp_dir().join(format!("ffisafe-doc-sweep-{}", std::process::id()));
//! std::fs::create_dir_all(root.join("mylib")).unwrap();
//! std::fs::write(root.join("mylib/lib.ml"), "external f : int -> int = \"ml_f\"\n").unwrap();
//! std::fs::write(
//!     root.join("mylib/glue.c"),
//!     "value ml_f(value n) { return Val_int(Int_val(n)); }\n",
//! )
//! .unwrap();
//!
//! let output = sweep(&root, &SweepConfig::default()).unwrap();
//! assert_eq!(output.report.libraries.len(), 1);
//! assert_eq!(output.report.error_count(), 0, "{}", output.report.render());
//! std::fs::remove_dir_all(&root).ok();
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod planner;
pub mod reducer;

pub use executor::{MapConfig, MapMode, MapOutput, MapStats};
pub use planner::{LibraryPlan, ShardPlan, SweepPlan, MANIFEST_SCHEMA_VERSION};
pub use reducer::{
    DiagNote, DiagRow, LibraryExec, LibraryReport, SweepFailure, SweepReport, SWEEP_SCHEMA_VERSION,
};

use ffisafe_core::{AnalysisOptions, ApiError};
use std::path::{Path, PathBuf};

/// Configuration for one whole sweep (plan → map → reduce).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Shard count; `0` means one shard per library.
    pub shards: usize,
    /// Concurrent shards; `0` means the machine's available parallelism.
    pub jobs: usize,
    /// Shared two-tier cache store; `None` sweeps uncached.
    pub cache_dir: Option<PathBuf>,
    /// In-process or child-process mapping.
    pub mode: MapMode,
    /// Semantic analysis options applied to every library.
    pub options: AnalysisOptions,
    /// Extra attempts per library after a failure.
    pub retries: usize,
    /// Where to write `sweep-manifest.json`. `None` writes it into the
    /// cache directory when one is configured, and skips it otherwise.
    pub manifest_path: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shards: 0,
            jobs: 0,
            cache_dir: None,
            mode: MapMode::InProcess,
            options: AnalysisOptions::default(),
            retries: 2,
            manifest_path: None,
        }
    }
}

/// The result of one sweep.
#[derive(Debug)]
pub struct SweepOutput {
    /// The deterministic reduced report.
    pub report: SweepReport,
    /// Execution accounting (varies run to run; kept out of the report).
    pub stats: MapStats,
    /// Shards planned.
    pub shard_count: usize,
    /// Libraries planned.
    pub library_count: usize,
}

/// Plans, maps and reduces one sweep over the corpus rooted at `root`.
///
/// Fails only on whole-sweep setup problems (unreadable root, unopenable
/// cache directory, unwritable manifest); per-library problems — an
/// unloadable subtree at plan time, analysis failures after every retry —
/// are *reported* in [`SweepReport::failures`] so one broken library
/// cannot sink a thousand-library sweep.
pub fn sweep(root: &Path, config: &SweepConfig) -> Result<SweepOutput, ApiError> {
    let mut plan = planner::plan(root, config.shards)?;

    let manifest_path = config
        .manifest_path
        .clone()
        .or_else(|| config.cache_dir.as_ref().map(|dir| dir.join("sweep-manifest.json")));
    if let Some(path) = manifest_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| ApiError::Io {
                path: parent.display().to_string(),
                message: e.to_string(),
            })?;
        }
        std::fs::write(&path, plan.manifest_json()).map_err(|e| ApiError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
    }

    if matches!(config.mode, MapMode::ChildProcess { .. }) {
        // Children re-read sources from disk; keeping the whole corpus
        // text resident would scale memory with the ecosystem size.
        plan.drop_sources();
    }

    let map_config = MapConfig {
        mode: config.mode.clone(),
        jobs: config.jobs,
        cache_dir: config.cache_dir.clone(),
        options: config.options,
        retries: config.retries,
    };
    let output = executor::execute(&plan, &map_config)?;

    let mut libraries = Vec::new();
    let mut failures = plan.failures;
    for result in output.results {
        match result {
            Ok(report) => libraries.push(report),
            Err(failure) => failures.push(failure),
        }
    }
    Ok(SweepOutput {
        report: SweepReport::reduce(libraries, failures, output.cache_store),
        stats: output.stats,
        shard_count: plan.shards.len(),
        library_count: plan.libraries.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(tag: &str, libs: usize) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ffisafe-sweep-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for i in 0..libs {
            let dir = root.join(format!("lib{i:02}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(
                dir.join("lib.ml"),
                format!("external f{i} : int -> int = \"ml_f{i}\"\n"),
            )
            .unwrap();
            // odd libraries carry a Val_int confusion (one error each)
            let body = if i % 2 == 1 {
                format!("value ml_f{i}(value n) {{ return Val_int(n); }}\n")
            } else {
                format!("value ml_f{i}(value n) {{ return Val_int(Int_val(n)); }}\n")
            };
            std::fs::write(dir.join("glue.c"), body).unwrap();
        }
        root
    }

    #[test]
    fn sweep_reduces_identically_across_shard_counts_and_jobs() {
        let root = tree("shardcounts", 5);
        let baseline =
            sweep(&root, &SweepConfig { shards: 1, jobs: 1, ..SweepConfig::default() }).unwrap();
        assert_eq!(baseline.library_count, 5);
        assert_eq!(baseline.report.error_count(), 2, "{}", baseline.report.render());
        for (shards, jobs) in [(2, 1), (2, 4), (8, 3), (0, 2)] {
            let other =
                sweep(&root, &SweepConfig { shards, jobs, ..SweepConfig::default() }).unwrap();
            assert_eq!(
                baseline.report.to_json(),
                other.report.to_json(),
                "shards={shards} jobs={jobs}"
            );
            assert_eq!(baseline.report.render(), other.report.render());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_lands_in_the_cache_dir_by_default() {
        let root = tree("manifest", 2);
        let cache = root.join(".cache");
        let config = SweepConfig { cache_dir: Some(cache.clone()), ..SweepConfig::default() };
        let output = sweep(&root, &config).unwrap();
        assert_eq!(output.library_count, 2);
        let manifest = std::fs::read_to_string(cache.join("sweep-manifest.json")).unwrap();
        assert!(manifest.contains("\"manifest_schema_version\": 1"));
        assert!(output.report.cache_store.is_some());
        let _ = std::fs::remove_dir_all(&root);
    }
}
