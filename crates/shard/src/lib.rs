//! `ffisafe-shard`: map/reduce sharded sweeps over multi-library FFI
//! corpora.
//!
//! The PLDI'05 tool checks one OCaml/C program; ecosystem studies
//! (McCormack et al.'s sweep over thousands of FFI-using Rust libraries
//! is the model) need the same check run **continuously over a whole
//! directory tree of libraries**. This crate supplies that subsystem in
//! three layers:
//!
//! 1. **Planner** ([`planner`]) — walks a corpus root (one subdirectory
//!    per library), loads and content-fingerprints every library, splits
//!    them into deterministic [`ShardPlan`]s and writes the versioned
//!    `sweep-manifest.json`.
//! 2. **Map executor** ([`executor`]) — runs shards with bounded
//!    parallelism, either in-process through one shared
//!    [`ffisafe_core::AnalysisService`] or as child `ffisafe --format
//!    json` processes, all over one shared `--cache-dir`. Unchanged
//!    (warm) shards are served straight from the tier-1/tier-2 cache
//!    entries — zero inference workers run. Failed libraries are retried,
//!    then reported as failures instead of sinking the sweep.
//! 3. **Reducer** ([`reducer`]) — merges per-shard results into one
//!    [`SweepReport`] whose rendered and JSON forms are **byte-identical**
//!    for any shard partitioning, shard arrival order, worker count or
//!    map mode — and for a warm re-sweep of an unchanged tree.
//!
//! [`sweep`] composes the three; the `ffisafe sweep` CLI subcommand is a
//! thin wrapper around it.
//!
//! # Examples
//!
//! ```
//! use ffisafe_shard::{sweep, SweepConfig};
//!
//! let root = std::env::temp_dir().join(format!("ffisafe-doc-sweep-{}", std::process::id()));
//! std::fs::create_dir_all(root.join("mylib")).unwrap();
//! std::fs::write(root.join("mylib/lib.ml"), "external f : int -> int = \"ml_f\"\n").unwrap();
//! std::fs::write(
//!     root.join("mylib/glue.c"),
//!     "value ml_f(value n) { return Val_int(Int_val(n)); }\n",
//! )
//! .unwrap();
//!
//! let output = sweep(&root, &SweepConfig::default()).unwrap();
//! assert_eq!(output.report.libraries.len(), 1);
//! assert_eq!(output.report.error_count(), 0, "{}", output.report.render());
//! std::fs::remove_dir_all(&root).ok();
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod planner;
pub mod reducer;

pub use executor::{MapConfig, MapMode, MapOutput, MapStats};
pub use planner::{
    load_manifest_costs, LibraryCost, LibraryPlan, Schedule, ShardPlan, SweepPlan,
    MANIFEST_SCHEMA_VERSION,
};
pub use reducer::{
    DiagNote, DiagRow, LibraryExec, LibraryReport, SweepFailure, SweepReport, SWEEP_SCHEMA_VERSION,
};

use ffisafe_core::{AnalysisOptions, ApiError};
use ffisafe_support::telemetry::{self, MetricsRegistry};
use std::path::{Path, PathBuf};

/// Configuration for one whole sweep (plan → map → reduce).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Shard count; `0` means one shard per library.
    pub shards: usize,
    /// Concurrent workers; `0` means the machine's available parallelism.
    pub jobs: usize,
    /// Shared two-tier cache store; `None` sweeps uncached.
    pub cache_dir: Option<PathBuf>,
    /// A remote cache daemon (`tcp://host:port`) instead of a local
    /// directory. Mutually exclusive with `cache_dir`.
    pub cache_url: Option<String>,
    /// How libraries pack into shards: contiguous name chunks, or LPT
    /// packing from the previous manifest's cost rows.
    pub schedule: Schedule,
    /// In-process or child-process mapping.
    pub mode: MapMode,
    /// Semantic analysis options applied to every library.
    pub options: AnalysisOptions,
    /// Extra attempts per library after a failure.
    pub retries: usize,
    /// Where to write `sweep-manifest.json`. `None` writes it into the
    /// cache directory when one is configured, and skips it otherwise.
    pub manifest_path: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shards: 0,
            jobs: 0,
            cache_dir: None,
            cache_url: None,
            schedule: Schedule::Name,
            mode: MapMode::InProcess,
            options: AnalysisOptions::default(),
            retries: 2,
            manifest_path: None,
        }
    }
}

/// The result of one sweep.
#[derive(Debug)]
pub struct SweepOutput {
    /// The deterministic reduced report.
    pub report: SweepReport,
    /// Execution accounting (varies run to run; kept out of the report).
    pub stats: MapStats,
    /// Shards planned.
    pub shard_count: usize,
    /// Libraries planned.
    pub library_count: usize,
}

impl SweepOutput {
    /// Feeds the sweep's execution stats, diagnostic totals, and shared
    /// cache occupancy into a [`MetricsRegistry`] — the single source the
    /// CLI's `--timings` renderer and the Prometheus `--metrics-out`
    /// export both draw from.
    pub fn feed_metrics(&self, reg: &mut MetricsRegistry) {
        let s = &self.stats;
        reg.set_gauge("ffisafe_sweep_shards", "Shards planned", &[], self.shard_count as f64);
        reg.set_gauge(
            "ffisafe_sweep_libraries",
            "Libraries planned",
            &[],
            self.library_count as f64,
        );
        reg.inc_counter(
            "ffisafe_sweep_shards_warm_total",
            "Shards served entirely from the shared cache",
            &[],
            s.shards_warm as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_libraries_failed_total",
            "Libraries that failed after every retry",
            &[],
            s.libraries_failed as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_retries_total",
            "Extra library attempts after a failure",
            &[],
            s.retries_used as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_workers_executed_total",
            "Functions analyzed by a live inference worker across the sweep",
            &[],
            s.workers_executed as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_cache_fn_hits_total",
            "Tier-1 function replays across the sweep",
            &[],
            s.cache_fn_hits as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_cache_fn_misses_total",
            "Tier-1 function misses across the sweep",
            &[],
            s.cache_fn_misses as u64,
        );
        reg.inc_counter(
            "ffisafe_sweep_report_hits_total",
            "Libraries served whole from the tier-2 report cache",
            &[],
            s.report_hits as u64,
        );
        reg.set_gauge(
            "ffisafe_sweep_functions",
            "C function definitions analyzed across the sweep",
            &[],
            s.functions as f64,
        );
        reg.inc_counter(
            "ffisafe_sweep_passes_total",
            "Fixpoint passes across the sweep",
            &[],
            s.passes as u64,
        );
        reg.set_gauge("ffisafe_sweep_ml_loc", "Lines of OCaml swept", &[], s.ml_loc as f64);
        reg.set_gauge("ffisafe_sweep_c_loc", "Lines of C swept", &[], s.c_loc as f64);
        reg.set_gauge("ffisafe_sweep_rust_loc", "Lines of Rust swept", &[], s.rust_loc as f64);
        reg.set_gauge(
            "ffisafe_sweep_wall_seconds",
            "Wall-clock seconds for the whole sweep",
            &[],
            s.wall_seconds,
        );
        reg.set_gauge(
            "ffisafe_sweep_work_seconds",
            "Total inference work across the sweep",
            &[],
            s.work_seconds,
        );
        reg.set_gauge(
            "ffisafe_sweep_critical_path_seconds",
            "Largest per-worker work sum (live critical path)",
            &[],
            s.critical_path_seconds,
        );
        reg.observe(
            "ffisafe_sweep_duration_seconds",
            "Distribution of whole-sweep wall-clock seconds",
            &[],
            telemetry::LATENCY_BUCKETS,
            s.wall_seconds,
        );
        let summary = self.report.summary();
        for (severity, count) in [
            ("error", summary.errors),
            ("warning", summary.warnings),
            ("imprecision", summary.imprecision),
            ("note", summary.notes),
        ] {
            reg.inc_counter(
                "ffisafe_diagnostics_total",
                "Findings by severity",
                &[("severity", severity)],
                count as u64,
            );
        }
        if let Some(cache_store) = &self.report.cache_store {
            cache_store.feed_metrics(reg);
        }
    }
}

/// Plans, maps and reduces one sweep over the corpus rooted at `root`.
///
/// Fails only on whole-sweep setup problems (unreadable root, unopenable
/// cache backend, unwritable manifest); per-library problems — an
/// unloadable subtree at plan time, analysis failures after every retry —
/// are *reported* in [`SweepReport::failures`] so one broken library
/// cannot sink a thousand-library sweep.
///
/// When a previous run left a `sweep-manifest.json` at the manifest path,
/// its per-library cost rows feed this run's [`Schedule::Cost`] packing;
/// after the map phase the manifest is rewritten with freshly measured
/// costs (libraries served warm keep their historical cold cost — a warm
/// run's ~0 measurement says nothing about the next cold run).
pub fn sweep(root: &Path, config: &SweepConfig) -> Result<SweepOutput, ApiError> {
    let manifest_path = config
        .manifest_path
        .clone()
        .or_else(|| config.cache_dir.as_ref().map(|dir| dir.join("sweep-manifest.json")));
    let prior = match &manifest_path {
        Some(path) => planner::load_manifest_costs(path),
        None => std::collections::HashMap::new(),
    };
    let mut plan = planner::plan_with(root, config.shards, config.schedule, &prior)?;

    let write_manifest = |plan: &SweepPlan| -> Result<(), ApiError> {
        let Some(path) = &manifest_path else { return Ok(()) };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| ApiError::Io {
                path: parent.display().to_string(),
                message: e.to_string(),
            })?;
        }
        std::fs::write(path, plan.manifest_json())
            .map_err(|e| ApiError::Io { path: path.display().to_string(), message: e.to_string() })
    };
    write_manifest(&plan)?;

    if matches!(config.mode, MapMode::ChildProcess { .. }) {
        // Children re-read sources from disk; keeping the whole corpus
        // text resident would scale memory with the ecosystem size.
        plan.drop_sources();
    }

    let map_config = MapConfig {
        mode: config.mode.clone(),
        jobs: config.jobs,
        cache_dir: config.cache_dir.clone(),
        cache_url: config.cache_url.clone(),
        options: config.options,
        retries: config.retries,
    };
    let output = executor::execute(&plan, &map_config)?;

    let mut libraries = Vec::new();
    let mut failures = plan.failures.clone();
    let mut measured = std::collections::HashMap::new();
    for result in output.results {
        match result {
            Ok(report) => {
                let e = &report.exec;
                let cost_seconds = if e.workers_executed > 0 {
                    e.work_seconds
                } else {
                    // Served warm (or functionless): carry the historical
                    // cold cost forward instead of recording ~0.
                    prior.get(&report.library).map(|c| c.cost_seconds).unwrap_or(e.work_seconds)
                };
                measured.insert(
                    report.library.clone(),
                    LibraryCost {
                        cost_seconds,
                        work_seconds: e.work_seconds,
                        seconds: e.seconds,
                        functions: e.functions,
                        cache_fn_hits: e.cache_fn_hits,
                        cache_fn_misses: e.cache_fn_misses,
                        report_hit: e.report_hit,
                    },
                );
                libraries.push(report);
            }
            Err(failure) => failures.push(failure),
        }
    }
    // Rewrite the manifest with this run's cost rows so the *next* run
    // can cost-pack. Best effort only from here: the sweep already
    // succeeded, a read-only manifest location must not fail it.
    plan.set_costs(&measured);
    let _ = write_manifest(&plan);

    Ok(SweepOutput {
        report: SweepReport::reduce(libraries, failures, output.cache_store),
        stats: output.stats,
        shard_count: plan.shards.len(),
        library_count: plan.libraries.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(tag: &str, libs: usize) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ffisafe-sweep-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for i in 0..libs {
            let dir = root.join(format!("lib{i:02}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(
                dir.join("lib.ml"),
                format!("external f{i} : int -> int = \"ml_f{i}\"\n"),
            )
            .unwrap();
            // odd libraries carry a Val_int confusion (one error each)
            let body = if i % 2 == 1 {
                format!("value ml_f{i}(value n) {{ return Val_int(n); }}\n")
            } else {
                format!("value ml_f{i}(value n) {{ return Val_int(Int_val(n)); }}\n")
            };
            std::fs::write(dir.join("glue.c"), body).unwrap();
        }
        root
    }

    #[test]
    fn sweep_reduces_identically_across_shard_counts_and_jobs() {
        let root = tree("shardcounts", 5);
        let baseline =
            sweep(&root, &SweepConfig { shards: 1, jobs: 1, ..SweepConfig::default() }).unwrap();
        assert_eq!(baseline.library_count, 5);
        assert_eq!(baseline.report.error_count(), 2, "{}", baseline.report.render());
        for (shards, jobs) in [(2, 1), (2, 4), (8, 3), (0, 2)] {
            let other =
                sweep(&root, &SweepConfig { shards, jobs, ..SweepConfig::default() }).unwrap();
            assert_eq!(
                baseline.report.to_json(),
                other.report.to_json(),
                "shards={shards} jobs={jobs}"
            );
            assert_eq!(baseline.report.render(), other.report.render());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_lands_in_the_cache_dir_by_default() {
        let root = tree("manifest", 2);
        let cache = root.join(".cache");
        let config = SweepConfig { cache_dir: Some(cache.clone()), ..SweepConfig::default() };
        let output = sweep(&root, &config).unwrap();
        assert_eq!(output.library_count, 2);
        let manifest = std::fs::read_to_string(cache.join("sweep-manifest.json")).unwrap();
        assert!(manifest.contains("\"manifest_schema_version\": 2"));
        assert!(output.report.cache_store.is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn post_run_manifest_carries_cost_rows_that_feed_the_next_plan() {
        let root = tree("costrows", 3);
        let manifest = root.join("manifest.json");
        let config = SweepConfig {
            shards: 2,
            manifest_path: Some(manifest.clone()),
            ..SweepConfig::default()
        };
        let first = sweep(&root, &config).unwrap();
        assert!(first.stats.workers_executed > 0, "uncached run executes workers");

        let costs = planner::load_manifest_costs(&manifest);
        assert_eq!(costs.len(), 3, "every analyzed library got a cost row");
        assert!(costs.values().all(|c| c.functions == 1));
        assert!(
            costs.values().all(|c| c.cost_seconds > 0.0),
            "executed libraries record positive cost: {costs:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cost_schedule_reduces_identically_to_name_schedule() {
        let root = tree("schedid", 5);
        let manifest = root.join("manifest.json");
        let by_name = sweep(
            &root,
            &SweepConfig {
                shards: 2,
                manifest_path: Some(manifest.clone()),
                ..SweepConfig::default()
            },
        )
        .unwrap();
        // second run cost-packs from the first run's manifest
        let by_cost = sweep(
            &root,
            &SweepConfig {
                shards: 2,
                schedule: Schedule::Cost,
                jobs: 3,
                manifest_path: Some(manifest.clone()),
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(by_name.report.to_json(), by_cost.report.to_json());
        assert_eq!(by_name.report.render(), by_cost.report.render());
        let rewritten = std::fs::read_to_string(&manifest).unwrap();
        assert!(rewritten.contains("\"schedule\": \"cost\""), "manifest records the schedule");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_sweep_carries_cold_costs_forward() {
        let root = tree("carry", 2);
        let cache = root.join(".cache");
        let config = SweepConfig { cache_dir: Some(cache.clone()), ..SweepConfig::default() };
        sweep(&root, &config).unwrap();
        let cold = planner::load_manifest_costs(&cache.join("sweep-manifest.json"));

        let warm = sweep(&root, &config).unwrap();
        assert_eq!(warm.stats.workers_executed, 0, "warm sweep runs zero workers");
        let carried = planner::load_manifest_costs(&cache.join("sweep-manifest.json"));
        for (name, row) in &carried {
            assert_eq!(
                row.cost_seconds, cold[name].cost_seconds,
                "{name}: warm rewrite keeps the cold scheduling cost"
            );
            assert!(row.report_hit, "{name}: warm run recorded as a report hit");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
