//! The sweep reducer: merges per-library results — structured
//! [`AnalysisReport`]s from in-process shards, versioned JSON documents
//! from child-process shards — into one deterministic [`SweepReport`].
//!
//! Determinism is the whole contract: the reduced report is **byte
//! identical** for any shard partitioning, any shard arrival order, any
//! worker count and either map mode. The reducer earns that by (a)
//! normalizing both input shapes into the same [`LibraryReport`] rows,
//! (b) re-sorting everything by library name, and (c) excluding every
//! wall-clock or resource-usage field from the stable document (those
//! live in [`crate::MapStats`], which is reported separately and *is*
//! allowed to vary run to run).

use ffisafe_cache::CacheStats;
use ffisafe_core::{AnalysisReport, ReportSummary, REPORT_SCHEMA_VERSION};
use ffisafe_support::json::{self, escape_into, Json};

/// Version of the reduced sweep document emitted by
/// [`SweepReport::to_json`]. Bumped whenever a field changes meaning,
/// moves or disappears; adding fields does not bump it.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// One note attached to a diagnostic, location resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagNote {
    /// File the note points into.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// 1-based column.
    pub column: u64,
    /// The note text.
    pub message: String,
}

/// One diagnostic row, normalized from either map mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagRow {
    /// File the diagnostic points into.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// 1-based column.
    pub column: u64,
    /// Severity, rendered (`error`, `warning`, `imprecision`, `note`).
    pub severity: String,
    /// Diagnostic code, rendered.
    pub code: String,
    /// The message.
    pub message: String,
    /// Attached notes.
    pub notes: Vec<DiagNote>,
}

/// Execution-side accounting for one library — everything that may vary
/// with cache temperature, worker count or hardware, and therefore stays
/// **out** of the stable sweep document. The executor folds these into
/// [`crate::MapStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LibraryExec {
    /// OCaml lines analyzed.
    pub ml_loc: usize,
    /// C lines analyzed.
    pub c_loc: usize,
    /// Rust lines analyzed.
    pub rust_loc: usize,
    /// C functions analyzed.
    pub functions: usize,
    /// Fixpoint passes.
    pub passes: usize,
    /// Wall-clock seconds for the library's analysis.
    pub seconds: f64,
    /// Summed per-function inference work (zero when replayed).
    pub work_seconds: f64,
    /// Tier-1 cache hits.
    pub cache_fn_hits: usize,
    /// Tier-1 cache misses.
    pub cache_fn_misses: usize,
    /// Functions analyzed by a live inference worker.
    pub workers_executed: usize,
    /// Whether the whole report came from the tier-2 report cache.
    pub report_hit: bool,
}

/// One library's reduced result: the stable rollup plus execution
/// accounting.
#[derive(Clone, Debug)]
pub struct LibraryReport {
    /// Library name (directory name under the corpus root).
    pub library: String,
    /// Source files analyzed.
    pub files: usize,
    /// Count rollup (identical to the per-report JSON `summary`).
    pub summary: ReportSummary,
    /// Every diagnostic, in report order.
    pub rows: Vec<DiagRow>,
    /// Execution accounting (excluded from the stable document).
    pub exec: LibraryExec,
}

impl LibraryReport {
    /// Normalizes an in-process [`AnalysisReport`] — structured access,
    /// no JSON round-trip.
    pub fn from_report(library: String, files: usize, report: &AnalysisReport) -> LibraryReport {
        let rows = report
            .diagnostics
            .iter()
            .map(|d| {
                let loc = report.source_map().resolve(d.span());
                DiagRow {
                    file: loc.file.clone(),
                    line: u64::from(loc.line),
                    column: u64::from(loc.col),
                    severity: d.severity().to_string(),
                    code: d.code().to_string(),
                    message: d.message().to_string(),
                    notes: d
                        .notes()
                        .iter()
                        .map(|(nspan, note)| {
                            let nloc = report.source_map().resolve(*nspan);
                            DiagNote {
                                file: nloc.file.clone(),
                                line: u64::from(nloc.line),
                                column: u64::from(nloc.col),
                                message: note.clone(),
                            }
                        })
                        .collect(),
                }
            })
            .collect();
        let s = &report.stats;
        LibraryReport {
            library,
            files,
            summary: report.summary(),
            rows,
            exec: LibraryExec {
                ml_loc: s.ml_loc,
                c_loc: s.c_loc,
                rust_loc: s.rust_loc,
                functions: s.c_functions,
                passes: s.passes,
                seconds: s.seconds,
                work_seconds: s.infer_work_seconds,
                cache_fn_hits: s.cache_fn_hits,
                cache_fn_misses: s.cache_fn_misses,
                workers_executed: s.workers_executed,
                report_hit: s.cache_report_hit,
            },
        }
    }

    /// Normalizes a child process's versioned JSON report (the
    /// `--format json` document, schema version
    /// [`REPORT_SCHEMA_VERSION`]). Any structural problem — parse error,
    /// wrong schema version, missing field — is an `Err` the executor
    /// treats as a failed attempt (retryable).
    pub fn from_json(library: String, files: usize, text: &str) -> Result<LibraryReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing schema_version".to_string())?;
        if schema != u64::from(REPORT_SCHEMA_VERSION) {
            return Err(format!("report schema {schema} != supported {REPORT_SCHEMA_VERSION}"));
        }
        let summary = doc.get("summary").ok_or_else(|| "missing summary".to_string())?;
        let count = |key: &str| {
            summary
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("summary.{key} missing or not a count"))
        };
        let summary = ReportSummary {
            errors: count("errors")?,
            warnings: count("warnings")?,
            imprecision: count("imprecision")?,
            notes: count("notes")?,
            diagnostics: count("diagnostics")?,
        };

        let rows = doc
            .get("diagnostics")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing diagnostics array".to_string())?
            .iter()
            .map(diag_row)
            .collect::<Result<Vec<DiagRow>, String>>()?;

        let stats = doc.get("stats").ok_or_else(|| "missing stats".to_string())?;
        let stat = |key: &str| {
            stats
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("stats.{key} missing or not a count"))
        };
        let cache = stats.get("cache").ok_or_else(|| "missing stats.cache".to_string())?;
        let cache_count = |key: &str| {
            cache
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("stats.cache.{key} missing or not a count"))
        };
        let exec = LibraryExec {
            ml_loc: stat("ml_loc")?,
            c_loc: stat("c_loc")?,
            rust_loc: stat("rust_loc")?,
            functions: stat("c_functions")?,
            passes: stat("passes")?,
            seconds: stats.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            work_seconds: stats.get("infer_work_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            cache_fn_hits: cache_count("fn_hits")?,
            cache_fn_misses: cache_count("fn_misses")?,
            workers_executed: cache_count("workers_executed")?,
            report_hit: cache
                .get("report_hit")
                .and_then(Json::as_bool)
                .ok_or_else(|| "stats.cache.report_hit missing".to_string())?,
        };
        Ok(LibraryReport { library, files, summary, rows, exec })
    }
}

fn loc_fields(v: &Json, what: &str) -> Result<(String, u64, u64), String> {
    let file = v
        .get("file")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}.file missing"))?
        .to_string();
    let line =
        v.get("line").and_then(Json::as_u64).ok_or_else(|| format!("{what}.line missing"))?;
    let column =
        v.get("column").and_then(Json::as_u64).ok_or_else(|| format!("{what}.column missing"))?;
    Ok((file, line, column))
}

fn diag_row(v: &Json) -> Result<DiagRow, String> {
    let (file, line, column) = loc_fields(v, "diagnostic")?;
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("diagnostic.{key} missing"))
    };
    let notes = v
        .get("notes")
        .and_then(Json::as_array)
        .ok_or_else(|| "diagnostic.notes missing".to_string())?
        .iter()
        .map(|n| {
            let (file, line, column) = loc_fields(n, "note")?;
            let message = n
                .get("message")
                .and_then(Json::as_str)
                .ok_or_else(|| "note.message missing".to_string())?
                .to_string();
            Ok(DiagNote { file, line, column, message })
        })
        .collect::<Result<Vec<DiagNote>, String>>()?;
    Ok(DiagRow {
        file,
        line,
        column,
        severity: field("severity")?,
        code: field("code")?,
        message: field("message")?,
        notes,
    })
}

/// A library that could not be analyzed after every retry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepFailure {
    /// Library name.
    pub library: String,
    /// What went wrong on the final attempt.
    pub error: String,
}

/// The reduced result of one sweep: per-library rollups, failures, and
/// the shared cache store's occupancy — and nothing that varies with
/// partitioning, arrival order, worker count, map mode or cache
/// temperature.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-library results, sorted by library name.
    pub libraries: Vec<LibraryReport>,
    /// Libraries that failed after every retry, sorted by name.
    pub failures: Vec<SweepFailure>,
    /// Occupancy of the shared cache store after the sweep (`None` when
    /// the sweep ran uncached). Occupancy is content-determined: entry
    /// count and live bytes are identical for any partitioning and for a
    /// warm re-sweep over an unchanged tree.
    pub cache_store: Option<CacheStats>,
}

impl SweepReport {
    /// Reduces normalized rows into the deterministic report (sorts by
    /// library name).
    pub fn reduce(
        mut libraries: Vec<LibraryReport>,
        mut failures: Vec<SweepFailure>,
        cache_store: Option<CacheStats>,
    ) -> SweepReport {
        let _span = ffisafe_support::telemetry::span_with("sweep.reduce", || {
            vec![("libraries", libraries.len().to_string())]
        });
        libraries.sort_by(|a, b| a.library.cmp(&b.library));
        failures.sort_by(|a, b| a.library.cmp(&b.library));
        SweepReport { libraries, failures, cache_store }
    }

    /// Cross-library count totals.
    pub fn summary(&self) -> ReportSummary {
        let mut total = ReportSummary::default();
        for lib in &self.libraries {
            total.errors += lib.summary.errors;
            total.warnings += lib.summary.warnings;
            total.imprecision += lib.summary.imprecision;
            total.notes += lib.summary.notes;
            total.diagnostics += lib.summary.diagnostics;
        }
        total
    }

    /// Total error findings across every library.
    pub fn error_count(&self) -> usize {
        self.summary().errors
    }

    /// The stable human-readable rollup: one line per library, failures,
    /// and the sweep total. Deterministic (no timings, no resource
    /// usage).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for lib in &self.libraries {
            out.push_str(&format!(
                "{}: {} error(s), {} warning(s), {} imprecision report(s) — {} file(s)\n",
                lib.library,
                lib.summary.errors,
                lib.summary.warnings,
                lib.summary.imprecision,
                lib.files,
            ));
        }
        for failure in &self.failures {
            out.push_str(&format!("{}: FAILED ({})\n", failure.library, failure.error));
        }
        let total = self.summary();
        out.push_str(&format!(
            "sweep: {} library(ies), {} failed — {} error(s), {} warning(s), {} imprecision report(s)\n",
            self.libraries.len(),
            self.failures.len(),
            total.errors,
            total.warnings,
            total.imprecision,
        ));
        out
    }

    /// The versioned machine-readable sweep document.
    ///
    /// Schema (v1, see [`SWEEP_SCHEMA_VERSION`]):
    ///
    /// ```text
    /// {
    ///   "sweep_schema_version": 1,
    ///   "tool": "ffisafe",
    ///   "tool_version": "<crate version>",
    ///   "libraries": N,
    ///   "summary": { "errors", "warnings", "imprecision", "notes",
    ///                "diagnostics" },
    ///   "library_reports": [ { "library", "files", "summary": {…},
    ///       "diagnostics": [ { "file", "line", "column", "severity",
    ///                          "code", "message", "notes": […] } ] } ],
    ///   "failures": [ { "library", "error" } ],
    ///   "cache_store": { "entries", "live_bytes" } | null
    /// }
    /// ```
    ///
    /// Byte-identical for any shard partitioning, shard arrival order,
    /// worker count or map mode over the same tree and options — and for
    /// a warm re-sweep over an unchanged tree. Wall-clock and hit/miss
    /// accounting deliberately live elsewhere ([`crate::MapStats`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"sweep_schema_version\": {SWEEP_SCHEMA_VERSION},\n"));
        out.push_str("  \"tool\": \"ffisafe\",\n");
        out.push_str(&format!("  \"tool_version\": \"{}\",\n", env!("CARGO_PKG_VERSION")));
        out.push_str(&format!("  \"libraries\": {},\n", self.libraries.len()));
        let total = self.summary();
        push_summary(&mut out, "  \"summary\": ", &total);
        out.push_str(",\n  \"library_reports\": [");
        for (i, lib) in self.libraries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"library\": \"");
            escape_into(&mut out, &lib.library);
            out.push_str(&format!("\", \"files\": {}, ", lib.files));
            push_summary(&mut out, "\"summary\": ", &lib.summary);
            out.push_str(", \"diagnostics\": [");
            for (j, row) in lib.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                push_loc(&mut out, &row.file, row.line, row.column);
                out.push_str(&format!(
                    ", \"severity\": \"{}\", \"code\": \"{}\", \"message\": \"",
                    { &row.severity },
                    { &row.code }
                ));
                escape_into(&mut out, &row.message);
                out.push_str("\", \"notes\": [");
                for (k, note) in row.notes.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push('{');
                    push_loc(&mut out, &note.file, note.line, note.column);
                    out.push_str(", \"message\": \"");
                    escape_into(&mut out, &note.message);
                    out.push_str("\"}");
                }
                out.push_str("]}");
            }
            out.push_str(if lib.rows.is_empty() { "]}" } else { "\n    ]}" });
        }
        out.push_str(if self.libraries.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"failures\": [");
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"library\": \"");
            escape_into(&mut out, &failure.library);
            out.push_str("\", \"error\": \"");
            escape_into(&mut out, &failure.error);
            out.push_str("\"}");
        }
        out.push_str(if self.failures.is_empty() { "],\n" } else { "\n  ],\n" });
        // Occupancy only: entries and live bytes are content-determined.
        // Evictions (and every hit/miss counter) are store-*lifetime*
        // numbers that depend on which process opened the store when, so
        // they live in the run-varying accounting (`--timings` stderr,
        // [`crate::MapStats`]), never in this document.
        match &self.cache_store {
            Some(stats) => out.push_str(&format!(
                "  \"cache_store\": {{\"entries\": {}, \"live_bytes\": {}}}\n",
                stats.entries, stats.live_bytes
            )),
            None => out.push_str("  \"cache_store\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

fn push_summary(out: &mut String, prefix: &str, s: &ReportSummary) {
    out.push_str(&format!(
        "{prefix}{{\"errors\": {}, \"warnings\": {}, \"imprecision\": {}, \"notes\": {}, \"diagnostics\": {}}}",
        s.errors, s.warnings, s.imprecision, s.notes, s.diagnostics
    ));
}

fn push_loc(out: &mut String, file: &str, line: u64, column: u64) {
    out.push_str("\"file\": \"");
    escape_into(out, file);
    out.push_str(&format!("\", \"line\": {line}, \"column\": {column}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_core::{AnalysisRequest, AnalysisService, Corpus};

    fn buggy_report() -> AnalysisReport {
        let corpus = Corpus::builder()
            .ml_source("lib.ml", r#"external f : int -> int = "ml_f""#)
            .c_source("glue.c", "value ml_f(value n) { return Val_int(n); }")
            .build();
        AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
    }

    #[test]
    fn from_report_and_from_json_normalize_identically() {
        let report = buggy_report();
        let structured = LibraryReport::from_report("lib".into(), 2, &report);
        let parsed = LibraryReport::from_json("lib".into(), 2, &report.to_json()).unwrap();
        assert_eq!(structured.summary, parsed.summary);
        assert_eq!(structured.rows, parsed.rows);
        assert_eq!(structured.exec.functions, parsed.exec.functions);
        assert_eq!(structured.exec.report_hit, parsed.exec.report_hit);
        assert!(structured.summary.errors >= 1, "premise: the corpus is buggy");
        // the two normalizations reduce to byte-identical sweep documents
        let a = SweepReport::reduce(vec![structured], vec![], None);
        let b = SweepReport::reduce(vec![parsed], vec![], None);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn reduce_sorts_by_library_name_and_totals_counts() {
        let report = buggy_report();
        let zeta = LibraryReport::from_report("zeta".into(), 2, &report);
        let alpha = LibraryReport::from_report("alpha".into(), 2, &report);
        let reduced = SweepReport::reduce(
            vec![zeta, alpha],
            vec![SweepFailure { library: "omega".into(), error: "spawn failed".into() }],
            None,
        );
        assert_eq!(reduced.libraries[0].library, "alpha");
        assert_eq!(reduced.libraries[1].library, "zeta");
        let total = reduced.summary();
        assert_eq!(total.errors, reduced.libraries.iter().map(|l| l.summary.errors).sum());
        assert!(reduced.render().contains("omega: FAILED (spawn failed)"));
        assert!(reduced.render().ends_with("imprecision report(s)\n"));
    }

    #[test]
    fn sweep_json_is_versioned_and_parseable() {
        let report = buggy_report();
        let lib = LibraryReport::from_report("lib".into(), 2, &report);
        let stats = CacheStats { entries: 3, live_bytes: 120, ..CacheStats::default() };
        let reduced = SweepReport::reduce(vec![lib], vec![], Some(stats));
        let doc = json::parse(&reduced.to_json()).expect("valid JSON");
        assert_eq!(doc.get("sweep_schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("libraries").and_then(Json::as_u64), Some(1));
        let store = doc.get("cache_store").unwrap();
        assert_eq!(store.get("entries").and_then(Json::as_u64), Some(3));
        assert_eq!(store.get("live_bytes").and_then(Json::as_u64), Some(120));
        assert!(
            store.get("evictions").is_none(),
            "evictions is a store-lifetime counter, not content-determined occupancy"
        );
        let libs = doc.get("library_reports").and_then(Json::as_array).unwrap();
        let diags = libs[0].get("diagnostics").and_then(Json::as_array).unwrap();
        assert!(!diags.is_empty());
        assert!(diags[0].get("severity").and_then(Json::as_str).is_some());
        // uncached sweeps say so explicitly
        let uncached = SweepReport::reduce(vec![], vec![], None);
        assert!(uncached.to_json().contains("\"cache_store\": null"));
    }

    #[test]
    fn from_json_rejects_structural_problems() {
        assert!(LibraryReport::from_json("l".into(), 1, "not json").is_err());
        assert!(LibraryReport::from_json("l".into(), 1, "{}").is_err());
        let wrong_schema = r#"{"schema_version": 999}"#;
        let err = LibraryReport::from_json("l".into(), 1, wrong_schema).unwrap_err();
        assert!(err.contains("999"), "{err}");
    }
}
