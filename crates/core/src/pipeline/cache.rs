//! Fingerprint recipes and payload codecs for the incremental cache.
//!
//! The storage layer ([`ffisafe_cache`]) is analysis-agnostic; this module
//! defines what the cached bytes *mean* for the pipeline:
//!
//! * **Fingerprints.** [`base_state_digest`] hashes the frozen post-link
//!   [`super::infer::BaseState`] *itself* — the six immutable type-node
//!   arenas, the registry `Γ_I`, the post-link constraint set and the
//!   Φ-translated external signatures — plus the semantic analysis
//!   options and the analyzer version. [`function_fingerprint`] then
//!   folds in one function's complete lowered IR (spans included, since
//!   diagnostics carry them). A worker's overlay reads nothing else —
//!   sibling function *bodies* never reach the link stage and are
//!   invisible behind overlay isolation — so two runs agreeing on a
//!   function's fingerprint produce identical [`FunctionOutcome`]s by
//!   construction. Because the digest is taken over the frozen state
//!   rather than the input surface, it is by construction identical
//!   across `--jobs` widths and across cold/warm runs of one corpus.
//! * **Codecs.** [`encode_outcome`]/[`decode_outcome`] serialize the
//!   plain-data [`FunctionOutcome`] for tier 1;
//!   [`encode_report`]/[`decode_report`] serialize the rendered stable
//!   report for tier 2. Decoding is total: any malformed payload yields
//!   `None` and the caller treats it as a miss.
//!
//! Clone-local [`EffectKey::Local`] ids are encoded *without* their
//! function index and re-bound to the replaying run's index on decode.
//! This is defense in depth rather than a reachable codepath today:
//! adding or removing *any* function changes [`base_state_digest`]
//! (every signature lands in the frozen registry workers observe), so
//! whenever a fingerprint matches, the function's index necessarily
//! matches too. Rebinding keeps the payload format honest —
//! an index is derivable context, not content — should the surface digest
//! ever become insensitive to unrelated signatures.

use super::infer::{
    DeferredPsiBound, EffectKey, FunctionOutcome, InterfacePin, ResolvedObligation,
};
use ffisafe_cache::{CacheBackend, CacheStore, Decoder, Encoder, Tier};
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_rustffi as rustffi;
use ffisafe_support::{
    AnalysisOptions, Diagnostic, DiagnosticBag, DiagnosticCode, Fingerprint, FingerprintHasher,
    Severity,
};
use ffisafe_types::{FlatInt, PsiBound, PsiId, PsiNode, PsiViolation};
use std::sync::Arc;

/// Bumped whenever the meaning or layout of cached payloads or the
/// fingerprint recipes change; folded into the store's analyzer version so
/// a bump wipes stale caches wholesale.
///
/// v2: the tier-2 key became `report_key(corpus content digest, options)` —
/// the corpus digest no longer folds the options in directly, so corpora
/// fingerprinted once (the [`crate::api::Corpus`] flow) can be probed under
/// any options.
///
/// v3: the tier-1 base digest is taken over the *frozen* post-link base
/// state ([`base_state_digest`]) instead of the pre-link input surface —
/// same invalidation behavior, but computed from what workers actually
/// read.
///
/// v4: the Rust frontend landed — corpus content digests now carry a third
/// [`crate::api::SourceKind`] tag, diagnostic payloads can carry the
/// `E011`–`E014`/`W004` boundary codes, and the Rust boundary check is
/// memoized under [`rust_check_fingerprint`]. Pre-Rust stores never saw
/// those tags, but the schema bump wipes them anyway so no v3 payload is
/// ever decoded by a decoder that assigns the new tags meaning.
pub const CACHE_SCHEMA_VERSION: u32 = 4;

/// The producer identity pinned in the cache index: crate version plus
/// payload schema version.
pub fn analyzer_cache_version() -> String {
    format!("ffisafe {} schema {}", env!("CARGO_PKG_VERSION"), CACHE_SCHEMA_VERSION)
}

/// One analysis run's view of the (possibly shared) two-tier store.
///
/// The store sits behind `Arc<dyn CacheBackend>` because an
/// [`AnalysisService`] opens it once and lends it to every request in a
/// batch. Backends are internally synchronized (the local store shards
/// its index by fingerprint prefix), so concurrent pipelines hit the
/// store directly instead of funneling through one mutex. Each
/// `PipelineCache` additionally carries the run's base-surface digest,
/// which is per-request state.
///
/// [`AnalysisService`]: crate::api::AnalysisService
#[derive(Debug)]
pub struct PipelineCache {
    /// The two-tier store (local dir or remote daemon), shareable across
    /// concurrent runs.
    store: Arc<dyn CacheBackend>,
    /// Digest of the base-state surface; [`function_fingerprint`] extends
    /// it per function. Set by the driver once linking inputs are known.
    pub base_digest: Fingerprint,
}

impl PipelineCache {
    /// Opens a store under `dir`, keyed to this analyzer build, private to
    /// one run.
    pub fn open(dir: &std::path::Path) -> std::io::Result<PipelineCache> {
        let store = CacheStore::open(dir, &analyzer_cache_version())?;
        Ok(PipelineCache::from_shared(Arc::new(store)))
    }

    /// Wraps an already-open backend shared with other runs.
    pub fn from_shared(store: Arc<dyn CacheBackend>) -> PipelineCache {
        PipelineCache { store, base_digest: Fingerprint(0, 0) }
    }

    /// Fetches one validated entry; `None` is a miss.
    pub fn get(&self, tier: Tier, fp: Fingerprint) -> Option<Vec<u8>> {
        self.store.get(tier, fp)
    }

    /// Stores one entry; failures only cost future hits.
    pub fn put(&self, tier: Tier, fp: Fingerprint, payload: &[u8]) {
        let _ = self.store.put(tier, fp, payload);
    }

    /// Persists the index (best-effort, like `put`).
    pub fn flush(&self) {
        let _ = self.store.flush();
    }
}

/// Digest of one registered source file for the tier-2 corpus key.
///
/// `kind` distinguishes how the driver parsed the file (OCaml vs C vs
/// Rust), since the file name alone need not determine it for library
/// users.
pub fn hash_source_file(h: &mut FingerprintHasher, kind: u8, name: &str, src: &str) {
    h.write_u8(kind);
    h.write_str(name);
    h.write_str(src);
}

/// Streams `v`'s `Debug` rendering into the hash without materializing a
/// `String`, then delimits the field with its streamed byte count (a
/// length *suffix* is as collision-proof as a prefix, and unlike a prefix
/// it does not require knowing the length up front).
fn hash_debug<T: std::fmt::Debug + ?Sized>(h: &mut FingerprintHasher, v: &T) {
    use std::fmt::Write as _;
    let before = h.bytes_written();
    let _ = write!(h, "{v:?}");
    let streamed = h.bytes_written() - before;
    h.write_u64(streamed);
}

/// Content digest of a whole corpus: every input file (kind, name,
/// content) in registration order, and nothing else. This is what
/// [`crate::api::Corpus`] is fingerprinted with once at build time;
/// combine it with the options via [`report_key`] to address the tier-2
/// report cache.
pub fn corpus_content_digest<'a>(
    files: impl Iterator<Item = (u8, &'a str, &'a str)>,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-corpus-content");
    for (kind, name, src) in files {
        hash_source_file(&mut h, kind, name, src);
    }
    h.finish()
}

/// The tier-2 report key: corpus content digest plus the semantic options.
/// The analyzer version is enforced store-wide by the index header, not
/// per key.
pub fn report_key(content: Fingerprint, options: &AnalysisOptions) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-report-key");
    h.write_fingerprint(content);
    h.write_fingerprint(options.semantic_digest());
    h.finish()
}

/// Digest of the frozen post-link base state: everything a worker's
/// overlay can observe besides its own function's lowered IR.
///
/// Hashes the six immutable type-node arenas in id order, the registry in
/// symbol order (a `HashMap` walk would be process-random), the post-link
/// constraint set, and the Φ-translated external signatures. Every
/// auxiliary field of [`super::infer::BaseState`] (canonical-id tables,
/// open variables, heap-slot candidates, …) is a pure function of those
/// four inputs, so this digest determines the whole state workers read.
///
/// Function *bodies* never reach the link stage, so a body edit leaves
/// this digest unchanged and sibling tier-1 entries survive; signature,
/// prototype and `.ml` declaration edits all reshape the frozen arenas or
/// the registry and invalidate everything. The digest is computed from
/// the frozen state — not the input files — so it is identical across
/// `--jobs` widths and across cold/warm runs by construction.
pub fn base_state_digest(
    options: &AnalysisOptions,
    base: &super::infer::BaseState,
    phase1: &ocaml::translate::Phase1,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-base-state");
    h.write_fingerprint(options.semantic_digest());

    // The frozen arena, sort by sort, id order. Node enums hold only
    // plain data (ids, strings, vectors), so `Debug` is stable.
    h.write_u64(base.frozen.node_count() as u64);
    hash_debug(&mut h, &base.frozen.mts());
    hash_debug(&mut h, &base.frozen.cts());
    hash_debug(&mut h, &base.frozen.psis());
    hash_debug(&mut h, &base.frozen.sigmas());
    hash_debug(&mut h, &base.frozen.pis());
    hash_debug(&mut h, &base.frozen.gcs());

    // Γ_I in symbol order, with the name↔symbol binding made explicit.
    let funcs = base.registry.iter_stable();
    h.write_u64(funcs.len() as u64);
    for (sym, info) in funcs {
        h.write_u32(sym.as_raw());
        hash_debug(&mut h, info);
    }

    // Post-link constraints: the base GC effect edges and Ψ bounds.
    h.write_u64(base.constraints.gc_edge_count() as u64);
    for (lo, hi) in base.constraints.gc_edges_from(0) {
        h.write_u32(lo.as_raw());
        h.write_u32(hi.as_raw());
    }
    h.write_u64(base.constraints.psi_bound_count() as u64);
    for b in base.constraints.psi_bounds_from(0) {
        hash_debug(&mut h, b);
    }

    // The Φ-translated signatures workers key interface pins and
    // polymorphic-abuse slots by (spans included: diagnostics carry them).
    hash_debug(&mut h, &phase1.signatures);
    h.finish()
}

/// The tier-1 key: the base-surface digest plus one function's complete
/// lowered IR. `address_taken` is a `HashSet`, whose iteration order is
/// process-random, so it is sorted before hashing — everything else
/// derives from `Debug` of plain vectors and enums, which is stable.
pub fn function_fingerprint(base_digest: Fingerprint, func: &cil::ir::IrFunction) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-function");
    h.write_fingerprint(base_digest);
    h.write_str(&func.name);
    hash_debug(&mut h, &func.ret);
    hash_debug(&mut h, &func.locals);
    h.write_u64(func.n_params as u64);
    hash_debug(&mut h, &func.body);
    h.write_u64(func.n_labels as u64);
    let mut taken: Vec<u32> = func.address_taken.iter().map(|v| v.0).collect();
    taken.sort_unstable();
    h.write_u64(taken.len() as u64);
    for v in taken {
        h.write_u32(v);
    }
    h.write_bool(func.is_static);
    hash_debug(&mut h, &func.span);
    h.finish()
}

/// The Rust boundary-check key: the merged `.rs` surface plus everything
/// the checker can read of the C program — function signatures (return
/// type, the parameter prefix of the locals, spans), prototypes and
/// globals, but never function *bodies*. A C body edit or an `.ml` edit
/// therefore replays the memoized check, while any boundary-relevant
/// `.rs` edit or C signature edit invalidates exactly this one entry.
///
/// The [`rustffi::RustProgram`] is hashed via `Debug`: it holds only plain
/// data (strings, enums, spans) and its maps are `BTreeMap`s, so the
/// rendering is deterministic. Spans participate on both sides because the
/// cached diagnostics carry them.
pub fn rust_check_fingerprint(
    options: &AnalysisOptions,
    rust: &rustffi::RustProgram,
    c: &cil::IrProgram,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("ffisafe-rust-check");
    h.write_fingerprint(options.semantic_digest());
    hash_debug(&mut h, rust);
    h.write_u64(c.functions.len() as u64);
    for f in &c.functions {
        h.write_str(&f.name);
        hash_debug(&mut h, &f.ret);
        hash_debug(&mut h, &f.locals[..f.n_params]);
        h.write_u64(f.n_params as u64);
        hash_debug(&mut h, &f.span);
    }
    hash_debug(&mut h, &c.prototypes);
    hash_debug(&mut h, &c.globals);
    h.finish()
}

// ---- severity / code tags ----------------------------------------------

fn severity_tag(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Imprecision => 2,
        Severity::Note => 3,
    }
}

fn severity_from_tag(t: u8) -> Option<Severity> {
    Some(match t {
        0 => Severity::Error,
        1 => Severity::Warning,
        2 => Severity::Imprecision,
        3 => Severity::Note,
        _ => return None,
    })
}

fn code_tag(c: DiagnosticCode) -> u8 {
    use DiagnosticCode::*;
    match c {
        TypeMismatch => 0,
        BoxednessMismatch => 1,
        ConstructorRange => 2,
        TagRange => 3,
        FieldRange => 4,
        UnrootedValue => 5,
        MissingCamlReturn => 6,
        SpuriousCamlReturn => 7,
        UnsafeValue => 8,
        ArityMismatch => 9,
        TrailingUnitParameter => 10,
        PolymorphicAbuse => 11,
        SuspiciousCast => 12,
        UnknownOffset => 13,
        GlobalValue => 14,
        AddressOfValue => 15,
        FunctionPointerCall => 16,
        PolymorphicVariant => 17,
        Context => 18,
        RustArityMismatch => 19,
        RustTypeMismatch => 20,
        RustMissingReprC => 21,
        RustFfiUnsafe => 22,
        RustNullability => 23,
    }
}

fn code_from_tag(t: u8) -> Option<DiagnosticCode> {
    use DiagnosticCode::*;
    Some(match t {
        0 => TypeMismatch,
        1 => BoxednessMismatch,
        2 => ConstructorRange,
        3 => TagRange,
        4 => FieldRange,
        5 => UnrootedValue,
        6 => MissingCamlReturn,
        7 => SpuriousCamlReturn,
        8 => UnsafeValue,
        9 => ArityMismatch,
        10 => TrailingUnitParameter,
        11 => PolymorphicAbuse,
        12 => SuspiciousCast,
        13 => UnknownOffset,
        14 => GlobalValue,
        15 => AddressOfValue,
        16 => FunctionPointerCall,
        17 => PolymorphicVariant,
        18 => Context,
        19 => RustArityMismatch,
        20 => RustTypeMismatch,
        21 => RustMissingReprC,
        22 => RustFfiUnsafe,
        23 => RustNullability,
        _ => return None,
    })
}

// ---- field codecs -------------------------------------------------------

fn put_diagnostics(e: &mut Encoder, bag: &DiagnosticBag) {
    e.put_len(bag.len());
    for d in bag.iter() {
        e.put_u8(code_tag(d.code()));
        e.put_u8(severity_tag(d.severity()));
        e.put_span(d.span());
        e.put_str(d.message());
        e.put_len(d.notes().len());
        for (span, note) in d.notes() {
            e.put_span(*span);
            e.put_str(note);
        }
    }
}

fn get_diagnostics(d: &mut Decoder) -> Option<DiagnosticBag> {
    let n = d.get_len().ok()?;
    let mut bag = DiagnosticBag::new();
    for _ in 0..n {
        let code = code_from_tag(d.get_u8().ok()?)?;
        let severity = severity_from_tag(d.get_u8().ok()?)?;
        let span = d.get_span().ok()?;
        let message = d.get_str().ok()?;
        let mut diag = Diagnostic::new(code, span, message).with_severity(severity);
        let notes = d.get_len().ok()?;
        for _ in 0..notes {
            let nspan = d.get_span().ok()?;
            let note = d.get_str().ok()?;
            diag = diag.with_note(nspan, note);
        }
        bag.push(diag);
    }
    Some(bag)
}

/// Serializes a standalone diagnostic bag — the payload of the memoized
/// Rust boundary check, stored under [`rust_check_fingerprint`].
pub fn encode_diagnostics(bag: &DiagnosticBag) -> Vec<u8> {
    let mut e = Encoder::new();
    put_diagnostics(&mut e, bag);
    e.into_bytes()
}

/// Decodes a standalone diagnostic bag; `None` is a cache miss.
pub fn decode_diagnostics(bytes: &[u8]) -> Option<DiagnosticBag> {
    let mut d = Decoder::new(bytes);
    let bag = get_diagnostics(&mut d)?;
    d.finish().ok()?;
    Some(bag)
}

fn put_effect_key(e: &mut Encoder, key: EffectKey, own_idx: u32) {
    match key {
        EffectKey::Base(raw) => {
            e.put_u8(0);
            e.put_u32(raw);
        }
        EffectKey::Local { func, raw } => {
            debug_assert_eq!(func, own_idx, "a worker only mints local keys for its own clone");
            e.put_u8(1);
            e.put_u32(raw);
        }
    }
}

fn get_effect_key(d: &mut Decoder, func_idx: u32) -> Option<EffectKey> {
    Some(match d.get_u8().ok()? {
        0 => EffectKey::Base(d.get_u32().ok()?),
        1 => EffectKey::Local { func: func_idx, raw: d.get_u32().ok()? },
        _ => return None,
    })
}

fn put_flat_int(e: &mut Encoder, t: FlatInt) {
    match t {
        FlatInt::Bot => e.put_u8(0),
        FlatInt::Known(n) => {
            e.put_u8(1);
            e.put_i64(n);
        }
        FlatInt::Top => e.put_u8(2),
    }
}

fn get_flat_int(d: &mut Decoder) -> Option<FlatInt> {
    Some(match d.get_u8().ok()? {
        0 => FlatInt::Bot,
        1 => FlatInt::Known(d.get_i64().ok()?),
        2 => FlatInt::Top,
        _ => return None,
    })
}

// ---- tier-1 payload -----------------------------------------------------

/// Serializes one function outcome, or `None` for an outcome that cannot
/// be replayed faithfully (an unresolved Ψ pin, which infer should never
/// export — skipping the put keeps warm runs byte-identical even if an
/// upstream bug ever produces one). `own_idx` is the function's index in
/// the producing run, used only to strip the redundant index from local
/// effect keys.
///
/// Scalar counters (`passes`, `new_nodes`, …) use `put_u64`, not
/// `put_len`: `Decoder::get_len`'s corruption guard caps values at the
/// payload byte length, which collection lengths always satisfy but a
/// large clean function's node counter need not.
pub fn encode_outcome(o: &FunctionOutcome, own_idx: u32) -> Option<Vec<u8>> {
    if o.psi_pins.iter().any(|(_, n)| matches!(n, PsiNode::Var | PsiNode::Link(_))) {
        return None;
    }
    let mut e = Encoder::new();
    e.put_str(&o.name);
    put_diagnostics(&mut e, &o.diagnostics);
    e.put_u64(o.passes as u64);
    e.put_u64(o.new_nodes as u64);
    e.put_len(o.gc_edges.len());
    for &(lo, hi) in &o.gc_edges {
        put_effect_key(&mut e, lo, own_idx);
        put_effect_key(&mut e, hi, own_idx);
    }
    e.put_u64(o.recorded_gc_edges as u64);
    e.put_len(o.gc_roots.len());
    for &k in &o.gc_roots {
        put_effect_key(&mut e, k, own_idx);
    }
    e.put_len(o.obligations.len());
    for ob in &o.obligations {
        e.put_str(&ob.callee);
        put_effect_key(&mut e, ob.effect, own_idx);
        e.put_bool(ob.effect_is_gc);
        e.put_len(ob.unprotected_heap_ptrs.len());
        for p in &ob.unprotected_heap_ptrs {
            e.put_str(p);
        }
        e.put_len(ob.deferred_ptrs.len());
        for (name, keys) in &ob.deferred_ptrs {
            e.put_str(name);
            e.put_len(keys.len());
            for (func, slot) in keys {
                e.put_str(func);
                e.put_len(*slot);
            }
        }
        e.put_span(ob.span);
    }
    e.put_len(o.psi_violations.len());
    for v in &o.psi_violations {
        put_flat_int(&mut e, v.bound.t);
        e.put_u32(v.bound.psi.as_raw());
        e.put_span(v.bound.span);
        e.put_str(&v.bound.context);
        e.put_str(&v.reason);
    }
    e.put_len(o.psi_pins.len());
    for &(raw, node) in &o.psi_pins {
        e.put_u32(raw);
        match node {
            PsiNode::Count(k) => {
                e.put_u8(0);
                e.put_u32(k);
            }
            PsiNode::Top => e.put_u8(1),
            // rejected by the guard at the top of this function
            PsiNode::Var | PsiNode::Link(_) => unreachable!("unresolved pins are not cached"),
        }
    }
    e.put_len(o.deferred_psi_bounds.len());
    for b in &o.deferred_psi_bounds {
        e.put_u32(b.mt_key);
        put_flat_int(&mut e, b.t);
        e.put_span(b.span);
        e.put_str(&b.context);
    }
    e.put_len(o.pinned_polys.len());
    for (sig, param, rendered) in &o.pinned_polys {
        e.put_len(*sig);
        e.put_len(*param);
        e.put_str(rendered);
    }
    e.put_len(o.interface_pins.len());
    for pin in &o.interface_pins {
        e.put_len(pin.sig_idx);
        e.put_len(pin.slot);
        e.put_u32(pin.mt_key);
        e.put_str(&pin.rendered);
        e.put_span(pin.func_span);
        e.put_str(&pin.func_name);
    }
    e.put_len(o.heap_slots.len());
    for (func, slot) in &o.heap_slots {
        e.put_str(func);
        e.put_len(*slot);
    }
    Some(e.into_bytes())
}

/// Decodes a tier-1 payload, re-binding local effect keys to `func_idx`.
///
/// Returns `None` on any structural problem, including a function-name or
/// signature-index mismatch — callers treat that as a cache miss. The
/// replayed outcome reports zero seconds: no work was performed.
pub fn decode_outcome(
    bytes: &[u8],
    func_idx: u32,
    expect_name: &str,
    n_sigs: usize,
) -> Option<FunctionOutcome> {
    let mut d = Decoder::new(bytes);
    let name = d.get_str().ok()?;
    if name != expect_name {
        return None;
    }
    let diagnostics = get_diagnostics(&mut d)?;
    let passes = d.get_u64().ok()? as usize;
    let new_nodes = d.get_u64().ok()? as usize;
    let n = d.get_len().ok()?;
    let mut gc_edges = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = get_effect_key(&mut d, func_idx)?;
        let hi = get_effect_key(&mut d, func_idx)?;
        gc_edges.push((lo, hi));
    }
    let recorded_gc_edges = d.get_u64().ok()? as usize;
    let n = d.get_len().ok()?;
    let mut gc_roots = Vec::with_capacity(n);
    for _ in 0..n {
        gc_roots.push(get_effect_key(&mut d, func_idx)?);
    }
    let n = d.get_len().ok()?;
    let mut obligations = Vec::with_capacity(n);
    for _ in 0..n {
        let callee = d.get_str().ok()?;
        let effect = get_effect_key(&mut d, func_idx)?;
        let effect_is_gc = d.get_bool().ok()?;
        let m = d.get_len().ok()?;
        let mut unprotected_heap_ptrs = Vec::with_capacity(m);
        for _ in 0..m {
            unprotected_heap_ptrs.push(d.get_str().ok()?);
        }
        let m = d.get_len().ok()?;
        let mut deferred_ptrs = Vec::with_capacity(m);
        for _ in 0..m {
            let name = d.get_str().ok()?;
            let k = d.get_len().ok()?;
            let mut keys = Vec::with_capacity(k);
            for _ in 0..k {
                let func = d.get_str().ok()?;
                let slot = d.get_len().ok()?;
                keys.push((func, slot));
            }
            deferred_ptrs.push((name, keys));
        }
        let span = d.get_span().ok()?;
        obligations.push(ResolvedObligation {
            callee,
            effect,
            effect_is_gc,
            unprotected_heap_ptrs,
            deferred_ptrs,
            span,
        });
    }
    let n = d.get_len().ok()?;
    let mut psi_violations = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_flat_int(&mut d)?;
        let psi = PsiId::from_raw(d.get_u32().ok()?);
        let span = d.get_span().ok()?;
        let context = d.get_str().ok()?;
        let reason = d.get_str().ok()?;
        psi_violations.push(PsiViolation { bound: PsiBound { t, psi, span, context }, reason });
    }
    let n = d.get_len().ok()?;
    let mut psi_pins = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = d.get_u32().ok()?;
        let node = match d.get_u8().ok()? {
            0 => PsiNode::Count(d.get_u32().ok()?),
            1 => PsiNode::Top,
            _ => return None,
        };
        psi_pins.push((raw, node));
    }
    let n = d.get_len().ok()?;
    let mut deferred_psi_bounds = Vec::with_capacity(n);
    for _ in 0..n {
        let mt_key = d.get_u32().ok()?;
        let t = get_flat_int(&mut d)?;
        let span = d.get_span().ok()?;
        let context = d.get_str().ok()?;
        deferred_psi_bounds.push(DeferredPsiBound { mt_key, t, span, context });
    }
    let n = d.get_len().ok()?;
    let mut pinned_polys = Vec::with_capacity(n);
    for _ in 0..n {
        let sig = d.get_len().ok()?;
        let param = d.get_len().ok()?;
        let rendered = d.get_str().ok()?;
        if sig >= n_sigs {
            return None;
        }
        pinned_polys.push((sig, param, rendered));
    }
    let n = d.get_len().ok()?;
    let mut interface_pins = Vec::with_capacity(n);
    for _ in 0..n {
        let sig_idx = d.get_len().ok()?;
        let slot = d.get_len().ok()?;
        let mt_key = d.get_u32().ok()?;
        let rendered = d.get_str().ok()?;
        let func_span = d.get_span().ok()?;
        let func_name = d.get_str().ok()?;
        if sig_idx >= n_sigs {
            return None;
        }
        interface_pins.push(InterfacePin { sig_idx, slot, mt_key, rendered, func_span, func_name });
    }
    let n = d.get_len().ok()?;
    let mut heap_slots = Vec::with_capacity(n);
    for _ in 0..n {
        let func = d.get_str().ok()?;
        let slot = d.get_len().ok()?;
        heap_slots.push((func, slot));
    }
    d.finish().ok()?;
    Some(FunctionOutcome {
        name,
        diagnostics,
        passes,
        new_nodes,
        gc_edges,
        recorded_gc_edges,
        gc_roots,
        obligations,
        psi_violations,
        psi_pins,
        deferred_psi_bounds,
        pinned_polys,
        interface_pins,
        heap_slots,
        seconds: 0.0,
        setup_seconds: 0.0,
    })
}

// ---- tier-2 payload -----------------------------------------------------

/// The tier-2 cached value: the stable rendering, the counts the report
/// API and the CLI exit status are derived from, and the full structured
/// diagnostics — so a served report keeps `AnalysisReport::diagnostics`
/// populated and APIs like `suggest_runtime_checks` behave identically at
/// any cache temperature.
#[derive(Clone, Debug)]
pub struct CachedReport {
    /// [`crate::AnalysisReport::render_stable`] output of the cold run.
    pub rendered: String,
    /// Error findings in the cold run.
    pub errors: usize,
    /// Questionable-practice warnings in the cold run.
    pub warnings: usize,
    /// Imprecision reports in the cold run.
    pub imprecision: usize,
    /// The cold run's full diagnostics (sorted/deduped).
    pub diagnostics: DiagnosticBag,
}

/// Serializes a tier-2 report entry.
pub fn encode_report(r: &CachedReport) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_len(r.errors);
    e.put_len(r.warnings);
    e.put_len(r.imprecision);
    e.put_str(&r.rendered);
    put_diagnostics(&mut e, &r.diagnostics);
    e.into_bytes()
}

/// Decodes a tier-2 report entry; `None` is a cache miss.
pub fn decode_report(bytes: &[u8]) -> Option<CachedReport> {
    let mut d = Decoder::new(bytes);
    let errors = d.get_len().ok()?;
    let warnings = d.get_len().ok()?;
    let imprecision = d.get_len().ok()?;
    let rendered = d.get_str().ok()?;
    let diagnostics = get_diagnostics(&mut d)?;
    d.finish().ok()?;
    Some(CachedReport { rendered, errors, warnings, imprecision, diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_cil::ir::{IrExpr, IrFunction, IrStmt, IrStmtKind, VarId};
    use ffisafe_cil::CTypeExpr;
    use ffisafe_support::Span;

    fn sample_function(name: &str, ret_const: i64) -> IrFunction {
        IrFunction {
            name: name.to_string(),
            ret: CTypeExpr::Value,
            locals: vec![],
            n_params: 0,
            body: vec![IrStmt::new(
                IrStmtKind::Return(Some(IrExpr::int(ret_const, Span::dummy()))),
                Span::dummy(),
            )],
            n_labels: 0,
            address_taken: [VarId(3), VarId(1), VarId(2)].into_iter().collect(),
            is_static: false,
            span: Span::dummy(),
        }
    }

    #[test]
    fn content_digest_ignores_options_report_key_does_not() {
        let files = [(0u8, "lib.ml", "external f : int -> int = \"ml_f\"")];
        let content = corpus_content_digest(files.iter().copied());
        assert_eq!(content, corpus_content_digest(files.iter().copied()), "stable");

        let defaults = AnalysisOptions::default();
        let mut no_flow = defaults;
        no_flow.flow_sensitive = false;
        // One corpus fingerprint serves every options configuration…
        let key_a = report_key(content, &defaults);
        let key_b = report_key(content, &no_flow);
        // …but the report keys still separate the keyspaces.
        assert_ne!(key_a, key_b, "options must split the report tier");
        assert_eq!(key_a, report_key(content, &defaults.with_jobs(8)), "jobs excluded");

        let other = corpus_content_digest([(1u8, "lib.ml", "x")].iter().copied());
        assert_ne!(report_key(other, &defaults), key_a, "content splits the report tier");
    }

    #[test]
    fn function_fingerprint_is_stable_and_body_sensitive() {
        let base = Fingerprint(11, 22);
        let a1 = function_fingerprint(base, &sample_function("f", 1));
        let a2 = function_fingerprint(base, &sample_function("f", 1));
        assert_eq!(a1, a2, "same IR, same fingerprint (HashSet order must not leak)");
        assert_ne!(a1, function_fingerprint(base, &sample_function("f", 2)), "body change");
        assert_ne!(a1, function_fingerprint(base, &sample_function("g", 1)), "name change");
        assert_ne!(a1, function_fingerprint(Fingerprint(11, 23), &sample_function("f", 1)));
    }

    /// Links `ml_src` + `program` through the real frontend/link stages
    /// and digests the resulting frozen base state.
    fn digest_of(options: &AnalysisOptions, ml_src: &str, program: cil::IrProgram) -> Fingerprint {
        use crate::pipeline::{frontend_ml, infer};
        let mut session = ffisafe_support::Session::new();
        let parsed = frontend_ml::parse(&mut session, "lib.ml", ml_src);
        let mut table = ffisafe_types::TypeTable::new();
        let ml = frontend_ml::run(&mut session, &[parsed], &mut table);
        let base = infer::link(&mut session, table, &ml, &program);
        base_state_digest(options, &base, &ml.phase1)
    }

    #[test]
    fn base_state_digest_ignores_function_bodies() {
        let options = AnalysisOptions::default();
        let ml = r#"external f : int -> int = "f""#;
        let mk = |ret_const| cil::IrProgram {
            functions: vec![sample_function("f", ret_const)],
            prototypes: vec![],
            globals: vec![],
            notes: vec![],
        };
        let a = digest_of(&options, ml, mk(1));
        assert_eq!(a, digest_of(&options, ml, mk(1)), "stable across separate links");
        assert_eq!(a, digest_of(&options, ml, mk(2)), "body edits must not invalidate siblings");
        assert_eq!(a, digest_of(&options.with_jobs(8), ml, mk(1)), "jobs width is not semantic");

        let mut other = mk(1);
        other.functions[0].name = "g".into();
        assert_ne!(a, digest_of(&options, ml, other), "signature change reshapes Γ_I");
        assert_ne!(
            a,
            digest_of(&options, r#"external f : unit -> int = "f""#, mk(1)),
            "ml declaration change reshapes the frozen arena"
        );
        let no_flow = AnalysisOptions { flow_sensitive: false, ..options };
        assert_ne!(a, digest_of(&no_flow, ml, mk(1)), "options change");
    }

    #[test]
    fn outcome_roundtrip_rebinds_local_keys() {
        let outcome = FunctionOutcome {
            name: "ml_f".into(),
            diagnostics: {
                let mut bag = DiagnosticBag::new();
                bag.push(
                    Diagnostic::new(DiagnosticCode::TypeMismatch, Span::dummy(), "boom")
                        .with_note(Span::dummy(), "declared here"),
                );
                bag.push(
                    Diagnostic::new(DiagnosticCode::UnknownOffset, Span::dummy(), "offset")
                        .with_severity(Severity::Note),
                );
                bag
            },
            passes: 3,
            new_nodes: 17,
            gc_edges: vec![
                (EffectKey::Base(4), EffectKey::Local { func: 9, raw: 80 }),
                (EffectKey::Local { func: 9, raw: 80 }, EffectKey::Base(5)),
            ],
            recorded_gc_edges: 2,
            gc_roots: vec![EffectKey::Base(4)],
            obligations: vec![ResolvedObligation {
                callee: "caml_alloc".into(),
                effect: EffectKey::Base(4),
                effect_is_gc: true,
                unprotected_heap_ptrs: vec!["tmp".into()],
                deferred_ptrs: vec![("x".into(), vec![("ml_f".into(), 0), ("helper".into(), 2)])],
                span: Span::dummy(),
            }],
            psi_violations: vec![PsiViolation {
                bound: PsiBound {
                    t: FlatInt::Known(5),
                    psi: PsiId::from_raw(7),
                    span: Span::dummy(),
                    context: "switch".into(),
                },
                reason: "too many".into(),
            }],
            psi_pins: vec![(3, PsiNode::Count(2)), (4, PsiNode::Top)],
            deferred_psi_bounds: vec![DeferredPsiBound {
                mt_key: 3,
                t: FlatInt::Top,
                span: Span::dummy(),
                context: "Val_int".into(),
            }],
            pinned_polys: vec![(0, 1, "int".into())],
            interface_pins: vec![InterfacePin {
                sig_idx: 0,
                slot: 2,
                mt_key: 44,
                rendered: "WindowT *".into(),
                func_span: Span::dummy(),
                func_name: "ml_f".into(),
            }],
            heap_slots: vec![("ml_f".into(), 1)],
            seconds: 1.25,
            setup_seconds: 0.0,
        };
        let bytes = encode_outcome(&outcome, 9).expect("resolved pins encode");
        let back = decode_outcome(&bytes, 13, "ml_f", 1).expect("decodes");
        assert_eq!(back.name, outcome.name);
        assert_eq!(back.diagnostics.len(), 2);
        assert_eq!(back.diagnostics.iter().next().unwrap().notes().len(), 1);
        assert_eq!(back.passes, 3);
        assert_eq!(
            back.gc_edges[0],
            (EffectKey::Base(4), EffectKey::Local { func: 13, raw: 80 }),
            "local keys re-bound to the replaying index"
        );
        assert_eq!(back.obligations[0].deferred_ptrs, outcome.obligations[0].deferred_ptrs);
        assert_eq!(back.psi_pins, outcome.psi_pins);
        assert_eq!(back.interface_pins[0].rendered, "WindowT *");
        assert_eq!(back.seconds, 0.0, "replayed outcomes report zero work");

        // wrong function name or too few signatures: miss, not garbage
        assert!(decode_outcome(&bytes, 13, "ml_g", 1).is_none());
        assert!(decode_outcome(&bytes, 13, "ml_f", 0).is_none());
        // truncation at every prefix: miss, never a panic
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut], 13, "ml_f", 1).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn counters_larger_than_payload_still_decode() {
        // Regression: `get_len`'s corruption guard caps values at the
        // payload byte length. A big clean function allocates far more
        // nodes than its tiny outcome payload has bytes; its counters
        // must not be read through that guard.
        let outcome = FunctionOutcome {
            name: "ml_big".into(),
            diagnostics: DiagnosticBag::new(),
            passes: 5_000,
            new_nodes: 250_000,
            gc_edges: vec![],
            recorded_gc_edges: 0,
            gc_roots: vec![],
            obligations: vec![],
            psi_violations: vec![],
            psi_pins: vec![],
            deferred_psi_bounds: vec![],
            pinned_polys: vec![],
            interface_pins: vec![],
            heap_slots: vec![],
            seconds: 0.5,
            setup_seconds: 0.0,
        };
        let bytes = encode_outcome(&outcome, 0).expect("encodes");
        assert!(outcome.new_nodes > bytes.len(), "test premise: counter exceeds payload");
        let back = decode_outcome(&bytes, 0, "ml_big", 0).expect("large counters decode");
        assert_eq!(back.passes, 5_000);
        assert_eq!(back.new_nodes, 250_000);
    }

    #[test]
    fn unresolved_psi_pins_are_not_cached() {
        let outcome = FunctionOutcome {
            name: "ml_odd".into(),
            diagnostics: DiagnosticBag::new(),
            passes: 1,
            new_nodes: 0,
            gc_edges: vec![],
            recorded_gc_edges: 0,
            gc_roots: vec![],
            obligations: vec![],
            psi_violations: vec![],
            psi_pins: vec![(7, PsiNode::Var)],
            deferred_psi_bounds: vec![],
            pinned_polys: vec![],
            interface_pins: vec![],
            heap_slots: vec![],
            seconds: 0.0,
            setup_seconds: 0.0,
        };
        assert!(encode_outcome(&outcome, 0).is_none(), "unreplayable outcome must not cache");
    }

    #[test]
    fn rust_check_fingerprint_ignores_c_bodies() {
        let options = AnalysisOptions::default();
        let import = rustffi::ast::ForeignFn {
            name: "f".into(),
            link_name: "f".into(),
            variadic: false,
            params: vec![rustffi::RustType::path("i32")],
            ret: rustffi::RustType::path("i32"),
            span: Span::dummy(),
        };
        let mut rust = rustffi::RustProgram::default();
        rust.imports.push(import);

        let mk = |ret_const| cil::IrProgram {
            functions: vec![sample_function("f", ret_const)],
            prototypes: vec![],
            globals: vec![],
            notes: vec![],
        };
        let a = rust_check_fingerprint(&options, &rust, &mk(1));
        assert_eq!(a, rust_check_fingerprint(&options, &rust, &mk(1)), "stable");
        assert_eq!(a, rust_check_fingerprint(&options, &rust, &mk(2)), "C body edits replay");

        let mut renamed = mk(1);
        renamed.functions[0].name = "g".into();
        assert_ne!(a, rust_check_fingerprint(&options, &rust, &renamed), "C signature edit");
        let mut edited = rust.clone();
        edited.imports[0].params.push(rustffi::RustType::path("i32"));
        assert_ne!(a, rust_check_fingerprint(&options, &edited, &mk(1)), "Rust surface edit");
        let no_flow = AnalysisOptions { flow_sensitive: false, ..options };
        assert_ne!(a, rust_check_fingerprint(&no_flow, &rust, &mk(1)), "options change");
    }

    #[test]
    fn standalone_diagnostics_roundtrip_with_rust_codes() {
        let mut bag = DiagnosticBag::new();
        bag.push(
            Diagnostic::new(DiagnosticCode::RustArityMismatch, Span::dummy(), "3 vs 2")
                .with_note(Span::dummy(), "declared here"),
        );
        bag.push(
            Diagnostic::new(DiagnosticCode::RustNullability, Span::dummy(), "plain pointer")
                .with_severity(Severity::Warning),
        );
        let bytes = encode_diagnostics(&bag);
        let back = decode_diagnostics(&bytes).expect("decodes");
        assert_eq!(back.len(), 2);
        let codes: Vec<_> = back.iter().map(|d| d.code()).collect();
        assert_eq!(codes, [DiagnosticCode::RustArityMismatch, DiagnosticCode::RustNullability]);
        for cut in 0..bytes.len() {
            assert!(decode_diagnostics(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn report_roundtrip() {
        let mut diagnostics = DiagnosticBag::new();
        diagnostics.push(Diagnostic::new(DiagnosticCode::TypeMismatch, Span::dummy(), "boom"));
        diagnostics.push(Diagnostic::new(DiagnosticCode::UnknownOffset, Span::dummy(), "offset"));
        let r = CachedReport {
            rendered: "glue.c:3:5: error [E001]: boom\n1 error(s)\n".into(),
            errors: 1,
            warnings: 0,
            imprecision: 2,
            diagnostics,
        };
        let bytes = encode_report(&r);
        let back = decode_report(&bytes).expect("decodes");
        assert_eq!(back.rendered, r.rendered);
        assert_eq!((back.errors, back.warnings, back.imprecision), (1, 0, 2));
        assert_eq!(back.diagnostics.len(), 2);
        assert_eq!(back.diagnostics.iter().next().unwrap().code(), DiagnosticCode::TypeMismatch);
        assert!(decode_report(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_report(b"").is_none());
    }
}
