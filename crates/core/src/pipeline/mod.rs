//! The staged analysis pipeline.
//!
//! The old driver ran both phases of the paper inside one monolithic
//! `Analyzer::analyze`. This module splits it into explicit stages with a
//! typed artifact flowing between them, all sharing one
//! [`ffisafe_support::Session`]. Parsing dispatches through the pluggable
//! [`frontend::Frontend`] registry (one implementation per language);
//! lowering then runs in stage order:
//!
//! ```text
//! frontend_ml ─▶ MlArtifact ──┐
//!                             ├─▶ infer::link ─▶ BaseState
//! frontend_c ─▶ CArtifact ──┬─┘        │
//!                           │          ▼
//! frontend_rust ─▶ RustArtifact   infer::run (parallel worker pool)
//!     (checks the C program)           │ InferArtifact
//!           │                          ▼
//!           └──▶ diagnostics      discharge ─▶ diagnostics in the Session
//! ```
//!
//! * [`frontend`] — the [`frontend::Frontend`] trait and the
//!   [`frontend::FRONTENDS`] registry corpus parsing dispatches through.
//! * [`frontend_ml`] — registers parsed OCaml files in the type
//!   repository and translates `external` signatures (Φ/ρ, Figure 4).
//! * [`frontend_c`] — lowers parsed C units to the Figure 5 IR.
//! * [`frontend_rust`] — merges `.rs` boundary surfaces and checks their
//!   `extern "C"` signatures for layout agreement against the C program
//!   (the third language pair; OCaml/C checks representation through the
//!   `value` encoding, Rust/C checks `repr`-level layout).
//! * [`infer`] — seeds the function registry (`Γ_I`), binds externals to
//!   their C definitions, then runs per-function flow-sensitive inference
//!   on a worker pool ([`ffisafe_support::AnalysisOptions::jobs`]).
//! * [`discharge`] — merges the workers' effect graphs, solves GC
//!   reachability, checks `Ψ` bounds and the whole-program practice rules.
//!
//! # Parallelism and determinism
//!
//! Per-function inference mutates the type table (unification), so workers
//! cannot share one mutable table. [`infer::link`] therefore *freezes* the
//! post-link state into an immutable, `Arc`-shared arena
//! ([`ffisafe_types::FrozenTypeTable`] plus frozen constraint, registry
//! and interner stores), and [`infer::run`] hands every worker an O(1)
//! copy-on-write *overlay*: reads fall through to the frozen base, writes
//! and fresh allocations land in a thin private layer, and overlay ids are
//! numbered exactly as a deep clone's would be. Each worker's findings are
//! reduced to plain data ([`infer::FunctionOutcome`]) whose effect ids are
//! normalized against the base state ([`infer::EffectKey`]) by walking
//! only the overlay's *delta* — the handful of base classes it actually
//! touched — and [`discharge`] merges them in function order. The result
//! is byte-for-byte identical whatever the worker count — `jobs=1` and
//! `jobs=8` produce the same report, which
//! `crates/core/tests/parallel_determinism.rs` locks in and
//! `crates/core/tests/overlay_differential.rs` cross-checks against the
//! old clone semantics on randomized operation sequences.
//!
//! # Incremental reanalysis
//!
//! Overlay isolation is also what makes the pipeline cacheable: a worker
//! reads *only* the frozen base state plus its own function's IR, so
//! [`cache::base_state_digest`] — a digest of the frozen state itself —
//! extended per function keys its [`infer::FunctionOutcome`] exactly.
//! With a `--cache-dir`, [`infer::run`] replays memoized outcomes for
//! fingerprint hits (zero workers on a warm unchanged corpus) and the
//! driver short-circuits repeated corpora entirely via a report-level
//! tier. Replay feeds [`discharge`] the same plain data a live worker
//! would have produced, so warm reports are byte-identical to cold ones
//! at any `--jobs`.

pub mod cache;
pub mod discharge;
pub mod frontend;
pub mod frontend_c;
pub mod frontend_ml;
pub mod frontend_rust;
pub mod infer;

pub use cache::{CachedReport, PipelineCache, CACHE_SCHEMA_VERSION};
pub use discharge::DischargeSummary;
pub use frontend::{Frontend, ParsedUnit, FRONTENDS};
pub use frontend_c::CArtifact;
pub use frontend_ml::MlArtifact;
pub use frontend_rust::RustArtifact;
pub use infer::{BaseState, EffectKey, FunctionOutcome, InferArtifact};
