//! Pipeline stage 3: linking and parallel per-function inference.
//!
//! [`link`] seeds the function registry (`Γ_I`) from the lowered program,
//! binds every Φ-translated `external` signature to its C definition
//! (checking arity and the trailing-`unit` practice), and freezes the
//! result as the [`BaseState`] snapshot: the type table becomes an
//! `Arc`-shared, fully path-compressed [`FrozenTypeTable`] arena, and the
//! constraints, registry and interner are frozen behind `Arc`s alongside
//! it.
//!
//! [`run`] then analyzes every function against that snapshot on a
//! `std::thread` worker pool. Unification mutates the type table, so
//! workers cannot share one mutable table; each function instead gets an
//! O(1) copy-on-write *overlay* of the frozen base. Reads fall through to
//! the shared arena; writes — re-bound base nodes, fresh allocations,
//! local constraint appends — stay private to the worker. An overlay
//! issues exactly the ids a deep clone would, so the stage stays
//! deterministic: every function sees exactly the post-link types, never
//! a sibling's in-flight unifications, and the outcome is independent of
//! scheduling and of [`AnalysisOptions::jobs`]. Cross-function facts
//! still flow — GC effect edges are exported as [`EffectKey`]s meaningful
//! across overlays and merged by the discharge stage into one
//! whole-program reachability solve.
//!
//! Each worker's post-pass normalizes what its overlay resolved. The
//! effect-class export walks the overlay's *delta* (the base GC ids the
//! worker actually re-bound) rather than rescanning every base class, so
//! per-function cost tracks what the function touched, not the size of
//! the whole base state.

use super::cache::PipelineCache;
use crate::engine::{analyze_function, AnalysisOptions};
use crate::registry::{FuncOrigin, Registry};
use ffisafe_cache::Tier;
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_support::telemetry;
use ffisafe_support::{
    Diagnostic, DiagnosticBag, DiagnosticCode, Fingerprint, Interner, Session, Span,
};
use ffisafe_types::{
    ConstraintSet, CtId, CtNode, FlatInt, FrozenTypeTable, GcId, GcNode, MtId, MtNode, PsiNode,
    PsiViolation, TypeTable,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The frozen post-link state every inference worker overlays.
///
/// The table/constraints/registry/interner exist twice here: once as the
/// `Arc`-shared frozen bases workers build O(1) overlays from, and once as
/// this struct's own overlay views (`table`, `constraints`, …) that the
/// discharge stage reads and mutates after inference completes.
#[derive(Clone, Debug)]
pub struct BaseState {
    /// The shared immutable arena every worker's table view falls back to.
    pub frozen: FrozenTypeTable,
    /// Overlay view of [`BaseState::frozen`] for post-inference stages
    /// (pristine until discharge mutates it).
    pub table: TypeTable,
    /// Overlay view of the shared post-link constraints.
    pub constraints: ConstraintSet,
    /// Overlay view of the shared function environment `Γ_I`.
    pub registry: Registry,
    /// Overlay view of the shared post-link interner.
    pub interner: Interner,
    /// Shared post-link constraints (workers overlay these).
    shared_constraints: Arc<ConstraintSet>,
    /// Shared function environment (workers overlay this).
    shared_registry: Arc<Registry>,
    /// Shared post-link interner (workers overlay this).
    shared_interner: Arc<Interner>,
    /// GC node count at snapshot time — the `Base`/`Local` boundary.
    pub gc_len: usize,
    /// GC edge count at snapshot time (workers export edges past this).
    pub edge_len: usize,
    /// Total node count at snapshot time (for per-worker growth stats).
    pub node_count: usize,
    /// Per signature, per poly param: already pinned concrete by binding.
    pub poly_concrete_at_base: Vec<Vec<bool>>,
    /// Per signature, per slot (params then return): the base-canonical
    /// raw id of the slot's `mt` — the cross-clone identity the
    /// interface-consistency check groups by.
    pub slot_keys: Vec<Vec<u32>>,
    /// Per signature, per slot: already concrete at snapshot time (such
    /// slots are checked by plain unification inside each worker).
    pub slot_concrete_at_base: Vec<Vec<bool>>,
    /// Per base GC id, its base-table canonical raw id. Workers key every
    /// exported base effect by this canonical so that clone-local
    /// union-find merges still meet at one [`EffectKey`].
    pub base_gc_canon: Vec<u32>,
    /// Base `mt` ids that are unresolved variables at snapshot time
    /// (opaque types, `'a` params) — the shared identities behind
    /// cross-clone `Ψ` pins and deferred `Ψ` bounds.
    pub open_mt_vars: Vec<u32>,
    /// `Ψ` bound count at snapshot time (workers export bounds past this).
    pub psi_bound_len: usize,
    /// Registry parameter slots *not* resolved to heap-pointer values at
    /// snapshot time: the only slots a worker's unification can newly pin
    /// heap, so the only ones it needs to rescan.
    pub heap_slot_candidates: Vec<(String, usize, CtId)>,
}

/// One function's resolution of a shared interface type.
///
/// Opaque OCaml types translate to *shared* inference variables — every
/// external mentioning `type t` points at one `mt` — so that "two
/// different C types flowing into one opaque type is a unification
/// error". Snapshot isolation hides sibling functions' pinnings from the
/// engine, so each worker exports what *it* pinned shared slots to, and
/// the discharge stage compares the ground renders across functions.
#[derive(Clone, Debug)]
pub struct InterfacePin {
    /// Signature index in `phase1.signatures`.
    pub sig_idx: usize,
    /// Slot within the signature: `0..n` are params, `n` is the return.
    pub slot: usize,
    /// Base-canonical raw id of the slot's `mt` (the grouping key).
    pub mt_key: u32,
    /// The ground type this function resolved the slot to.
    pub rendered: String,
    /// The pinning function's definition site.
    pub func_span: Span,
    /// The pinning function's name.
    pub func_name: String,
}

/// A GC effect node identity that survives the snapshot boundary.
///
/// Effect ids allocated before the snapshot (function signatures, runtime
/// constants) have the same raw index in every clone, so they merge as
/// [`EffectKey::Base`]. Ids a worker allocates inside its clone are private
/// to that function and merge as [`EffectKey::Local`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EffectKey {
    /// An effect node shared by every clone (allocated pre-snapshot).
    Base(u32),
    /// An effect node allocated by one function's worker.
    Local {
        /// Index of the function whose clone allocated the node.
        func: u32,
        /// Raw id within that clone's table.
        raw: u32,
    },
}

/// A GC-registration obligation reduced to snapshot-portable data.
#[derive(Clone, Debug)]
pub struct ResolvedObligation {
    /// Callee name (for the message).
    pub callee: String,
    /// The callee's effect, normalized.
    pub effect: EffectKey,
    /// Whether the worker already resolved the effect to the `gc` constant.
    pub effect_is_gc: bool,
    /// Live, unprotected locals holding OCaml heap pointers at the call.
    pub unprotected_heap_ptrs: Vec<String>,
    /// Live, unprotected locals whose type is still an unresolved variable
    /// in this clone but unified with one or more shared signature slots
    /// (their own parameter, an alias of it, or a callee's slot). A
    /// sibling function may pin such a slot to a heap type — discharge
    /// re-checks these against every worker's
    /// [`FunctionOutcome::heap_slots`].
    pub deferred_ptrs: Vec<(String, Vec<SlotKey>)>,
    /// Call site.
    pub span: Span,
}

/// Identity of a registry signature slot: `(function name, slot index)`,
/// where indices `0..n` are the parameters and `n` is the return. Stable
/// across clones (unlike table canonicals after local unification).
pub type SlotKey = (String, usize);

/// A `T + 1 ≤ Ψ` bound whose `Ψ` is still an unresolved variable in the
/// recording worker's clone, keyed by the base `mt` variable behind it.
///
/// The bound's own `Ψ` id is clone-local (the engine mints a fresh
/// representational type when it first examines an opaque value), so the
/// portable identity is the shared base `mt` the rep was unified into. A
/// sibling function may pin that `mt`'s `Ψ` to a count — discharge
/// re-checks these bounds against every worker's
/// [`FunctionOutcome::psi_pins`].
#[derive(Clone, Debug)]
pub struct DeferredPsiBound {
    /// Raw id of the base `mt` variable whose `Ψ` the bound constrains.
    pub mt_key: u32,
    /// The flow-sensitive value `T` at constraint-generation time.
    pub t: FlatInt,
    /// Where the constraint arose.
    pub span: Span,
    /// Short description of the construct (for diagnostics).
    pub context: String,
}

/// Everything one function's analysis produced, as plain data valid
/// outside its worker's table clone.
#[derive(Clone, Debug)]
pub struct FunctionOutcome {
    /// Function name.
    pub name: String,
    /// Diagnostics from the engine's reporting pass.
    pub diagnostics: DiagnosticBag,
    /// Fixpoint passes executed.
    pub passes: usize,
    /// Nodes the clone allocated beyond the base table.
    pub new_nodes: usize,
    /// GC edges the clone recorded beyond the base set, normalized, plus
    /// the synthetic bidirectional pairs that re-export clone-local
    /// union-find merges of base classes.
    pub gc_edges: Vec<(EffectKey, EffectKey)>,
    /// Of [`FunctionOutcome::gc_edges`], how many the engine actually
    /// recorded (the call edges — the stat the bench trajectory tracks,
    /// excluding merge-export bookkeeping).
    pub recorded_gc_edges: usize,
    /// Keys the clone resolved to the `gc` constant (reachability roots).
    pub gc_roots: Vec<EffectKey>,
    /// Deferred (App)-rule checks, pre-filtered to unprotected heap ptrs.
    pub obligations: Vec<ResolvedObligation>,
    /// `Ψ` bound violations under this clone's resolution.
    pub psi_violations: Vec<PsiViolation>,
    /// Shared open `mt`s whose `Ψ` this clone resolved: `(base mt raw,
    /// resolved node)`. Input to sibling bound re-checks in discharge.
    pub psi_pins: Vec<(u32, PsiNode)>,
    /// Bounds on `Ψ`s unresolved in this clone, deferred to discharge.
    pub deferred_psi_bounds: Vec<DeferredPsiBound>,
    /// Poly params this function pinned: `(sig idx, param idx, rendered)`.
    pub pinned_polys: Vec<(usize, usize, String)>,
    /// Shared interface slots this function resolved to a ground type.
    pub interface_pins: Vec<InterfacePin>,
    /// Registry parameter slots this clone resolved to a heap-pointer
    /// `value` that the base table had not (input to deferred-obligation
    /// re-checks in discharge).
    pub heap_slots: Vec<SlotKey>,
    /// CPU seconds this function's analysis took (snapshot setup
    /// included); see `WorkTimer` for why this is not wall clock.
    /// Never affects diagnostics; feeds the perf trajectory.
    pub seconds: f64,
    /// Of [`FunctionOutcome::seconds`], the part spent constructing the
    /// worker's snapshot view (overlay setup; formerly the deep clone).
    /// Not cached — replayed outcomes report zero, like `seconds`.
    pub setup_seconds: f64,
}

/// Output of the inference stage: one outcome per function, program order.
#[derive(Clone, Debug, Default)]
pub struct InferArtifact {
    /// Per-function outcomes in program order.
    pub outcomes: Vec<FunctionOutcome>,
    /// Total fixpoint passes.
    pub passes: usize,
    /// Total nodes allocated by workers beyond the base table.
    pub new_nodes: usize,
    /// Total GC edges recorded by workers beyond the base set.
    pub new_gc_edges: usize,
    /// Worker threads actually used.
    pub jobs: usize,
    /// The stage's total CPU work: the sum of the worker threads'
    /// lifetime CPU counters, which is scheduling-invariant across `jobs`
    /// widths (see `WorkTimer` for why wall clocks cannot measure this).
    /// Falls back to summing per-function seconds where per-thread CPU
    /// time is unavailable. Replayed cache hits contribute zero.
    pub work_seconds: f64,
    /// Of [`InferArtifact::work_seconds`], the part spent on per-worker
    /// snapshot setup rather than solving.
    pub setup_seconds: f64,
    /// The slowest single function (the stage's critical path — a lower
    /// bound on parallel wall-clock whatever the worker count).
    pub critical_path_seconds: f64,
    /// Functions whose outcome was replayed from the tier-1 cache.
    pub cache_hits: usize,
    /// Functions whose fingerprint missed the tier-1 cache (0 when the
    /// cache is disabled).
    pub cache_misses: usize,
    /// Functions actually analyzed by a live worker this run.
    pub workers_executed: usize,
}

/// Builds `Γ_I` and binds externals: registers every defined function and
/// prototype, unifies `external` signatures with their C definitions, and
/// reports untracked `value` globals (§5.1). Consumes the frontend table
/// into the returned snapshot.
pub fn link(
    session: &mut Session,
    mut table: TypeTable,
    ml: &super::MlArtifact,
    program: &cil::IrProgram,
) -> BaseState {
    let mut registry = Registry::new();
    let constraints = ConstraintSet::new();
    for f in &program.functions {
        let params: Vec<cil::CTypeExpr> =
            f.locals[..f.n_params].iter().map(|l| l.ty.clone()).collect();
        registry.register(
            &mut table,
            session.interner_mut(),
            &f.name,
            &f.ret,
            &params,
            FuncOrigin::Defined,
            f.span,
        );
    }
    for p in &program.prototypes {
        registry.register(
            &mut table,
            session.interner_mut(),
            &p.name,
            &p.ret,
            &p.params,
            FuncOrigin::Declared,
            p.span,
        );
    }

    bind_externals(session, &mut table, &mut registry, &ml.phase1);

    // `value` globals: the analysis cannot track them (§5.1)
    for (name, ty, span) in &program.globals {
        if ty.contains_value() {
            session.emit(Diagnostic::new(
                DiagnosticCode::GlobalValue,
                *span,
                format!("global variable `{name}` holds an OCaml value; it is not tracked"),
            ));
        }
    }

    let poly_concrete_at_base = ml
        .phase1
        .signatures
        .iter()
        .map(|sig| sig.poly_params.iter().map(|(_, mt)| table.mt_is_concrete(*mt)).collect())
        .collect();

    let mut slot_keys = Vec::with_capacity(ml.phase1.signatures.len());
    let mut slot_concrete_at_base = Vec::with_capacity(ml.phase1.signatures.len());
    for sig in &ml.phase1.signatures {
        let slots: Vec<_> = sig.params.iter().chain(std::iter::once(&sig.ret)).collect();
        slot_keys.push(slots.iter().map(|&&mt| table.find_mt(mt).as_raw()).collect());
        slot_concrete_at_base.push(slots.iter().map(|&&mt| table.mt_is_concrete(mt)).collect());
    }

    // Slots a worker's unification could newly pin to a heap-pointer
    // `value`: every param and return slot not already heap at the
    // snapshot. Workers rescan only these (and only functions registered
    // here can be deferred against — `resolve_call` additions inside a
    // clone never can).
    let mut heap_slot_candidates = Vec::new();
    let infos: Vec<(String, Vec<CtId>)> = registry
        .iter()
        .map(|i| (i.name.clone(), i.params.iter().copied().chain([i.ret]).collect()))
        .collect();
    for (name, slots) in infos {
        for (i, &ct) in slots.iter().enumerate() {
            let ct = table.resolve_ct(ct);
            let already_heap = match table.ct_node(ct).clone() {
                CtNode::Value(mt) => table.mt_is_heap_pointer(mt),
                _ => false,
            };
            if !already_heap {
                heap_slot_candidates.push((name.clone(), i, ct));
            }
        }
    }

    let gc_len = table.gc_count();
    let base_gc_canon =
        (0..gc_len as u32).map(|raw| table.resolve_gc(GcId::from_raw(raw)).as_raw()).collect();
    let open_mt_vars = (0..table.mt_count() as u32)
        .filter(|&raw| {
            let id = MtId::from_raw(raw);
            table.find_mt(id) == id && matches!(table.mt_node(id), MtNode::Var)
        })
        .collect();

    // Freeze: the table becomes the shared immutable arena, and the other
    // three stores go behind `Arc`s. Everything after this point — every
    // worker and the discharge stage — works on O(1) overlay views.
    let frozen = table.freeze();
    let shared_constraints = Arc::new(constraints);
    let shared_registry = Arc::new(registry);
    let shared_interner = Arc::new(session.interner().clone());

    BaseState {
        gc_len,
        edge_len: shared_constraints.gc_edge_count(),
        node_count: frozen.node_count(),
        poly_concrete_at_base,
        slot_keys,
        slot_concrete_at_base,
        base_gc_canon,
        open_mt_vars,
        psi_bound_len: shared_constraints.psi_bound_count(),
        heap_slot_candidates,
        table: frozen.overlay(),
        constraints: ConstraintSet::overlay(shared_constraints.clone()),
        registry: Registry::overlay(shared_registry.clone()),
        interner: Interner::overlay(shared_interner.clone()),
        frozen,
        shared_constraints,
        shared_registry,
        shared_interner,
    }
}

/// Unifies each `Φ`-translated external signature with its C definition,
/// checking arity and the trailing-`unit` practice.
fn bind_externals(
    session: &mut Session,
    table: &mut TypeTable,
    registry: &mut Registry,
    phase1: &ocaml::translate::Phase1,
) {
    for (idx, sig) in phase1.signatures.iter().enumerate() {
        // bytecode stubs (value *argv, int argn) are not checked
        if let Some(byte) = &sig.byte_c_name {
            if let Some(info) = registry.get(session.interner(), byte) {
                let skip = info.params.len() == 2;
                let effect = info.effect;
                registry.set_external_index(session.interner(), byte, idx);
                if !skip {
                    // unusual: treat like the native variant below
                }
                table.unify_gc(effect, sig.effect);
            }
        }
        let Some(info) = registry.get(session.interner(), &sig.c_name).cloned() else {
            continue; // defined in a library we are not analyzing
        };
        registry.set_external_index(session.interner(), &sig.c_name, idx);
        table.unify_gc(info.effect, sig.effect);
        let n_ml = sig.params.len();
        let m = info.params.len();
        let span = sig.span;
        if m < n_ml && sig.unit_params[m..].iter().all(|&u| u) {
            session.emit(
                Diagnostic::new(
                    DiagnosticCode::TrailingUnitParameter,
                    span,
                    format!(
                        "external `{}` declares {} trailing unit parameter(s) that `{}` does not take; the unit is passed on the stack",
                        sig.ml_name,
                        n_ml - m,
                        sig.c_name
                    ),
                )
                .with_note(info.span, "C definition is here".to_string()),
            );
        } else if m != n_ml {
            session.emit(
                Diagnostic::new(
                    DiagnosticCode::ArityMismatch,
                    span,
                    format!(
                        "external `{}` has arity {} but `{}` takes {} parameter(s)",
                        sig.ml_name, n_ml, sig.c_name, m
                    ),
                )
                .with_note(info.span, "C definition is here".to_string()),
            );
        }
        let n_unify = m.min(n_ml);
        for i in 0..n_unify {
            let want = table.ct_value(sig.params[i]);
            if let Err(e) = table.unify_ct(info.params[i], want) {
                session.emit(
                    Diagnostic::new(
                        DiagnosticCode::TypeMismatch,
                        span,
                        format!(
                            "parameter {} of `{}` does not match its OCaml declaration: {}",
                            i + 1,
                            sig.c_name,
                            e
                        ),
                    )
                    .with_note(info.span, "C definition is here".to_string()),
                );
            }
        }
        let want_ret = table.ct_value(sig.ret);
        if let Err(e) = table.unify_ct(info.ret, want_ret) {
            session.emit(Diagnostic::new(
                DiagnosticCode::TypeMismatch,
                span,
                format!(
                    "return type of `{}` does not match its OCaml declaration: {}",
                    sig.c_name, e
                ),
            ));
        }
    }
}

/// Runs per-function inference over `program` on a worker pool sized by
/// [`AnalysisOptions::jobs`]. Outcomes are collected in program order, so
/// the artifact is identical for any worker count.
///
/// With a [`PipelineCache`], every function is first fingerprinted against
/// the cache's base-surface digest; hits replay the memoized
/// [`FunctionOutcome`] and **no worker runs for them**. Only misses reach
/// the pool, and their fresh outcomes are stored back. Because a replayed
/// outcome is byte-for-byte the plain data a worker would have produced,
/// warm runs stay report-identical to cold runs at any worker count.
pub fn run(
    session: &Session,
    base: &BaseState,
    program: &cil::IrProgram,
    phase1: &ocaml::translate::Phase1,
    cache: Option<&PipelineCache>,
) -> InferArtifact {
    let options = *session.options();
    let n = program.functions.len();
    if n == 0 {
        return InferArtifact { jobs: 0, ..InferArtifact::default() };
    }

    // Tier-1 probe: replay every hit, queue every miss. Fingerprinting
    // walks each function's whole IR, so it runs on the worker pool; only
    // the store lookups (small file reads) stay serial.
    let mut slots: Vec<Option<FunctionOutcome>> = (0..n).map(|_| None).collect();
    let mut fingerprints: Vec<Option<Fingerprint>> = vec![None; n];
    if let Some(pc) = cache {
        let base_digest = pc.base_digest;
        let fp_jobs = options.effective_jobs().clamp(1, n);
        if fp_jobs > 1 {
            let next = AtomicUsize::new(0);
            let cells: Vec<Mutex<Option<Fingerprint>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..fp_jobs {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let fp = super::cache::function_fingerprint(
                            base_digest,
                            &program.functions[idx],
                        );
                        *cells[idx].lock().unwrap() = Some(fp);
                    });
                }
            });
            for (slot, cell) in fingerprints.iter_mut().zip(cells) {
                *slot = cell.into_inner().unwrap();
            }
        } else {
            for (slot, func) in fingerprints.iter_mut().zip(&program.functions) {
                *slot = Some(super::cache::function_fingerprint(base_digest, func));
            }
        }
        for (idx, func) in program.functions.iter().enumerate() {
            let fp = fingerprints[idx].expect("computed above");
            if let Some(bytes) = pc.get(Tier::Function, fp) {
                slots[idx] = super::cache::decode_outcome(
                    &bytes,
                    idx as u32,
                    &func.name,
                    phase1.signatures.len(),
                );
            }
        }
    }
    let cache_hits = slots.iter().filter(|s| s.is_some()).count();
    let todo: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    let cache_misses = if cache.is_some() { todo.len() } else { 0 };
    let workers_executed = todo.len();

    let jobs = options.effective_jobs().clamp(1, todo.len().max(1));
    // Per-thread lifetime CPU totals: the per-function timers are clipped
    // to scheduler quanta, so only these telescoping sums give the stage's
    // true total work. `None` entries mean the interface is unavailable
    // and the artifact falls back to summing per-function seconds.
    let mut thread_work: Vec<Option<f64>> = Vec::new();
    if !todo.is_empty() {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<FunctionOutcome>>> =
            todo.iter().map(|_| Mutex::new(None)).collect();
        let worked: Vec<Mutex<Option<f64>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let (next, results, todo, options) = (&next, &results, &todo, &options);
            for w in 0..jobs {
                let worked = &worked[w];
                scope.spawn(move || {
                    let cpu_start = thread_work_seconds();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= todo.len() {
                            break;
                        }
                        let idx = todo[t];
                        // `infer.solve` spans only wrap actually-executed
                        // workers (cache misses), so a warm run emits none.
                        let _span = telemetry::span_with("infer.solve", || {
                            vec![
                                ("function", program.functions[idx].name.clone()),
                                ("index", idx.to_string()),
                            ]
                        });
                        let outcome =
                            analyze_one(base, &program.functions[idx], phase1, idx as u32, options);
                        *results[t].lock().unwrap() = Some(outcome);
                    }
                    let delta = cpu_start
                        .zip(thread_work_seconds())
                        .map(|(start, end)| (end - start).max(0.0));
                    *worked.lock().unwrap() = delta;
                    // Scoped joins don't wait for thread-local teardown, so
                    // the spans must be handed off before the closure ends.
                    telemetry::flush_thread();
                });
            }
        });
        thread_work = worked.into_iter().map(|cell| cell.into_inner().unwrap()).collect();
        for (t, cell) in results.into_iter().enumerate() {
            let outcome = cell.into_inner().unwrap().expect("worker completed every claimed index");
            let idx = todo[t];
            if let (Some(pc), Some(fp)) = (cache, fingerprints[idx]) {
                // An unencodable outcome or failed write only loses future
                // warm hits; never fail the analysis over it.
                if let Some(payload) = super::cache::encode_outcome(&outcome, idx as u32) {
                    pc.put(Tier::Function, fp, &payload);
                }
            }
            slots[idx] = Some(outcome);
        }
    }

    let outcomes: Vec<FunctionOutcome> =
        slots.into_iter().map(|s| s.expect("every function replayed or analyzed")).collect();
    // Prefer the telescoping per-thread CPU totals (exact whatever the
    // contention); the per-function sum is the portable fallback.
    let work_seconds = if !thread_work.is_empty() && thread_work.iter().all(Option::is_some) {
        thread_work.iter().map(|w| w.unwrap()).sum()
    } else {
        outcomes.iter().map(|o| o.seconds).sum()
    };
    InferArtifact {
        passes: outcomes.iter().map(|o| o.passes).sum(),
        new_nodes: outcomes.iter().map(|o| o.new_nodes).sum(),
        new_gc_edges: outcomes.iter().map(|o| o.recorded_gc_edges).sum(),
        jobs,
        work_seconds,
        setup_seconds: outcomes.iter().map(|o| o.setup_seconds).sum(),
        critical_path_seconds: outcomes.iter().map(|o| o.seconds).fold(0.0, f64::max),
        cache_hits,
        cache_misses,
        workers_executed,
        outcomes,
    }
}

/// Measures the CPU time one worker thread spends on one function.
///
/// Work accounting feeds [`InferArtifact::work_seconds`], which the bench
/// suite compares across `--jobs` widths. With more workers than cores a
/// wall clock bills each worker for time it sat *descheduled* while a
/// sibling held the core, so "total work" would appear to inflate with
/// parallelism even though no extra computation happened. Per-thread CPU
/// time (Linux `schedstat`) is scheduling-invariant but coarse: the
/// counter only advances at scheduler events (ticks, context switches),
/// so a per-function delta is either zero or a whole multi-millisecond
/// quantum. Per-function `seconds` therefore reports the *smaller* of the
/// CPU delta and the wall clock — exact when the function ran
/// uninterrupted, and clipped to on-CPU time when it was preempted.
/// Stage-total work uses per-thread lifetime counters instead
/// ([`thread_work_seconds`]), which telescope to the true total. Where
/// `schedstat` does not exist, everything falls back to wall clock.
struct WorkTimer {
    wall: std::time::Instant,
    cpu_ns: Option<u64>,
}

impl WorkTimer {
    fn start() -> Self {
        Self { wall: std::time::Instant::now(), cpu_ns: thread_cpu_ns() }
    }

    /// Wall seconds since `start`. Used for the overlay-setup split: the
    /// setup is a handful of `Arc` clones, far below the CPU counter's
    /// quantum, and short enough that a mid-setup preemption is rare.
    fn wall_seconds(&self) -> f64 {
        self.wall.elapsed().as_secs_f64()
    }

    fn elapsed_seconds(&self) -> f64 {
        let wall = self.wall.elapsed().as_secs_f64();
        match (self.cpu_ns, thread_cpu_ns()) {
            (Some(start), Some(now)) => (now.saturating_sub(start) as f64 * 1e-9).min(wall),
            _ => wall,
        }
    }
}

/// Nanoseconds this thread has spent on-CPU (first field of the Linux
/// per-thread `schedstat`). `None` where the interface does not exist
/// (non-Linux); zero until the thread's first scheduler event.
fn thread_cpu_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// A worker thread's total on-CPU seconds so far, read at a forced
/// scheduler event so the counter is current to the nanosecond.
/// [`std::thread::yield_now`] drives the kernel through `update_curr`,
/// flushing the running slice into `schedstat` before the read; without
/// it the boundary reads would be stale by up to a tick. `None` where the
/// interface does not exist.
fn thread_work_seconds() -> Option<f64> {
    std::thread::yield_now();
    thread_cpu_ns().map(|ns| ns as f64 * 1e-9)
}

/// Analyzes one function on a fresh overlay of the frozen base state and
/// reduces the result to snapshot-portable data.
fn analyze_one(
    base: &BaseState,
    func: &cil::ir::IrFunction,
    phase1: &ocaml::translate::Phase1,
    func_idx: u32,
    options: &AnalysisOptions,
) -> FunctionOutcome {
    let timer = WorkTimer::start();
    let mut table = base.frozen.overlay();
    let mut constraints = ConstraintSet::overlay(base.shared_constraints.clone());
    let mut registry = Registry::overlay(base.shared_registry.clone());
    let mut interner = Interner::overlay(base.shared_interner.clone());
    let setup_seconds = timer.wall_seconds();

    let result =
        analyze_function(&mut table, &mut constraints, &mut registry, &mut interner, options, func);

    // Every exported base effect is keyed by its *base-table* canonical, so
    // keys agree across workers even when this clone's unification gave the
    // class a different (or clone-local) canonical.
    let keyed = |table: &mut TypeTable, id: GcId| -> (EffectKey, bool) {
        let canon = table.resolve_gc(id);
        let is_gc = matches!(table.gc_node(canon), GcNode::Gc);
        let key = if (canon.as_raw() as usize) < base.gc_len {
            EffectKey::Base(base.base_gc_canon[canon.as_raw() as usize])
        } else if (id.as_raw() as usize) < base.gc_len {
            EffectKey::Base(base.base_gc_canon[id.as_raw() as usize])
        } else {
            EffectKey::Local { func: func_idx, raw: canon.as_raw() }
        };
        (key, is_gc)
    };

    let mut gc_edges = Vec::new();
    let mut gc_roots = Vec::new();

    // Union-find merges over base effect ids (e.g. `unify_gc` under a
    // function-type unification) happen only in this overlay; siblings
    // still see the unmerged classes. Export each changed class as
    // bidirectional edges between its base representatives — and as roots
    // when the class resolved to the `gc` constant — so the discharge
    // reachability solve reunites them.
    //
    // The unifier writes GC nodes only as links onto resolved canonicals
    // and the frozen base is fully path-compressed, so every base class
    // whose canonical or constant changed has at least one member in the
    // overlay delta. Candidate representatives are therefore exactly: the
    // base canonical of each re-bound id, plus — when a re-bound id now
    // resolves to another *base* id — that id's base canonical (the
    // unchanged representative whose class gained members). Walking the
    // delta instead of all `0..gc_len` classes is what makes this export
    // O(touched), and the `BTreeSet` keeps member order identical to the
    // old ascending full scan.
    let overlay_keys = table.gc_overlay_keys();
    let mut candidate_reps: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for &raw in &overlay_keys {
        candidate_reps.insert(base.base_gc_canon[raw as usize]);
        let canon = table.resolve_gc(GcId::from_raw(raw));
        if (canon.as_raw() as usize) < base.gc_len {
            candidate_reps.insert(base.base_gc_canon[canon.as_raw() as usize]);
        }
    }
    let mut merged: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for &raw in &candidate_reps {
        let clone_canon = table.resolve_gc(GcId::from_raw(raw));
        merged.entry(clone_canon.as_raw()).or_default().push(raw);
    }
    for (canon_raw, members) in merged {
        let is_gc = matches!(table.gc_node(GcId::from_raw(canon_raw)), GcNode::Gc);
        let base_is_gc = matches!(base.frozen.gc_node(GcId::from_raw(members[0])), GcNode::Gc);
        if members.len() == 1 && canon_raw == members[0] && is_gc == base_is_gc {
            continue; // class unchanged from the snapshot
        }
        if is_gc {
            gc_roots.extend(members.iter().map(|&m| EffectKey::Base(m)));
        }
        for w in members.windows(2) {
            gc_edges.push((EffectKey::Base(w[0]), EffectKey::Base(w[1])));
            gc_edges.push((EffectKey::Base(w[1]), EffectKey::Base(w[0])));
        }
        if (canon_raw as usize) >= base.gc_len {
            // local edges name the clone-local canonical; tie it to the class
            let local = EffectKey::Local { func: func_idx, raw: canon_raw };
            gc_edges.push((local, EffectKey::Base(members[0])));
            gc_edges.push((EffectKey::Base(members[0]), local));
        }
    }
    let delta = base.edge_len.min(constraints.gc_edge_count());
    let edges: Vec<(GcId, GcId)> = constraints.gc_edges_from(delta).collect();
    let recorded_gc_edges = edges.len();
    for (lo, hi) in edges {
        let (kl, gl) = keyed(&mut table, lo);
        let (kh, gh) = keyed(&mut table, hi);
        if gl {
            gc_roots.push(kl);
        }
        if gh {
            gc_roots.push(kh);
        }
        gc_edges.push((kl, kh));
    }

    // Resolve every shared candidate slot once in this clone: the slots
    // that resolved to heap pointers are this function's heap pins; the
    // rest index the deferred liveness checks below.
    let resolved_candidates: Vec<(CtId, bool)> = base
        .heap_slot_candidates
        .iter()
        .map(|&(_, _, ct)| {
            let ct = table.resolve_ct(ct);
            let heap = match table.ct_node(ct).clone() {
                CtNode::Value(mt) => table.mt_is_heap_pointer(mt),
                _ => false,
            };
            (ct, heap)
        })
        .collect();
    let heap_slots: Vec<SlotKey> = base
        .heap_slot_candidates
        .iter()
        .zip(&resolved_candidates)
        .filter(|&(_, &(_, heap))| heap)
        .map(|((name, i, _), _)| (name.clone(), *i))
        .collect();
    let mut slots_by_ct: std::collections::HashMap<CtId, Vec<usize>> =
        std::collections::HashMap::new();
    for (idx, &(ct, heap)) in resolved_candidates.iter().enumerate() {
        if !heap {
            slots_by_ct.entry(ct).or_default().push(idx);
        }
    }

    // A live local whose type is still a variable here may be unified with
    // shared signature slots — its own parameter slot, an alias of one, or
    // a callee's param/return slot — that a sibling function pins to a
    // heap type this clone cannot see. Defer those liveness checks to
    // discharge under every matching slot's stable identity.
    let mut obligations = Vec::new();
    for ob in result.obligations {
        let mut unprotected = Vec::new();
        let mut deferred = Vec::new();
        for (name, ct) in &ob.live {
            if ob.protected.contains(name) {
                continue;
            }
            let ct = table.resolve_ct(*ct);
            let unresolved = match table.ct_node(ct).clone() {
                CtNode::Value(mt) => {
                    if table.mt_is_heap_pointer(mt) {
                        unprotected.push(name.clone());
                        false
                    } else {
                        !table.mt_is_ground(mt)
                    }
                }
                CtNode::Var => true,
                _ => false,
            };
            if unresolved {
                if let Some(idxs) = slots_by_ct.get(&ct) {
                    let keys: Vec<SlotKey> = idxs
                        .iter()
                        .map(|&i| {
                            let (name, slot, _) = &base.heap_slot_candidates[i];
                            (name.clone(), *slot)
                        })
                        .collect();
                    deferred.push((name.clone(), keys));
                }
            }
        }
        if unprotected.is_empty() && deferred.is_empty() {
            continue;
        }
        let (effect, effect_is_gc) = keyed(&mut table, ob.effect);
        obligations.push(ResolvedObligation {
            callee: ob.callee,
            effect,
            effect_is_gc,
            unprotected_heap_ptrs: unprotected,
            deferred_ptrs: deferred,
            span: ob.span,
        });
    }

    let psi_violations = constraints.check_psi_bounds(&table);

    // Ψ facts behind the shared open mts. A `Ψ` this clone resolved is a
    // pin siblings' deferred bounds are checked against; a `Ψ` still
    // unresolved here carries this clone's bounds to discharge.
    let mut psi_pins = Vec::new();
    let mut open_psis = Vec::new();
    for &raw in &base.open_mt_vars {
        let mt = table.resolve_mt(MtId::from_raw(raw));
        if let MtNode::Rep(psi, _) = *table.mt_node(mt) {
            let psi = table.resolve_psi(psi);
            match table.psi_node(psi) {
                node @ (PsiNode::Count(_) | PsiNode::Top) => psi_pins.push((raw, node)),
                PsiNode::Var => open_psis.push((raw, psi)),
                PsiNode::Link(_) => unreachable!("resolved"),
            }
        }
    }
    let deferred_psi_bounds: Vec<DeferredPsiBound> = constraints
        .psi_bounds_from(base.psi_bound_len.min(constraints.psi_bound_count()))
        .filter_map(|b| {
            let canon = table.find_psi(b.psi);
            if !matches!(table.psi_node(canon), PsiNode::Var) {
                return None; // resolved here: already checked in-clone
            }
            let mt_key = open_psis.iter().find(|&&(_, p)| p == canon)?.0;
            Some(DeferredPsiBound { mt_key, t: b.t, span: b.span, context: b.context.clone() })
        })
        .collect();

    let mut pinned_polys = Vec::new();
    for (sig_idx, sig) in phase1.signatures.iter().enumerate() {
        for (param_idx, (_, mt)) in sig.poly_params.iter().enumerate() {
            if base.poly_concrete_at_base[sig_idx][param_idx] {
                continue;
            }
            if table.mt_is_concrete(*mt) {
                pinned_polys.push((sig_idx, param_idx, table.render_mt(*mt)));
            }
        }
    }

    // Shared interface slots this function resolved to a ground type,
    // restricted to the function's *own* signature — the slots it pins by
    // construction rather than observes transitively. Ground renders carry
    // no variable indices, so discharge can compare them textually across
    // clones.
    let mut interface_pins = Vec::new();
    for (sig_idx, sig) in phase1.signatures.iter().enumerate() {
        let is_own =
            sig.c_name == func.name || sig.byte_c_name.as_deref() == Some(func.name.as_str());
        if !is_own {
            continue;
        }
        let slots: Vec<_> = sig.params.iter().chain(std::iter::once(&sig.ret)).collect();
        for (slot, &&mt) in slots.iter().enumerate() {
            if base.slot_concrete_at_base[sig_idx][slot] {
                continue;
            }
            if table.mt_is_ground(mt) {
                interface_pins.push(InterfacePin {
                    sig_idx,
                    slot,
                    mt_key: base.slot_keys[sig_idx][slot],
                    rendered: table.render_mt(mt),
                    func_span: func.span,
                    func_name: func.name.clone(),
                });
            }
        }
    }

    FunctionOutcome {
        name: func.name.clone(),
        diagnostics: result.diagnostics,
        passes: result.passes,
        new_nodes: table.node_count().saturating_sub(base.node_count),
        gc_edges,
        recorded_gc_edges,
        gc_roots,
        obligations,
        psi_violations,
        psi_pins,
        deferred_psi_bounds,
        pinned_polys,
        interface_pins,
        heap_slots,
        seconds: timer.elapsed_seconds(),
        setup_seconds,
    }
}
