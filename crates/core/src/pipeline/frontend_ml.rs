//! Pipeline stage 1: the OCaml frontend (§3.1, §5.1).
//!
//! Parses `.ml` sources into the session, builds the central type
//! repository, and translates every `external` declaration through the
//! Φ/ρ mapping of Figure 4, producing the [`MlArtifact`] that seeds the
//! initial environment `Γ_I` of the C phase.

use ffisafe_ocaml as ocaml;
use ffisafe_support::{Diagnostic, DiagnosticCode, Session, Severity};
use ffisafe_types::TypeTable;

/// Output of the OCaml frontend stage.
#[derive(Debug)]
pub struct MlArtifact {
    /// The central type repository, built from every parsed file.
    pub repo: ocaml::TypeRepository,
    /// Φ-translated `external` signatures (phase 1 of the paper).
    pub phase1: ocaml::translate::Phase1,
}

/// Parses one OCaml source into the session: registers the file in the
/// session source map, interns every declared name, and reports parse
/// errors to the session's diagnostic sink.
pub fn parse(session: &mut Session, name: &str, src: &str) -> ocaml::ParsedFile {
    let file = session.add_file(name, src);
    let parsed = ocaml::parser::parse(file, src);
    for e in &parsed.errors {
        session.emit(
            Diagnostic::new(DiagnosticCode::Context, e.span, e.message.clone())
                .with_severity(Severity::Note),
        );
    }
    for item in &parsed.items {
        match item {
            ocaml::Item::Type(d) => {
                session.intern(&d.name);
            }
            ocaml::Item::External(e) => {
                session.intern(&e.ml_name);
                for c_name in &e.c_names {
                    session.intern(c_name);
                }
            }
        }
    }
    parsed
}

/// Runs the stage: registers all parsed files and translates the
/// externals into `table`.
pub fn run(
    session: &mut Session,
    files: &[ocaml::ParsedFile],
    table: &mut TypeTable,
) -> MlArtifact {
    let mut repo = ocaml::TypeRepository::new();
    for f in files {
        repo.register_file(f);
    }
    let externals: Vec<ocaml::ExternalDecl> = files
        .iter()
        .flat_map(|f| f.items.iter())
        .filter_map(|i| match i {
            ocaml::Item::External(e) => Some(e.clone()),
            _ => None,
        })
        .collect();
    let phase1 = ocaml::translate::translate_program(&repo, &externals, table);
    for issue in &phase1.issues {
        match issue {
            // Note severity: the per-use imprecision (P005) is the engine's
            // report; the declaration-level issue is context for it, and
            // must not disturb the Figure 9 counts.
            ocaml::translate::TranslateIssue::PolyVariant { span, external } => {
                session.emit(
                    Diagnostic::new(
                        DiagnosticCode::PolymorphicVariant,
                        *span,
                        format!(
                            "external `{external}` involves a polymorphic variant type, which the analysis does not model; reports touching it may be spurious"
                        ),
                    )
                    .with_severity(Severity::Note),
                );
            }
            ocaml::translate::TranslateIssue::UnknownType { name, span } => {
                session.emit(
                    Diagnostic::new(
                        DiagnosticCode::Context,
                        *span,
                        format!("type `{name}` has no declaration here; treated as opaque"),
                    )
                    .with_severity(Severity::Note),
                );
            }
        }
    }
    MlArtifact { repo, phase1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_interns_declared_names_into_session() {
        let mut session = Session::new();
        let parsed = parse(
            &mut session,
            "t.ml",
            r#"
                type t = A of int | B
                external examine : t -> int = "ml_examine"
            "#,
        );
        assert_eq!(parsed.items.len(), 2);
        assert!(session.interner().get("t").is_some());
        assert!(session.interner().get("examine").is_some());
        assert!(session.interner().get("ml_examine").is_some());
    }

    #[test]
    fn run_translates_externals() {
        let mut session = Session::new();
        let parsed = parse(&mut session, "t.ml", r#"external double : int -> int = "ml_double""#);
        let mut table = TypeTable::new();
        let ml = run(&mut session, &[parsed], &mut table);
        assert_eq!(ml.phase1.signatures.len(), 1);
        assert!(ml.phase1.signature_for_c("ml_double").is_some());
    }

    #[test]
    fn parse_errors_land_in_session_sink() {
        let mut session = Session::new();
        let _ = parse(&mut session, "bad.ml", "type = = =");
        assert!(!session.diagnostics().is_empty());
    }
}
