//! The pluggable frontend boundary: one trait every language frontend
//! implements, and the registry the corpus parser dispatches through.
//!
//! A frontend owns one side of a language pair: it claims corpus files by
//! [`SourceKind`], parses each into the shared [`Session`] (registering
//! the file in the source map, interning declared names, and reporting
//! parse errors to the diagnostic sink), and hands back a typed
//! [`ParsedUnit`]. Lowering stays stage-typed — the artifacts feed each
//! other (the Rust boundary check consumes the C frontend's lowered
//! program), so each stage's `run` keeps its concrete signature and
//! [`crate::api`] sequences them in [`FRONTENDS`] order under each
//! frontend's [`Phase`].
//!
//! Adding a language pair means implementing [`Frontend`], appending the
//! implementation to [`FRONTENDS`], and giving its lowering a stage module
//! next to [`super::frontend_ml`], [`super::frontend_c`] and
//! [`super::frontend_rust`].

use super::{frontend_c, frontend_ml, frontend_rust};
use crate::api::SourceKind;
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_rustffi as rustffi;
use ffisafe_support::{Phase, Session};

/// One corpus file parsed by some frontend, still carrying its
/// language-typed payload.
#[derive(Debug)]
pub enum ParsedUnit {
    /// An OCaml interface/implementation file.
    Ml(ocaml::ParsedFile),
    /// A C translation unit.
    C(cil::CUnit),
    /// The boundary surface of a Rust file.
    Rust(rustffi::ParsedRustFile),
}

/// A language frontend behind the pipeline's parsing stage.
///
/// Implementations must be stateless (the registry shares one `'static`
/// instance across concurrent analyses); all per-run state lives in the
/// [`Session`] threaded through [`Frontend::parse`].
pub trait Frontend: Sync {
    /// Stable identifier, used in telemetry labels and cache recipes.
    fn id(&self) -> &'static str;

    /// The pipeline phase this frontend's lowering is timed and traced
    /// under ([`Phase::span_name`] names the emitted span).
    fn phase(&self) -> Phase;

    /// Whether this frontend claims corpus files of `kind`.
    fn handles(&self, kind: SourceKind) -> bool;

    /// Parses one source into the session: registers the file in the
    /// source map, interns declared names, and reports parse errors to the
    /// session's diagnostic sink. Never fails — frontends recover and
    /// return a partial unit.
    fn parse(&self, session: &mut Session, name: &str, src: &str) -> ParsedUnit;
}

/// The OCaml frontend: `external` declarations and type definitions
/// (`.ml`/`.mli`).
pub struct MlFrontend;

impl Frontend for MlFrontend {
    fn id(&self) -> &'static str {
        "ml"
    }

    fn phase(&self) -> Phase {
        Phase::FrontendMl
    }

    fn handles(&self, kind: SourceKind) -> bool {
        kind == SourceKind::Ml
    }

    fn parse(&self, session: &mut Session, name: &str, src: &str) -> ParsedUnit {
        ParsedUnit::Ml(frontend_ml::parse(session, name, src))
    }
}

/// The C frontend: glue code lowered to the Figure 5 IR (`.c`/`.h`).
pub struct CFrontend;

impl Frontend for CFrontend {
    fn id(&self) -> &'static str {
        "c"
    }

    fn phase(&self) -> Phase {
        Phase::FrontendC
    }

    fn handles(&self, kind: SourceKind) -> bool {
        kind == SourceKind::C
    }

    fn parse(&self, session: &mut Session, name: &str, src: &str) -> ParsedUnit {
        ParsedUnit::C(frontend_c::parse(session, name, src))
    }
}

/// The Rust frontend: `extern "C"` boundary surfaces (`.rs`), checked for
/// layout agreement against the C program.
pub struct RustFrontend;

impl Frontend for RustFrontend {
    fn id(&self) -> &'static str {
        "rust"
    }

    fn phase(&self) -> Phase {
        Phase::FrontendRust
    }

    fn handles(&self, kind: SourceKind) -> bool {
        kind == SourceKind::Rust
    }

    fn parse(&self, session: &mut Session, name: &str, src: &str) -> ParsedUnit {
        ParsedUnit::Rust(frontend_rust::parse(session, name, src))
    }
}

/// Every registered frontend, in pipeline stage order.
pub static FRONTENDS: [&dyn Frontend; 3] = [&MlFrontend, &CFrontend, &RustFrontend];

/// The frontend owning files of `kind`. Total: every [`SourceKind`] is
/// claimed by exactly one registered frontend, which the registry test
/// locks in.
pub fn frontend_for(kind: SourceKind) -> &'static dyn Frontend {
    FRONTENDS
        .iter()
        .copied()
        .find(|f| f.handles(kind))
        .expect("every source kind has a registered frontend")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_claims_every_kind_exactly_once() {
        for kind in [SourceKind::Ml, SourceKind::C, SourceKind::Rust] {
            let claims = FRONTENDS.iter().filter(|f| f.handles(kind)).count();
            assert_eq!(claims, 1, "{kind:?} must have exactly one frontend");
        }
        assert_eq!(frontend_for(SourceKind::Ml).id(), "ml");
        assert_eq!(frontend_for(SourceKind::C).id(), "c");
        assert_eq!(frontend_for(SourceKind::Rust).id(), "rust");
    }

    #[test]
    fn ids_and_phases_are_distinct() {
        let ids: Vec<_> = FRONTENDS.iter().map(|f| f.id()).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate frontend id: {ids:?}");
        let phases: Vec<_> = FRONTENDS.iter().map(|f| f.phase()).collect();
        assert_eq!(phases, [Phase::FrontendMl, Phase::FrontendC, Phase::FrontendRust]);
    }

    #[test]
    fn parse_dispatches_to_the_claimed_frontend() {
        let mut session = Session::new();
        let unit = frontend_for(SourceKind::Rust).parse(
            &mut session,
            "lib.rs",
            r#"extern "C" { fn f(x: i32) -> i32; }"#,
        );
        match unit {
            ParsedUnit::Rust(file) => assert_eq!(file.imports.len(), 1),
            other => panic!("expected a Rust unit, got {other:?}"),
        }
        let unit = frontend_for(SourceKind::C).parse(&mut session, "a.c", "int f(int x);");
        assert!(matches!(unit, ParsedUnit::C(_)));
        let unit = frontend_for(SourceKind::Ml).parse(&mut session, "a.ml", "type t");
        assert!(matches!(unit, ParsedUnit::Ml(_)));
    }
}
