//! Pipeline stage 2½: the Rust frontend — the third language pair.
//!
//! Where [`super::frontend_ml`]/[`super::frontend_c`] check *runtime
//! representation agreement* through the OCaml `value` encoding, this
//! stage checks *layout agreement* across `extern "C"`: it merges the
//! boundary surfaces parsed out of the corpus's `.rs` files into one
//! [`ffisafe_rustffi::RustProgram`] and compares every import/export
//! signature against the C program lowered by the C frontend, emitting
//! `E011`–`E014` / `W004` diagnostics through the session sink.
//!
//! The whole boundary check is memoized as **one tier-1 cache entry**
//! keyed by [`super::cache::rust_check_fingerprint`] — the merged Rust
//! surface plus the C signature surface (never C function bodies). A C
//! body edit or an `.ml` edit leaves the key unchanged; any `.rs`
//! boundary edit or C signature edit invalidates exactly this entry while
//! every per-function OCaml/C outcome survives (the Rust surface never
//! reaches [`super::cache::base_state_digest`]).

use super::cache::{self, PipelineCache};
use ffisafe_cache::Tier;
use ffisafe_cil as cil;
use ffisafe_rustffi as rustffi;
use ffisafe_support::{Diagnostic, DiagnosticCode, Session, Severity};

/// Output of the Rust frontend stage: the merged corpus boundary surface.
#[derive(Debug, Default)]
pub struct RustArtifact {
    /// Every import, export, type declaration and alias across the
    /// corpus's `.rs` files.
    pub program: rustffi::RustProgram,
    /// Whether the boundary check was replayed from the cache instead of
    /// recomputed.
    pub check_cached: bool,
}

/// Parses one Rust source into the session: registers the file in the
/// session source map and reports recoverable parse errors to the
/// session's diagnostic sink, exactly like the C frontend does.
pub fn parse(session: &mut Session, name: &str, src: &str) -> rustffi::ParsedRustFile {
    let file = session.add_file(name, src);
    let parsed = rustffi::parser::parse(file, name, src);
    for (span, msg) in &parsed.errors {
        session.emit(
            Diagnostic::new(DiagnosticCode::Context, *span, msg.clone())
                .with_severity(Severity::Note),
        );
    }
    parsed
}

/// Runs the stage: merges the parsed files, interns every boundary link
/// name, and checks the surface against the C program (replaying the
/// memoized verdict when the cache already holds it).
pub fn run(
    session: &mut Session,
    files: &[rustffi::ParsedRustFile],
    c: &cil::IrProgram,
    pcache: Option<&PipelineCache>,
) -> RustArtifact {
    let program = rustffi::RustProgram::merge(files);
    for f in &program.imports {
        session.intern(&f.link_name);
    }
    for s in &program.statics {
        session.intern(&s.link_name);
    }
    for f in &program.exports {
        session.intern(&f.link_name);
    }
    if files.is_empty() {
        return RustArtifact { program, check_cached: false };
    }

    let fp = pcache.map(|_| cache::rust_check_fingerprint(session.options(), &program, c));
    if let (Some(pc), Some(fp)) = (pcache, fp) {
        if let Some(bag) = pc.get(Tier::Function, fp).and_then(|b| cache::decode_diagnostics(&b)) {
            for d in bag.iter() {
                session.emit(d.clone());
            }
            return RustArtifact { program, check_cached: true };
        }
    }

    let bag = rustffi::check(&program, c);
    if let (Some(pc), Some(fp)) = (pcache, fp) {
        pc.put(Tier::Function, fp, &cache::encode_diagnostics(&bag));
    }
    for d in bag.iter() {
        session.emit(d.clone());
    }
    RustArtifact { program, check_cached: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c_program(session: &mut Session, src: &str) -> cil::IrProgram {
        let unit = super::super::frontend_c::parse(session, "glue.c", src);
        super::super::frontend_c::run(session, &[unit]).program
    }

    #[test]
    fn merges_and_checks_against_c() {
        let mut session = Session::new();
        let c = c_program(&mut session, "int add(int a, int b) { return a + b; }");
        let parsed = parse(
            &mut session,
            "lib.rs",
            r#"extern "C" { fn add(a: i32, b: i32, c: i32) -> i32; }"#,
        );
        let art = run(&mut session, &[parsed], &c, None);
        assert_eq!(art.program.imports.len(), 1);
        assert!(!art.check_cached);
        assert!(session.interner().get("add").is_some());
        let codes: Vec<_> = session.diagnostics().iter().map(|d| d.code()).collect();
        assert_eq!(codes, [DiagnosticCode::RustArityMismatch]);
    }

    #[test]
    fn parse_errors_land_in_session_sink() {
        let mut session = Session::new();
        let _ = parse(&mut session, "bad.rs", r#"extern "C" { 42 }"#);
        assert!(!session.diagnostics().is_empty());
    }

    #[test]
    fn cache_replays_the_boundary_check() {
        let dir = std::env::temp_dir().join(format!("ffisafe-rustfe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pc = PipelineCache::open(&dir).unwrap();

        let mut session = Session::new();
        let c = c_program(&mut session, "int add(int a, int b) { return a + b; }");
        let src = r#"extern "C" { fn add(a: i32, b: i32, c: i32) -> i32; }"#;
        let parsed = parse(&mut session, "lib.rs", src);
        let cold = run(&mut session, &[parsed], &c, Some(&pc));
        assert!(!cold.check_cached);
        let cold_diags: Vec<String> =
            session.diagnostics().iter().map(|d| d.message().to_string()).collect();

        let mut session2 = Session::new();
        let c2 = c_program(&mut session2, "int add(int a, int b) { return a + b; }");
        let parsed2 = parse(&mut session2, "lib.rs", src);
        let warm = run(&mut session2, &[parsed2], &c2, Some(&pc));
        assert!(warm.check_cached, "identical surface must replay");
        let warm_diags: Vec<String> =
            session2.diagnostics().iter().map(|d| d.message().to_string()).collect();
        assert_eq!(cold_diags, warm_diags);

        // A C *body* edit leaves the signature surface (and the key) alone…
        let mut session3 = Session::new();
        let c3 = c_program(&mut session3, "int add(int a, int b) { return b + a; }");
        let parsed3 = parse(&mut session3, "lib.rs", src);
        let body_edit = run(&mut session3, &[parsed3], &c3, Some(&pc));
        assert!(body_edit.check_cached, "C body edits must not invalidate");

        // …while an edited Rust boundary misses and is recomputed.
        let mut session4 = Session::new();
        let c4 = c_program(&mut session4, "int add(int a, int b) { return a + b; }");
        let parsed4 =
            parse(&mut session4, "lib.rs", r#"extern "C" { fn add(a: i32, b: i32) -> i32; }"#);
        let edited = run(&mut session4, &[parsed4], &c4, Some(&pc));
        assert!(!edited.check_cached, "boundary edit must invalidate");
        assert!(session4.diagnostics().is_empty(), "fixed arity is clean");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_set_skips_the_store() {
        let mut session = Session::new();
        let c = cil::IrProgram::default();
        let art = run(&mut session, &[], &c, None);
        assert!(art.program.is_empty());
        assert!(session.diagnostics().is_empty());
    }
}
