//! Pipeline stage 4: deferred constraint discharge.
//!
//! Merges the per-function outcomes of the inference stage — in program
//! order, so the result is scheduling-independent — and discharges the
//! checks the paper defers past unification (§3.3.3):
//!
//! * the whole-program GC effect solve: every worker's normalized effect
//!   edges are merged into one graph keyed by [`EffectKey`] and solved by
//!   reachability from the `gc` constants; obligations whose effect may
//!   collect become [`DiagnosticCode::UnrootedValue`] reports;
//! * `T + 1 ≤ Ψ` bound violations, as resolved by each worker's clone;
//! * the polymorphic-abuse practice check: a declared `'a` pinned to one
//!   concrete representational type by the C side.

use super::infer::{BaseState, EffectKey, InferArtifact};
use ffisafe_support::{Diagnostic, DiagnosticCode, Session};
use ffisafe_types::GcNode;
use std::collections::{HashMap, HashSet, VecDeque};

/// What the discharge stage found (stats for logging and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct DischargeSummary {
    /// Effect keys proven may-GC by the merged reachability solve.
    pub gc_effects: usize,
    /// `UnrootedValue` reports emitted.
    pub unrooted: usize,
    /// `Ψ` bound violations emitted (before dedup).
    pub psi_violations: usize,
    /// Polymorphic-abuse reports emitted.
    pub poly_abuse: usize,
    /// Interface-consistency conflicts emitted.
    pub interface_conflicts: usize,
}

/// Runs the stage: merges outcomes into the session's diagnostic sink and
/// returns summary statistics.
pub fn run(
    session: &mut Session,
    base: &mut BaseState,
    inferred: &InferArtifact,
    phase1: &ffisafe_ocaml::translate::Phase1,
) -> DischargeSummary {
    let mut summary = DischargeSummary::default();

    // ---- merged GC effect solve ----------------------------------------
    let mut adj: HashMap<EffectKey, Vec<EffectKey>> = HashMap::new();
    let mut roots: HashSet<EffectKey> = HashSet::new();
    let base_edges: Vec<_> = base.constraints.gc_edges_from(0).collect();
    for (lo, hi) in base_edges {
        let kl = base_key(base, lo);
        let kh = base_key(base, hi);
        if matches!(base.table.gc_node(lo), GcNode::Gc) {
            roots.insert(kl);
        }
        if matches!(base.table.gc_node(hi), GcNode::Gc) {
            roots.insert(kh);
        }
        adj.entry(kl).or_default().push(kh);
    }
    for outcome in &inferred.outcomes {
        for &(lo, hi) in &outcome.gc_edges {
            adj.entry(lo).or_default().push(hi);
        }
        roots.extend(outcome.gc_roots.iter().copied());
    }
    let mut gc_set: HashSet<EffectKey> = roots.iter().copied().collect();
    let mut queue: VecDeque<EffectKey> = roots.into_iter().collect();
    while let Some(k) = queue.pop_front() {
        if let Some(succs) = adj.get(&k) {
            for &s in succs {
                if gc_set.insert(s) {
                    queue.push_back(s);
                }
            }
        }
    }
    summary.gc_effects = gc_set.len();

    // ---- per-function merges, in program order -------------------------
    let gc_enabled = session.options().gc_effects;
    // Signature slots any worker resolved to a heap-pointer value: inputs
    // to the deferred liveness checks below.
    let heap_slots: HashSet<&super::infer::SlotKey> =
        inferred.outcomes.iter().flat_map(|o| o.heap_slots.iter()).collect();
    let mut poly_pinned: HashMap<(usize, usize), String> = HashMap::new();
    for outcome in &inferred.outcomes {
        let mut diags = outcome.diagnostics.clone();
        session.emit_all(&mut diags);

        if gc_enabled {
            for ob in &outcome.obligations {
                if !(ob.effect_is_gc || gc_set.contains(&ob.effect)) {
                    continue;
                }
                let deferred_hits = ob
                    .deferred_ptrs
                    .iter()
                    .filter(|(_, keys)| keys.iter().any(|key| heap_slots.contains(key)))
                    .map(|(name, _)| name);
                for name in ob.unprotected_heap_ptrs.iter().chain(deferred_hits) {
                    summary.unrooted += 1;
                    session.emit(Diagnostic::new(
                        DiagnosticCode::UnrootedValue,
                        ob.span,
                        format!(
                            "`{}` holds a pointer into the OCaml heap across a call to `{}` (which may trigger the GC) without registering it via CAMLparam/CAMLlocal",
                            name, ob.callee
                        ),
                    ));
                }
            }
        }

        for v in &outcome.psi_violations {
            summary.psi_violations += 1;
            session.emit(Diagnostic::new(
                DiagnosticCode::ConstructorRange,
                v.bound.span,
                format!("{} ({})", v.reason, v.bound.context),
            ));
        }

        for (sig_idx, param_idx, rendered) in &outcome.pinned_polys {
            poly_pinned.entry((*sig_idx, *param_idx)).or_insert_with(|| rendered.clone());
        }
    }

    // ---- interface consistency across functions -------------------------
    // Opaque OCaml types are shared inference variables: "two different C
    // types flowing into one opaque type is a unification error" (§2). A
    // shared-table run catches that when the second function's unification
    // fails; with snapshot isolation each function pins its own clone, so
    // compare the ground resolutions here. The first pinning function in
    // program order is the authority, exactly like a sequential run.
    let mut authority: HashMap<u32, (String, String)> = HashMap::new(); // key → (render, func)
    for outcome in &inferred.outcomes {
        for pin in &outcome.interface_pins {
            let (auth_render, auth_func) = authority
                .entry(pin.mt_key)
                .or_insert_with(|| (pin.rendered.clone(), pin.func_name.clone()));
            if *auth_render == pin.rendered || *auth_func == pin.func_name {
                continue;
            }
            let sig = &phase1.signatures[pin.sig_idx];
            let slot_desc = if pin.slot < sig.params.len() {
                format!("parameter {}", pin.slot + 1)
            } else {
                "the return".to_string()
            };
            summary.interface_conflicts += 1;
            session.emit(Diagnostic::new(
                DiagnosticCode::TypeMismatch,
                pin.func_span,
                format!(
                    "`{}` uses the opaque type behind {} of external `{}` at type `{}`, but `{}` uses it at `{}`",
                    pin.func_name, slot_desc, sig.ml_name, pin.rendered, auth_func, auth_render
                ),
            ));
        }
    }

    // ---- cross-clone Ψ discharge ----------------------------------------
    // A worker that pins a shared open mt's Ψ does so only in its own
    // clone; a sibling's bound on that Ψ was recorded against a still-
    // unresolved variable there. Meet them here: materialize the first
    // pin (program order — the authority a sequential run would have) in
    // the base table and re-check every deferred bound against it.
    let mut psi_pinned: HashMap<u32, ffisafe_types::PsiNode> = HashMap::new();
    for outcome in &inferred.outcomes {
        for &(raw, node) in &outcome.psi_pins {
            psi_pinned.entry(raw).or_insert(node);
        }
    }
    for outcome in &inferred.outcomes {
        for b in &outcome.deferred_psi_bounds {
            let Some(node) = psi_pinned.get(&b.mt_key) else { continue };
            let psi = match *node {
                ffisafe_types::PsiNode::Count(k) => base.table.psi_count(k),
                _ => continue, // ⊤ satisfies every bound
            };
            base.constraints.add_psi_bound(b.t, psi, b.span, b.context.clone());
        }
    }

    // bounds recorded before inference plus the deferred cross-clone
    // bounds above, resolved at the base state (also covers runs with no
    // C functions at all)
    for v in base.constraints.check_psi_bounds(&base.table) {
        summary.psi_violations += 1;
        session.emit(Diagnostic::new(
            DiagnosticCode::ConstructorRange,
            v.bound.span,
            format!("{} ({})", v.reason, v.bound.context),
        ));
    }

    // ---- polymorphic abuse (§5.2 practice check) ------------------------
    for (sig_idx, sig) in phase1.signatures.iter().enumerate() {
        for (param_idx, (var, mt)) in sig.poly_params.iter().enumerate() {
            let rendered = if base.poly_concrete_at_base[sig_idx][param_idx] {
                Some(base.table.render_mt(*mt))
            } else {
                poly_pinned.get(&(sig_idx, param_idx)).cloned()
            };
            let Some(rendered) = rendered else { continue };
            summary.poly_abuse += 1;
            session.emit(Diagnostic::new(
                DiagnosticCode::PolymorphicAbuse,
                sig.span,
                format!(
                    "external `{}` declares polymorphic parameter '{} but its C implementation uses it at type `{}`; any OCaml value can be passed here",
                    sig.ml_name, var, rendered
                ),
            ));
        }
    }

    summary
}

/// Normalizes a base-table effect id. Base unification can only link
/// pre-snapshot nodes to each other, so the canonical id is always `Base`.
fn base_key(base: &mut BaseState, id: ffisafe_types::GcId) -> EffectKey {
    EffectKey::Base(base.table.resolve_gc(id).as_raw())
}
