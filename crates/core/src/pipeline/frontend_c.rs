//! Pipeline stage 2: the C frontend (§3.2, §5.1).
//!
//! Parses C glue sources into the session and lowers every unit to the
//! flat, labeled IR of Figure 5, merging them into one [`CArtifact`]
//! program for the inference stage.

use ffisafe_cil as cil;
use ffisafe_support::{Diagnostic, DiagnosticCode, Session, Severity};

/// Output of the C frontend stage: the whole-program Figure 5 IR.
#[derive(Debug, Default)]
pub struct CArtifact {
    /// All lowered functions, prototypes and globals, in input order.
    pub program: cil::IrProgram,
}

/// Parses one C source into the session: registers the file in the
/// session source map, interns every defined function name, and reports
/// parse errors to the session's diagnostic sink.
pub fn parse(session: &mut Session, name: &str, src: &str) -> cil::CUnit {
    let file = session.add_file(name, src);
    let unit = cil::parser::parse(file, src);
    for (span, msg) in &unit.errors {
        session.emit(
            Diagnostic::new(DiagnosticCode::Context, *span, msg.clone())
                .with_severity(Severity::Note),
        );
    }
    unit
}

/// Runs the stage: lowers every parsed unit and merges the results.
pub fn run(session: &mut Session, units: &[cil::CUnit]) -> CArtifact {
    let mut program = cil::IrProgram::default();
    for unit in units {
        let lowered = cil::lower::lower_unit(unit);
        program.functions.extend(lowered.functions);
        program.prototypes.extend(lowered.prototypes);
        program.globals.extend(lowered.globals);
        program.notes.extend(lowered.notes);
    }
    for f in &program.functions {
        session.intern(&f.name);
    }
    for p in &program.prototypes {
        session.intern(&p.name);
    }
    CArtifact { program }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_lower_one_unit() {
        let mut session = Session::new();
        let unit =
            parse(&mut session, "glue.c", "value ml_id(value x) { return x; }\nint helper(int n);");
        let c = run(&mut session, &[unit]);
        assert_eq!(c.program.functions.len(), 1);
        assert_eq!(c.program.prototypes.len(), 1);
        assert!(session.interner().get("ml_id").is_some());
        assert!(session.interner().get("helper").is_some());
    }

    #[test]
    fn units_merge_in_input_order() {
        let mut session = Session::new();
        let u1 = parse(&mut session, "a.c", "value f(value x) { return x; }");
        let u2 = parse(&mut session, "b.c", "value g(value x) { return x; }");
        let c = run(&mut session, &[u1, u2]);
        let names: Vec<_> = c.program.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "g"]);
    }

    #[test]
    fn parse_errors_land_in_session_sink() {
        let mut session = Session::new();
        let _ = parse(&mut session, "bad.c", "value f(value x { return; ");
        assert!(!session.diagnostics().is_empty());
    }
}
