//! The analyzer driver: the public entry point tying both phases together.
//!
//! Phase 1 parses OCaml sources, builds the central type repository and
//! translates `external` signatures (Φ/ρ). Phase 2 parses and lowers C
//! sources, seeds the function registry (`Γ_I`), runs the flow-sensitive
//! inference on every function, then discharges the deferred constraints:
//! GC reachability + registration obligations, `T + 1 ≤ Ψ` bounds, and the
//! whole-program practice checks (trailing `unit`, polymorphic abuse,
//! `value` globals).

use crate::engine::{analyze_function, AnalysisOptions, GcObligation};
use crate::registry::{FuncOrigin, Registry};
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_support::{
    Diagnostic, DiagnosticBag, DiagnosticCode, Severity, SourceMap,
};
use ffisafe_types::{ConstraintSet, CtNode, TypeTable};
use std::time::Instant;

/// Whole-run statistics (benchmark metrics and the Figure 9 columns).
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Lines of OCaml source added.
    pub ml_loc: usize,
    /// Lines of C source added.
    pub c_loc: usize,
    /// Number of `external` declarations.
    pub externals: usize,
    /// Number of C function definitions analyzed.
    pub c_functions: usize,
    /// Total fixpoint passes across all functions.
    pub passes: usize,
    /// Arena nodes allocated.
    pub type_nodes: usize,
    /// GC effect edges recorded.
    pub gc_edges: usize,
    /// Wall-clock analysis time in seconds.
    pub seconds: f64,
}

/// A concrete run-time check that would make an imprecise site safe
/// (§5.2's future-work direction, made actionable).
#[derive(Clone, Debug)]
pub struct RuntimeCheckSuggestion {
    /// The imprecision code the suggestion addresses.
    pub code: ffisafe_support::DiagnosticCode,
    /// Resolved source location of the imprecise site.
    pub location: ffisafe_support::Loc,
    /// What to insert.
    pub suggestion: String,
}

/// The result of one whole-program analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// All findings, sorted by position.
    pub diagnostics: DiagnosticBag,
    /// Run statistics.
    pub stats: AnalysisStats,
    source_map: SourceMap,
}

impl AnalysisReport {
    /// Number of error findings (Figure 9 "Errors" + false positives —
    /// ground-truth classification is the harness's job).
    pub fn error_count(&self) -> usize {
        self.diagnostics.count_errors()
    }

    /// Number of questionable-practice warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.count_warnings()
    }

    /// Number of imprecision reports.
    pub fn imprecision_count(&self) -> usize {
        self.diagnostics.count_imprecision()
    }

    /// The source map used to resolve diagnostic spans.
    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// For every imprecision report, the run-time check that would make
    /// the site safe — the future-work direction §5.2 sketches
    /// ("eliminating these warnings and instead adding run-time checks to
    /// the C code for these cases").
    pub fn suggest_runtime_checks(&self) -> Vec<RuntimeCheckSuggestion> {
        self.diagnostics
            .iter()
            .filter_map(|d| {
                let suggestion = match d.code() {
                    DiagnosticCode::UnknownOffset => {
                        "guard the access with `if (Is_block(v) && (mlsize_t) i < Wosize_val(v))` \
                         before reading or writing the field"
                    }
                    DiagnosticCode::GlobalValue | DiagnosticCode::AddressOfValue => {
                        "register the location as a GC root with \
                         `caml_register_global_root(&v)` (and remove it with \
                         `caml_remove_global_root` before reuse)"
                    }
                    DiagnosticCode::FunctionPointerCall => {
                        "dispatch through a named wrapper function so the callee's \
                         type and GC effect are visible to the analysis"
                    }
                    _ => return None,
                };
                Some(RuntimeCheckSuggestion {
                    code: d.code(),
                    location: self.source_map.resolve(d.span()),
                    suggestion: suggestion.to_string(),
                })
            })
            .collect()
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in self.diagnostics.iter() {
            let loc = self.source_map.resolve(d.span());
            out.push_str(&format!(
                "{loc}: {} [{}]: {}\n",
                d.severity(),
                d.code(),
                d.message()
            ));
            for (nspan, note) in d.notes() {
                let nloc = self.source_map.resolve(*nspan);
                out.push_str(&format!("  {nloc}: note: {note}\n"));
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} imprecision report(s) — {} lines C, {} lines OCaml, {:.3}s\n",
            self.error_count(),
            self.warning_count(),
            self.imprecision_count(),
            self.stats.c_loc,
            self.stats.ml_loc,
            self.stats.seconds,
        ));
        out
    }
}

/// Multi-lingual type inference for OCaml→C foreign function calls.
///
/// # Examples
///
/// ```
/// use ffisafe_core::Analyzer;
///
/// let mut az = Analyzer::new();
/// az.add_ml_source("lib.ml", r#"external double : int -> int = "ml_double""#);
/// az.add_c_source("glue.c", r#"
///     value ml_double(value n) {
///         return Val_int(2 * Int_val(n));
///     }
/// "#);
/// let report = az.analyze();
/// assert_eq!(report.error_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct Analyzer {
    source_map: SourceMap,
    options: AnalysisOptions,
    ml_files: Vec<ocaml::ParsedFile>,
    c_units: Vec<cil::CUnit>,
    pre_diags: DiagnosticBag,
    ml_loc: usize,
    c_loc: usize,
}

impl Analyzer {
    /// Creates an analyzer with default options.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with explicit options (ablation experiments).
    pub fn with_options(options: AnalysisOptions) -> Self {
        Analyzer { options, ..Analyzer::default() }
    }

    /// Adds and parses one OCaml source file.
    pub fn add_ml_source(&mut self, name: &str, src: &str) {
        let file = self.source_map.add_file(name, src);
        self.ml_loc += src.lines().count();
        let parsed = ocaml::parser::parse(file, src);
        for e in &parsed.errors {
            self.pre_diags.push(
                Diagnostic::new(DiagnosticCode::Context, e.span, e.message.clone())
                    .with_severity(Severity::Note),
            );
        }
        self.ml_files.push(parsed);
    }

    /// Adds and parses one C source file.
    pub fn add_c_source(&mut self, name: &str, src: &str) {
        let file = self.source_map.add_file(name, src);
        self.c_loc += src.lines().count();
        let unit = cil::parser::parse(file, src);
        for (span, msg) in &unit.errors {
            self.pre_diags.push(
                Diagnostic::new(DiagnosticCode::Context, *span, msg.clone())
                    .with_severity(Severity::Note),
            );
        }
        self.c_units.push(unit);
    }

    /// Runs the full two-phase analysis.
    pub fn analyze(&mut self) -> AnalysisReport {
        let start = Instant::now();
        let mut table = TypeTable::new();
        let mut constraints = ConstraintSet::new();
        let mut diags = self.pre_diags.clone();

        // ---- phase 1: OCaml ------------------------------------------------
        let mut repo = ocaml::TypeRepository::new();
        for f in &self.ml_files {
            repo.register_file(f);
        }
        let externals: Vec<ocaml::ExternalDecl> = self
            .ml_files
            .iter()
            .flat_map(|f| f.items.iter())
            .filter_map(|i| match i {
                ocaml::Item::External(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        let phase1 = ocaml::translate::translate_program(&repo, &externals, &mut table);

        // ---- phase 2: C ----------------------------------------------------
        let mut program = cil::IrProgram::default();
        for unit in &self.c_units {
            let lowered = cil::lower::lower_unit(unit);
            program.functions.extend(lowered.functions);
            program.prototypes.extend(lowered.prototypes);
            program.globals.extend(lowered.globals);
            program.notes.extend(lowered.notes);
        }

        let mut registry = Registry::new();
        for f in &program.functions {
            let params: Vec<cil::CTypeExpr> =
                f.locals[..f.n_params].iter().map(|l| l.ty.clone()).collect();
            registry.register(&mut table, &f.name, &f.ret, &params, FuncOrigin::Defined, f.span);
        }
        for p in &program.prototypes {
            registry.register(&mut table, &p.name, &p.ret, &p.params, FuncOrigin::Declared, p.span);
        }

        // bind externals to their C definitions
        self.bind_externals(&mut table, &mut registry, &phase1, &mut diags);

        // `value` globals: the analysis cannot track them (§5.1)
        for (name, ty, span) in &program.globals {
            if ty.contains_value() {
                diags.push(Diagnostic::new(
                    DiagnosticCode::GlobalValue,
                    *span,
                    format!("global variable `{name}` holds an OCaml value; it is not tracked"),
                ));
            }
        }

        // ---- per-function inference ------------------------------------------
        let mut obligations: Vec<GcObligation> = Vec::new();
        let mut passes = 0usize;
        for f in &program.functions {
            let mut result =
                analyze_function(&mut table, &mut constraints, &mut registry, &self.options, f);
            diags.append(&mut result.diagnostics);
            obligations.extend(result.obligations);
            passes += result.passes;
        }

        // ---- deferred checks ---------------------------------------------------
        let gc_solution = constraints.solve_gc(&mut table);
        if self.options.gc_effects {
            for ob in &obligations {
                if !gc_solution.may_gc(&table, ob.effect) {
                    continue;
                }
                for (name, ct) in &ob.live {
                    if ob.protected.contains(name) {
                        continue;
                    }
                    let ct = table.resolve_ct(*ct);
                    let CtNode::Value(mt) = table.ct_node(ct).clone() else { continue };
                    if table.mt_is_heap_pointer(mt) {
                        diags.push(Diagnostic::new(
                            DiagnosticCode::UnrootedValue,
                            ob.span,
                            format!(
                                "`{}` holds a pointer into the OCaml heap across a call to `{}` (which may trigger the GC) without registering it via CAMLparam/CAMLlocal",
                                name, ob.callee
                            ),
                        ));
                    }
                }
            }
        }

        for v in constraints.check_psi_bounds(&table) {
            diags.push(Diagnostic::new(
                DiagnosticCode::ConstructorRange,
                v.bound.span,
                format!("{} ({})", v.reason, v.bound.context),
            ));
        }

        // polymorphic abuse: a declared `'a` pinned to a concrete type by C
        for sig in &phase1.signatures {
            for (var, mt) in &sig.poly_params {
                if table.mt_is_concrete(*mt) {
                    let rendered = table.render_mt(*mt);
                    diags.push(Diagnostic::new(
                        DiagnosticCode::PolymorphicAbuse,
                        sig.span,
                        format!(
                            "external `{}` declares polymorphic parameter '{} but its C implementation uses it at type `{}`; any OCaml value can be passed here",
                            sig.ml_name, var, rendered
                        ),
                    ));
                }
            }
        }

        diags.dedup();
        let stats = AnalysisStats {
            ml_loc: self.ml_loc,
            c_loc: self.c_loc,
            externals: phase1.signatures.len(),
            c_functions: program.functions.len(),
            passes,
            type_nodes: table.node_count(),
            gc_edges: constraints.gc_edge_count(),
            seconds: start.elapsed().as_secs_f64(),
        };
        AnalysisReport { diagnostics: diags, stats, source_map: self.source_map.clone() }
    }

    /// Unifies each `Φ`-translated external signature with its C
    /// definition, checking arity and the trailing-`unit` practice.
    fn bind_externals(
        &self,
        table: &mut TypeTable,
        registry: &mut Registry,
        phase1: &ocaml::Phase1,
        diags: &mut DiagnosticBag,
    ) {
        for (idx, sig) in phase1.signatures.iter().enumerate() {
            // bytecode stubs (value *argv, int argn) are not checked
            if let Some(byte) = &sig.byte_c_name {
                if let Some(info) = registry.get(byte) {
                    let skip = info.params.len() == 2;
                    let effect = info.effect;
                    registry.set_external_index(byte, idx);
                    if !skip {
                        // unusual: treat like the native variant below
                    }
                    table.unify_gc(effect, sig.effect);
                }
            }
            let Some(info) = registry.get(&sig.c_name).cloned() else {
                continue; // defined in a library we are not analyzing
            };
            registry.set_external_index(&sig.c_name, idx);
            table.unify_gc(info.effect, sig.effect);
            let n_ml = sig.params.len();
            let m = info.params.len();
            let span = sig.span;
            if m < n_ml && sig.unit_params[m..].iter().all(|&u| u) {
                diags.push(
                    Diagnostic::new(
                        DiagnosticCode::TrailingUnitParameter,
                        span,
                        format!(
                            "external `{}` declares {} trailing unit parameter(s) that `{}` does not take; the unit is passed on the stack",
                            sig.ml_name,
                            n_ml - m,
                            sig.c_name
                        ),
                    )
                    .with_note(info.span, "C definition is here".to_string()),
                );
            } else if m != n_ml {
                diags.push(
                    Diagnostic::new(
                        DiagnosticCode::ArityMismatch,
                        span,
                        format!(
                            "external `{}` has arity {} but `{}` takes {} parameter(s)",
                            sig.ml_name, n_ml, sig.c_name, m
                        ),
                    )
                    .with_note(info.span, "C definition is here".to_string()),
                );
            }
            let n_unify = m.min(n_ml);
            for i in 0..n_unify {
                let want = table.ct_value(sig.params[i]);
                if let Err(e) = table.unify_ct(info.params[i], want) {
                    diags.push(
                        Diagnostic::new(
                            DiagnosticCode::TypeMismatch,
                            span,
                            format!(
                                "parameter {} of `{}` does not match its OCaml declaration: {}",
                                i + 1,
                                sig.c_name,
                                e
                            ),
                        )
                        .with_note(info.span, "C definition is here".to_string()),
                    );
                }
            }
            let want_ret = table.ct_value(sig.ret);
            if let Err(e) = table.unify_ct(info.ret, want_ret) {
                diags.push(Diagnostic::new(
                    DiagnosticCode::TypeMismatch,
                    span,
                    format!("return type of `{}` does not match its OCaml declaration: {}", sig.c_name, e),
                ));
            }
        }
    }
}

