//! The analysis report and the deprecated single-corpus facade.
//!
//! The engine itself lives in [`crate::api`]: [`crate::api::AnalysisService`]
//! parses a [`crate::api::Corpus`] through the frontend registry and runs
//! the pipeline stages — [`pipeline::frontend_ml`],
//! [`pipeline::frontend_c`], [`pipeline::frontend_rust`],
//! [`pipeline::infer`] (parallel), [`pipeline::discharge`]. This module
//! holds what comes *out*:
//! [`AnalysisReport`] with its stable rendering and versioned
//! [`AnalysisReport::to_json`] form, plus [`Analyzer`], the original
//! mutable one-shot entry point, kept as a thin deprecated facade over a
//! single-corpus service.
//!
//! [`pipeline::frontend_ml`]: crate::pipeline::frontend_ml
//! [`pipeline::frontend_c`]: crate::pipeline::frontend_c
//! [`pipeline::frontend_rust`]: crate::pipeline::frontend_rust
//! [`pipeline::infer`]: crate::pipeline::infer
//! [`pipeline::discharge`]: crate::pipeline::discharge

use crate::api::{AnalysisRequest, AnalysisService, Corpus, SourceKind};
use crate::engine::AnalysisOptions;
use crate::pipeline::cache::CachedReport;
use ffisafe_support::json::escape_into;
use ffisafe_support::telemetry::{self, MetricsRegistry};
use ffisafe_support::{DiagnosticBag, DiagnosticCode, Loc, Phase, PhaseTimings, SourceMap};
use std::path::PathBuf;

/// Version of the structured report schema emitted by
/// [`AnalysisReport::to_json`]. Bumped whenever a field changes meaning,
/// moves or disappears; adding fields is backward-compatible and does not
/// bump it.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Whole-run statistics (benchmark metrics and the Figure 9 columns).
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Lines of OCaml source added.
    pub ml_loc: usize,
    /// Lines of C source added.
    pub c_loc: usize,
    /// Lines of Rust source added.
    pub rust_loc: usize,
    /// Number of `external` declarations.
    pub externals: usize,
    /// Number of C function definitions analyzed.
    pub c_functions: usize,
    /// Rust boundary imports checked (`extern "C"` functions and statics).
    pub rust_externs: usize,
    /// Rust boundary exports checked (`#[no_mangle] extern "C" fn`).
    pub rust_exports: usize,
    /// Rust type declarations visible to the boundary checker.
    pub rust_types: usize,
    /// Whether the Rust boundary check was replayed from the tier-1 cache.
    pub rust_check_cached: bool,
    /// Total fixpoint passes across all functions.
    pub passes: usize,
    /// Arena nodes allocated (base table plus every worker's growth).
    pub type_nodes: usize,
    /// GC effect edges recorded.
    pub gc_edges: usize,
    /// Worker threads used by the inference stage.
    pub jobs: usize,
    /// Wall-clock analysis time in seconds.
    pub seconds: f64,
    /// Sum of per-function inference wall-clock (total parallelizable
    /// work). Cache replays contribute zero.
    pub infer_work_seconds: f64,
    /// Portion of `infer_work_seconds` spent building per-worker overlay
    /// views (the former snapshot-clone tax). Cache replays contribute
    /// zero.
    pub infer_setup_seconds: f64,
    /// Slowest single function (lower bound on parallel inference time).
    pub infer_critical_path_seconds: f64,
    /// Functions replayed from the tier-1 (per-function) cache.
    pub cache_fn_hits: usize,
    /// Functions that missed the tier-1 cache (0 with caching disabled).
    pub cache_fn_misses: usize,
    /// Functions analyzed by a live inference worker this run.
    pub workers_executed: usize,
    /// Whether the whole report was served from the tier-2 (report) cache.
    pub cache_report_hit: bool,
}

/// The count rollup of one report — the structured equivalent of the
/// `summary` object in [`AnalysisReport::to_json`], so in-process shard
/// reducers aggregate counts without re-parsing the JSON they would have
/// emitted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReportSummary {
    /// Error findings.
    pub errors: usize,
    /// Questionable-practice warnings.
    pub warnings: usize,
    /// Imprecision reports.
    pub imprecision: usize,
    /// Context notes (severity [`ffisafe_support::Severity::Note`]).
    pub notes: usize,
    /// All diagnostics, every severity.
    pub diagnostics: usize,
}

/// A concrete run-time check that would make an imprecise site safe
/// (§5.2's future-work direction, made actionable).
#[derive(Clone, Debug)]
pub struct RuntimeCheckSuggestion {
    /// The imprecision code the suggestion addresses.
    pub code: ffisafe_support::DiagnosticCode,
    /// Resolved source location of the imprecise site.
    pub location: ffisafe_support::Loc,
    /// What to insert.
    pub suggestion: String,
}

/// The result of one whole-program analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// All findings, sorted by position — populated on cold runs and on
    /// tier-2 cache hits alike (the cache stores the structured
    /// diagnostics next to the rendered report).
    pub diagnostics: DiagnosticBag,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Cumulative wall-clock time per pipeline phase.
    pub timings: PhaseTimings,
    pub(crate) source_map: SourceMap,
    /// Set when this report was served from the tier-2 report cache.
    pub(crate) cached: Option<CachedReport>,
}

impl AnalysisReport {
    /// Number of error findings (Figure 9 "Errors" + false positives —
    /// ground-truth classification is the harness's job).
    pub fn error_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.errors,
            None => self.diagnostics.count_errors(),
        }
    }

    /// Number of questionable-practice warnings.
    pub fn warning_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.warnings,
            None => self.diagnostics.count_warnings(),
        }
    }

    /// Number of imprecision reports.
    pub fn imprecision_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.imprecision,
            None => self.diagnostics.count_imprecision(),
        }
    }

    /// The source map used to resolve diagnostic spans.
    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// The count rollup, identical to the `summary` object of
    /// [`AnalysisReport::to_json`] — and identical at any cache
    /// temperature (tier-2 hits store the structured diagnostics).
    pub fn summary(&self) -> ReportSummary {
        let notes = self
            .diagnostics
            .iter()
            .filter(|d| d.severity() == ffisafe_support::Severity::Note)
            .count();
        ReportSummary {
            errors: self.error_count(),
            warnings: self.warning_count(),
            imprecision: self.imprecision_count(),
            notes,
            diagnostics: self.diagnostics.len(),
        }
    }

    /// Feeds this report's timings, stats, and diagnostic counts into a
    /// [`MetricsRegistry`]. This is the single source both the CLI's
    /// `--timings` stderr renderer and the Prometheus `--metrics-out`
    /// export draw from, so the two cannot drift apart.
    pub fn feed_metrics(&self, reg: &mut MetricsRegistry) {
        for phase in Phase::ALL {
            let labels = [("phase", phase.name())];
            reg.set_gauge(
                "ffisafe_phase_wall_seconds",
                "Wall-clock seconds spent in each pipeline phase",
                &labels,
                self.timings.get(phase).as_secs_f64(),
            );
            reg.set_gauge(
                "ffisafe_phase_work_seconds",
                "Work seconds performed by each pipeline phase (= wall for serial phases)",
                &labels,
                self.timings.get_work(phase).as_secs_f64(),
            );
        }
        let s = &self.stats;
        reg.set_gauge(
            "ffisafe_analysis_seconds",
            "Wall-clock seconds for the whole analysis",
            &[],
            s.seconds,
        );
        reg.observe(
            "ffisafe_analysis_duration_seconds",
            "Distribution of whole-analysis wall-clock seconds",
            &[],
            telemetry::LATENCY_BUCKETS,
            s.seconds,
        );
        reg.set_gauge(
            "ffisafe_infer_setup_seconds",
            "Inference work spent building per-worker overlay views",
            &[],
            s.infer_setup_seconds,
        );
        reg.set_gauge(
            "ffisafe_infer_critical_path_seconds",
            "Slowest single function (lower bound on parallel inference)",
            &[],
            s.infer_critical_path_seconds,
        );
        reg.set_gauge("ffisafe_jobs", "Inference worker threads used", &[], s.jobs as f64);
        reg.set_gauge("ffisafe_ml_loc", "Lines of OCaml source analyzed", &[], s.ml_loc as f64);
        reg.set_gauge("ffisafe_c_loc", "Lines of C source analyzed", &[], s.c_loc as f64);
        reg.set_gauge(
            "ffisafe_c_functions",
            "C function definitions analyzed",
            &[],
            s.c_functions as f64,
        );
        reg.set_gauge(
            "ffisafe_frontend_rust_loc",
            "Lines of Rust source analyzed",
            &[],
            s.rust_loc as f64,
        );
        reg.set_gauge(
            "ffisafe_frontend_rust_externs",
            "Rust extern \"C\" imports checked against the C program",
            &[],
            s.rust_externs as f64,
        );
        reg.set_gauge(
            "ffisafe_frontend_rust_exports",
            "Rust #[no_mangle] extern \"C\" exports checked against the C program",
            &[],
            s.rust_exports as f64,
        );
        reg.set_gauge(
            "ffisafe_frontend_rust_types",
            "Rust type declarations visible to the boundary checker",
            &[],
            s.rust_types as f64,
        );
        reg.inc_counter(
            "ffisafe_frontend_rust_check_cache_hits_total",
            "Rust boundary checks replayed from the tier-1 cache",
            &[],
            u64::from(s.rust_check_cached),
        );
        reg.inc_counter(
            "ffisafe_passes_total",
            "Fixpoint passes across all functions",
            &[],
            s.passes as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_fn_hits_total",
            "Functions replayed from the tier-1 (per-function) cache",
            &[],
            s.cache_fn_hits as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_fn_misses_total",
            "Functions that missed the tier-1 cache",
            &[],
            s.cache_fn_misses as u64,
        );
        reg.inc_counter(
            "ffisafe_cache_report_hits_total",
            "Whole reports served from the tier-2 (report) cache",
            &[],
            u64::from(s.cache_report_hit),
        );
        reg.inc_counter(
            "ffisafe_workers_executed_total",
            "Functions analyzed by a live inference worker",
            &[],
            s.workers_executed as u64,
        );
        let summary = self.summary();
        for (severity, count) in [
            ("error", summary.errors),
            ("warning", summary.warnings),
            ("imprecision", summary.imprecision),
            ("note", summary.notes),
        ] {
            reg.inc_counter(
                "ffisafe_diagnostics_total",
                "Findings by severity",
                &[("severity", severity)],
                count as u64,
            );
        }
    }

    /// For every imprecision report, the run-time check that would make
    /// the site safe — the future-work direction §5.2 sketches
    /// ("eliminating these warnings and instead adding run-time checks to
    /// the C code for these cases").
    pub fn suggest_runtime_checks(&self) -> Vec<RuntimeCheckSuggestion> {
        self.diagnostics
            .iter()
            .filter_map(|d| {
                let suggestion = match d.code() {
                    DiagnosticCode::UnknownOffset => {
                        "guard the access with `if (Is_block(v) && (mlsize_t) i < Wosize_val(v))` \
                         before reading or writing the field"
                    }
                    DiagnosticCode::GlobalValue | DiagnosticCode::AddressOfValue => {
                        "register the location as a GC root with \
                         `caml_register_global_root(&v)` (and remove it with \
                         `caml_remove_global_root` before reuse)"
                    }
                    DiagnosticCode::FunctionPointerCall => {
                        "dispatch through a named wrapper function so the callee's \
                         type and GC effect are visible to the analysis"
                    }
                    _ => return None,
                };
                Some(RuntimeCheckSuggestion {
                    code: d.code(),
                    location: self.source_map.resolve(d.span()),
                    suggestion: suggestion.to_string(),
                })
            })
            .collect()
    }

    /// Renders a human-readable report: [`AnalysisReport::render_stable`]
    /// with the run's wall-clock appended to the summary line.
    pub fn render(&self) -> String {
        let mut out = self.render_stable();
        out.pop();
        out.push_str(&format!(", {:.3}s\n", self.stats.seconds));
        out
    }

    /// Like [`AnalysisReport::render`], but without the trailing timing
    /// line — byte-identical across runs and worker counts, which the
    /// determinism tests rely on. The tier-2 cache stores exactly this
    /// string, so cache hits replay it verbatim.
    pub fn render_stable(&self) -> String {
        if let Some(c) = &self.cached {
            return c.rendered.clone();
        }
        let mut out = String::new();
        for d in self.diagnostics.iter() {
            let loc = self.source_map.resolve(d.span());
            out.push_str(&format!("{loc}: {} [{}]: {}\n", d.severity(), d.code(), d.message()));
            for (nspan, note) in d.notes() {
                let nloc = self.source_map.resolve(*nspan);
                out.push_str(&format!("  {nloc}: note: {note}\n"));
            }
        }
        // The Rust clause is appended only when the corpus has Rust
        // sources, so pure OCaml/C reports stay byte-identical to what
        // they were before the Rust frontend existed.
        let rust = if self.stats.rust_loc > 0 {
            format!(", {} lines Rust", self.stats.rust_loc)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} imprecision report(s) — {} lines C, {} lines OCaml{rust}\n",
            self.error_count(),
            self.warning_count(),
            self.imprecision_count(),
            self.stats.c_loc,
            self.stats.ml_loc,
        ));
        out
    }

    /// The versioned machine-readable report: stable JSON a shard reducer
    /// or CI job can consume without parsing rendered text.
    ///
    /// Schema (v1, see [`REPORT_SCHEMA_VERSION`]):
    ///
    /// ```text
    /// {
    ///   "schema_version": 1,
    ///   "tool": "ffisafe",
    ///   "tool_version": "<crate version>",
    ///   "summary": { "errors": N, "warnings": N, "imprecision": N,
    ///                "notes": N, "diagnostics": N },
    ///   "diagnostics": [ { "file", "line", "column", "severity", "code",
    ///                      "message", "notes": [ {file,line,column,message} ] } ],
    ///   "stats": { "ml_loc", "c_loc", "rust_loc", "externals",
    ///              "c_functions", "rust_externs", "rust_exports",
    ///              "rust_types", "passes", "type_nodes", "gc_edges",
    ///              "jobs", "seconds", "infer_work_seconds",
    ///              "infer_setup_seconds", "infer_critical_path_seconds",
    ///              "cache": { "fn_hits", "fn_misses", "workers_executed",
    ///                         "report_hit", "rust_check_hit" } },
    ///   "timings": [ { "phase", "wall_seconds", "work_seconds" } ]
    /// }
    /// ```
    ///
    /// Key order is fixed; counts and the per-diagnostic fields are
    /// independent of `--jobs` and cache temperature. `seconds`-type
    /// fields are wall-clock measurements and naturally vary between runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {REPORT_SCHEMA_VERSION},\n"));
        out.push_str("  \"tool\": \"ffisafe\",\n");
        out.push_str(&format!("  \"tool_version\": \"{}\",\n", env!("CARGO_PKG_VERSION")));

        let summary = self.summary();
        out.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"imprecision\": {}, \"notes\": {}, \"diagnostics\": {}}},\n",
            summary.errors, summary.warnings, summary.imprecision, summary.notes,
            summary.diagnostics,
        ));

        out.push_str("  \"diagnostics\": [");
        let mut first = true;
        for d in self.diagnostics.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            push_loc_fields(&mut out, &self.source_map.resolve(d.span()));
            out.push_str(&format!(
                ", \"severity\": \"{}\", \"code\": \"{}\", \"message\": \"",
                d.severity(),
                d.code()
            ));
            escape_into(&mut out, d.message());
            out.push_str("\", \"notes\": [");
            let mut first_note = true;
            for (nspan, note) in d.notes() {
                if !first_note {
                    out.push_str(", ");
                }
                first_note = false;
                out.push('{');
                push_loc_fields(&mut out, &self.source_map.resolve(*nspan));
                out.push_str(", \"message\": \"");
                escape_into(&mut out, note);
                out.push_str("\"}");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });

        let s = &self.stats;
        out.push_str(&format!(
            "  \"stats\": {{\"ml_loc\": {}, \"c_loc\": {}, \"rust_loc\": {}, \"externals\": {}, \"c_functions\": {}, \"rust_externs\": {}, \"rust_exports\": {}, \"rust_types\": {}, \"passes\": {}, \"type_nodes\": {}, \"gc_edges\": {}, \"jobs\": {}, \"seconds\": {:.6}, \"infer_work_seconds\": {:.6}, \"infer_setup_seconds\": {:.6}, \"infer_critical_path_seconds\": {:.6}, \"cache\": {{\"fn_hits\": {}, \"fn_misses\": {}, \"workers_executed\": {}, \"report_hit\": {}, \"rust_check_hit\": {}}}}},\n",
            s.ml_loc,
            s.c_loc,
            s.rust_loc,
            s.externals,
            s.c_functions,
            s.rust_externs,
            s.rust_exports,
            s.rust_types,
            s.passes,
            s.type_nodes,
            s.gc_edges,
            s.jobs,
            s.seconds,
            s.infer_work_seconds,
            s.infer_setup_seconds,
            s.infer_critical_path_seconds,
            s.cache_fn_hits,
            s.cache_fn_misses,
            s.workers_executed,
            s.cache_report_hit,
            s.rust_check_cached,
        ));

        out.push_str("  \"timings\": [\n");
        let phases: Vec<String> = self
            .timings
            .iter()
            .map(|(phase, wall)| {
                format!(
                    "    {{\"phase\": \"{}\", \"wall_seconds\": {:.6}, \"work_seconds\": {:.6}}}",
                    phase.name(),
                    wall.as_secs_f64(),
                    self.timings.get_work(phase).as_secs_f64()
                )
            })
            .collect();
        out.push_str(&phases.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn push_loc_fields(out: &mut String, loc: &Loc) {
    out.push_str("\"file\": \"");
    escape_into(out, &loc.file);
    out.push_str(&format!("\", \"line\": {}, \"column\": {}", loc.line, loc.col));
}

/// Multi-lingual type inference for OCaml→C foreign function calls — the
/// original one-shot entry point, now a thin facade over a single-corpus
/// [`AnalysisService`].
///
/// Prefer the service API: build an immutable [`Corpus`], submit
/// [`AnalysisRequest`]s to a long-lived [`AnalysisService`]. This facade
/// remains for source compatibility and produces byte-identical reports
/// (it delegates to the same engine).
///
/// # Examples
///
/// ```
/// #![allow(deprecated)]
/// use ffisafe_core::Analyzer;
///
/// let mut az = Analyzer::new();
/// az.add_ml_source("lib.ml", r#"external double : int -> int = "ml_double""#);
/// az.add_c_source("glue.c", r#"
///     value ml_double(value n) {
///         return Val_int(2 * Int_val(n));
///     }
/// "#);
/// let report = az.analyze();
/// assert_eq!(report.error_count(), 0);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "build a `Corpus` and submit an `AnalysisRequest` to an `AnalysisService` instead"
)]
#[derive(Debug, Default)]
pub struct Analyzer {
    options: AnalysisOptions,
    cache_dir: Option<PathBuf>,
    files: Vec<(SourceKind, String, String)>,
}

#[allow(deprecated)]
impl Analyzer {
    /// Creates an analyzer with default options.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with explicit options (ablation experiments,
    /// worker-pool sizing).
    pub fn with_options(options: AnalysisOptions) -> Self {
        Analyzer { options, ..Analyzer::default() }
    }

    /// Enables (`Some`) or disables (`None`) the on-disk two-tier
    /// incremental-reanalysis cache rooted at `dir`.
    pub fn set_cache_dir(&mut self, dir: Option<std::path::PathBuf>) {
        self.cache_dir = dir;
    }

    /// Adds one OCaml source file.
    pub fn add_ml_source(&mut self, name: &str, src: &str) {
        self.files.push((SourceKind::Ml, name.to_string(), src.to_string()));
    }

    /// Adds one C source file.
    pub fn add_c_source(&mut self, name: &str, src: &str) {
        self.files.push((SourceKind::C, name.to_string(), src.to_string()));
    }

    /// Adds one Rust source file.
    pub fn add_rust_source(&mut self, name: &str, src: &str) {
        self.files.push((SourceKind::Rust, name.to_string(), src.to_string()));
    }

    /// Runs the full pipeline: both frontends, linking, parallel
    /// inference, and discharge.
    ///
    /// Delegates to a single-corpus [`AnalysisService`]: the recorded
    /// sources become a [`Corpus`], the cache directory (if any) becomes
    /// the service's shared store. A cache directory that cannot be
    /// opened degrades to an uncached run, preserving this facade's
    /// historical leniency — the service API reports that condition as
    /// [`crate::api::ApiError::Cache`] instead.
    pub fn analyze(&mut self) -> AnalysisReport {
        let mut builder = Corpus::builder();
        for (kind, name, src) in &self.files {
            builder = match kind {
                SourceKind::Ml => builder.ml_source(name, src),
                SourceKind::C => builder.c_source(name, src),
                SourceKind::Rust => builder.rust_source(name, src),
            };
        }
        let corpus = builder.build();
        let service = match &self.cache_dir {
            Some(dir) => {
                AnalysisService::with_cache_dir(dir).unwrap_or_else(|_| AnalysisService::new())
            }
            None => AnalysisService::new(),
        };
        service
            .analyze(&AnalysisRequest::new(corpus).options(self.options))
            .expect("analyzing an in-memory corpus cannot fail")
    }
}
