//! The analyzer driver: the public entry point over the staged pipeline.
//!
//! [`Analyzer`] owns a [`Session`] (source map + interner + diagnostic
//! sink + options + per-phase timings) and the parsed inputs. `analyze`
//! runs the four pipeline stages — [`pipeline::frontend_ml`],
//! [`pipeline::frontend_c`], [`pipeline::infer`] (parallel),
//! [`pipeline::discharge`] — and assembles the [`AnalysisReport`].
//!
//! [`pipeline::frontend_ml`]: crate::pipeline::frontend_ml
//! [`pipeline::frontend_c`]: crate::pipeline::frontend_c
//! [`pipeline::infer`]: crate::pipeline::infer
//! [`pipeline::discharge`]: crate::pipeline::discharge

use crate::engine::AnalysisOptions;
use crate::pipeline::cache::{self, CachedReport, PipelineCache};
use crate::pipeline::{discharge, frontend_c, frontend_ml, infer};
use ffisafe_cache::Tier;
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_support::{DiagnosticBag, DiagnosticCode, Phase, PhaseTimings, Session, SourceMap};
use ffisafe_types::TypeTable;
use std::time::{Duration, Instant};

/// Input-file kind tag folded into the tier-2 corpus digest (the name
/// alone need not determine how a file was parsed).
const KIND_ML: u8 = 0;
/// See [`KIND_ML`].
const KIND_C: u8 = 1;

/// Whole-run statistics (benchmark metrics and the Figure 9 columns).
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Lines of OCaml source added.
    pub ml_loc: usize,
    /// Lines of C source added.
    pub c_loc: usize,
    /// Number of `external` declarations.
    pub externals: usize,
    /// Number of C function definitions analyzed.
    pub c_functions: usize,
    /// Total fixpoint passes across all functions.
    pub passes: usize,
    /// Arena nodes allocated (base table plus every worker's growth).
    pub type_nodes: usize,
    /// GC effect edges recorded.
    pub gc_edges: usize,
    /// Worker threads used by the inference stage.
    pub jobs: usize,
    /// Wall-clock analysis time in seconds.
    pub seconds: f64,
    /// Sum of per-function inference wall-clock (total parallelizable
    /// work). Cache replays contribute zero.
    pub infer_work_seconds: f64,
    /// Slowest single function (lower bound on parallel inference time).
    pub infer_critical_path_seconds: f64,
    /// Functions replayed from the tier-1 (per-function) cache.
    pub cache_fn_hits: usize,
    /// Functions that missed the tier-1 cache (0 with caching disabled).
    pub cache_fn_misses: usize,
    /// Functions analyzed by a live inference worker this run.
    pub workers_executed: usize,
    /// Whether the whole report was served from the tier-2 (report) cache.
    pub cache_report_hit: bool,
}

/// A concrete run-time check that would make an imprecise site safe
/// (§5.2's future-work direction, made actionable).
#[derive(Clone, Debug)]
pub struct RuntimeCheckSuggestion {
    /// The imprecision code the suggestion addresses.
    pub code: ffisafe_support::DiagnosticCode,
    /// Resolved source location of the imprecise site.
    pub location: ffisafe_support::Loc,
    /// What to insert.
    pub suggestion: String,
}

/// The result of one whole-program analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// All findings, sorted by position — populated on cold runs and on
    /// tier-2 cache hits alike (the cache stores the structured
    /// diagnostics next to the rendered report).
    pub diagnostics: DiagnosticBag,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Cumulative wall-clock time per pipeline phase.
    pub timings: PhaseTimings,
    source_map: SourceMap,
    /// Set when this report was served from the tier-2 report cache.
    cached: Option<CachedReport>,
}

impl AnalysisReport {
    /// Number of error findings (Figure 9 "Errors" + false positives —
    /// ground-truth classification is the harness's job).
    pub fn error_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.errors,
            None => self.diagnostics.count_errors(),
        }
    }

    /// Number of questionable-practice warnings.
    pub fn warning_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.warnings,
            None => self.diagnostics.count_warnings(),
        }
    }

    /// Number of imprecision reports.
    pub fn imprecision_count(&self) -> usize {
        match &self.cached {
            Some(c) => c.imprecision,
            None => self.diagnostics.count_imprecision(),
        }
    }

    /// The source map used to resolve diagnostic spans.
    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// For every imprecision report, the run-time check that would make
    /// the site safe — the future-work direction §5.2 sketches
    /// ("eliminating these warnings and instead adding run-time checks to
    /// the C code for these cases").
    pub fn suggest_runtime_checks(&self) -> Vec<RuntimeCheckSuggestion> {
        self.diagnostics
            .iter()
            .filter_map(|d| {
                let suggestion = match d.code() {
                    DiagnosticCode::UnknownOffset => {
                        "guard the access with `if (Is_block(v) && (mlsize_t) i < Wosize_val(v))` \
                         before reading or writing the field"
                    }
                    DiagnosticCode::GlobalValue | DiagnosticCode::AddressOfValue => {
                        "register the location as a GC root with \
                         `caml_register_global_root(&v)` (and remove it with \
                         `caml_remove_global_root` before reuse)"
                    }
                    DiagnosticCode::FunctionPointerCall => {
                        "dispatch through a named wrapper function so the callee's \
                         type and GC effect are visible to the analysis"
                    }
                    _ => return None,
                };
                Some(RuntimeCheckSuggestion {
                    code: d.code(),
                    location: self.source_map.resolve(d.span()),
                    suggestion: suggestion.to_string(),
                })
            })
            .collect()
    }

    /// Renders a human-readable report: [`AnalysisReport::render_stable`]
    /// with the run's wall-clock appended to the summary line.
    pub fn render(&self) -> String {
        let mut out = self.render_stable();
        out.pop();
        out.push_str(&format!(", {:.3}s\n", self.stats.seconds));
        out
    }

    /// Like [`AnalysisReport::render`], but without the trailing timing
    /// line — byte-identical across runs and worker counts, which the
    /// determinism tests rely on. The tier-2 cache stores exactly this
    /// string, so cache hits replay it verbatim.
    pub fn render_stable(&self) -> String {
        if let Some(c) = &self.cached {
            return c.rendered.clone();
        }
        let mut out = String::new();
        for d in self.diagnostics.iter() {
            let loc = self.source_map.resolve(d.span());
            out.push_str(&format!("{loc}: {} [{}]: {}\n", d.severity(), d.code(), d.message()));
            for (nspan, note) in d.notes() {
                let nloc = self.source_map.resolve(*nspan);
                out.push_str(&format!("  {nloc}: note: {note}\n"));
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} imprecision report(s) — {} lines C, {} lines OCaml\n",
            self.error_count(),
            self.warning_count(),
            self.imprecision_count(),
            self.stats.c_loc,
            self.stats.ml_loc,
        ));
        out
    }
}

/// Multi-lingual type inference for OCaml→C foreign function calls.
///
/// # Examples
///
/// ```
/// use ffisafe_core::Analyzer;
///
/// let mut az = Analyzer::new();
/// az.add_ml_source("lib.ml", r#"external double : int -> int = "ml_double""#);
/// az.add_c_source("glue.c", r#"
///     value ml_double(value n) {
///         return Val_int(2 * Int_val(n));
///     }
/// "#);
/// let report = az.analyze();
/// assert_eq!(report.error_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct Analyzer {
    session: Session,
    ml_files: Vec<ocaml::ParsedFile>,
    c_units: Vec<cil::CUnit>,
    /// [`KIND_ML`]/[`KIND_C`] per registered source file, in registration
    /// order (parallel to the session source map).
    file_kinds: Vec<u8>,
    ml_loc: usize,
    c_loc: usize,
}

impl Analyzer {
    /// Creates an analyzer with default options.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with explicit options (ablation experiments,
    /// worker-pool sizing).
    pub fn with_options(options: AnalysisOptions) -> Self {
        Analyzer { session: Session::with_options(options), ..Analyzer::default() }
    }

    /// The session shared by every pipeline stage.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Enables (`Some`) or disables (`None`) the on-disk two-tier
    /// incremental-reanalysis cache rooted at `dir`.
    pub fn set_cache_dir(&mut self, dir: Option<std::path::PathBuf>) {
        self.session.set_cache_dir(dir);
    }

    /// Adds and parses one OCaml source file.
    pub fn add_ml_source(&mut self, name: &str, src: &str) {
        self.ml_loc += src.lines().count();
        let parsed = frontend_ml::parse(&mut self.session, name, src);
        self.ml_files.push(parsed);
        self.file_kinds.push(KIND_ML);
    }

    /// Adds and parses one C source file.
    pub fn add_c_source(&mut self, name: &str, src: &str) {
        self.c_loc += src.lines().count();
        let unit = frontend_c::parse(&mut self.session, name, src);
        self.c_units.push(unit);
        self.file_kinds.push(KIND_C);
    }

    /// Runs the full pipeline: both frontends, linking, parallel
    /// inference, and discharge.
    ///
    /// With a cache directory configured ([`Analyzer::set_cache_dir`] /
    /// the session's `cache_dir`), the run consults the two-tier
    /// incremental cache: an unchanged corpus is served straight from the
    /// report tier, and otherwise unchanged *functions* replay their
    /// memoized outcomes instead of re-running inference workers. Cached
    /// or not, the rendered stable report is byte-identical.
    pub fn analyze(&mut self) -> AnalysisReport {
        let start = Instant::now();
        // Work on a copy of the session so `analyze` can be called again
        // after adding more sources.
        let mut session = self.session.clone();

        // A cache that fails to open (unwritable dir, I/O error) disables
        // caching for the run; it never fails the analysis.
        let mut pcache: Option<PipelineCache> =
            session.cache_dir().and_then(|dir| PipelineCache::open(dir).ok());

        // Tier-2 probe: an already-analyzed (corpus, options) pair skips
        // the pipeline entirely. The digest is only worth computing when a
        // cache is actually open.
        let corpus_fp = pcache.as_ref().map(|_| {
            cache::corpus_digest(
                session
                    .source_map()
                    .files()
                    .zip(&self.file_kinds)
                    .map(|((_, f), &kind)| (kind, f.name(), f.src())),
                session.options(),
            )
        });
        if let (Some(pc), Some(fp)) = (pcache.as_mut(), corpus_fp) {
            if let Some(cached) =
                pc.store.get(Tier::Report, fp).and_then(|b| cache::decode_report(&b))
            {
                let _ = pc.store.flush();
                let stats = AnalysisStats {
                    ml_loc: self.ml_loc,
                    c_loc: self.c_loc,
                    seconds: start.elapsed().as_secs_f64(),
                    cache_report_hit: true,
                    ..AnalysisStats::default()
                };
                return AnalysisReport {
                    diagnostics: cached.diagnostics.clone(),
                    stats,
                    timings: *session.timings(),
                    source_map: session.source_map().clone(),
                    cached: Some(cached),
                };
            }
        }

        let mut table = TypeTable::new();
        let ml =
            session.time(Phase::FrontendMl, |s| frontend_ml::run(s, &self.ml_files, &mut table));
        let c = session.time(Phase::FrontendC, |s| frontend_c::run(s, &self.c_units));
        let mut base = session.time(Phase::Infer, |s| infer::link(s, table, &ml, &c.program));
        if let Some(pc) = pcache.as_mut() {
            pc.base_digest =
                cache::base_surface_digest(session.options(), &self.ml_files, &c.program);
        }
        let inferred = session
            .time(Phase::Infer, |s| infer::run(s, &base, &c.program, &ml.phase1, pcache.as_mut()));
        session
            .timings_mut()
            .set_work(Phase::Infer, Duration::from_secs_f64(inferred.work_seconds));
        session.time(Phase::Discharge, |s| discharge::run(s, &mut base, &inferred, &ml.phase1));

        let mut diags = session.take_diagnostics();
        diags.dedup();
        let stats = AnalysisStats {
            ml_loc: self.ml_loc,
            c_loc: self.c_loc,
            externals: ml.phase1.signatures.len(),
            c_functions: c.program.functions.len(),
            passes: inferred.passes,
            type_nodes: base.table.node_count() + inferred.new_nodes,
            gc_edges: base.constraints.gc_edge_count() + inferred.new_gc_edges,
            jobs: inferred.jobs,
            seconds: start.elapsed().as_secs_f64(),
            infer_work_seconds: inferred.work_seconds,
            infer_critical_path_seconds: inferred.critical_path_seconds,
            cache_fn_hits: inferred.cache_hits,
            cache_fn_misses: inferred.cache_misses,
            workers_executed: inferred.workers_executed,
            cache_report_hit: false,
        };
        let report = AnalysisReport {
            diagnostics: diags,
            stats,
            timings: *session.timings(),
            source_map: session.source_map().clone(),
            cached: None,
        };
        if let (Some(pc), Some(fp)) = (pcache.as_mut(), corpus_fp) {
            let entry = CachedReport {
                rendered: report.render_stable(),
                errors: report.error_count(),
                warnings: report.warning_count(),
                imprecision: report.imprecision_count(),
                diagnostics: report.diagnostics.clone(),
            };
            let _ = pc.store.put(Tier::Report, fp, &cache::encode_report(&entry));
            let _ = pc.store.flush();
        }
        report
    }
}
