//! The per-function inference engine: Figures 6 and 7.
//!
//! Types have the form `ct [B{I}]{T}`: a flow-insensitive extended C type
//! `ct` (kept in the union-find [`TypeTable`]) and a flow-sensitive shape
//! `[B{I}]{T}` (kept in per-program-point environments). The engine walks
//! the flat Figure 5 IR, joining environments at labels (`G`) until a
//! fixpoint, then makes one reporting pass that emits diagnostics and
//! records deferred obligations (`T + 1 ≤ Ψ` bounds and GC registration
//! checks).

use crate::eta::eta;
use crate::registry::{FuncOrigin, Registry};
use ffisafe_cil::ir::*;
use ffisafe_cil::liveness::{self, Liveness};
use ffisafe_cil::CTypeExpr;
use ffisafe_support::{Diagnostic, DiagnosticBag, DiagnosticCode, Interner, Span};
use ffisafe_types::{
    Boxedness, ConstraintSet, CtId, CtNode, FlatInt, GcId, MtId, MtNode, Shape, TypeTable,
};
use std::collections::{HashMap, HashSet};

pub use ffisafe_support::session::AnalysisOptions;

/// A deferred (App)-rule check: when `effect` solves to `gc`, every live
/// heap pointer at the call must be registered.
#[derive(Clone, Debug)]
pub struct GcObligation {
    /// Enclosing function.
    pub func: String,
    /// Callee name (for messages).
    pub callee: String,
    /// The callee's GC effect.
    pub effect: GcId,
    /// Live-across locals at the call, with name and type.
    pub live: Vec<(String, CtId)>,
    /// Variables registered with `CAMLprotect` in this function.
    pub protected: HashSet<String>,
    /// Call site.
    pub span: Span,
}

/// Output of analyzing one function.
#[derive(Debug, Default)]
pub struct FunctionResult {
    /// Diagnostics from the reporting pass.
    pub diagnostics: DiagnosticBag,
    /// Deferred GC checks.
    pub obligations: Vec<GcObligation>,
    /// Fixpoint passes executed.
    pub passes: usize,
}

/// Analyzes one lowered function against the registry.
pub fn analyze_function(
    table: &mut TypeTable,
    constraints: &mut ConstraintSet,
    registry: &mut Registry,
    interner: &mut Interner,
    options: &AnalysisOptions,
    func: &IrFunction,
) -> FunctionResult {
    let liveness = liveness::compute(func);
    let info = registry
        .get(interner, &func.name)
        .unwrap_or_else(|| panic!("function {} not registered", func.name))
        .clone();
    // Flow-insensitive cts: parameters share the registry's (possibly
    // external-unified) types; locals get η of their declarations.
    let mut var_cts: Vec<CtId> = Vec::with_capacity(func.locals.len());
    for (i, local) in func.locals.iter().enumerate() {
        if i < func.n_params && i < info.params.len() {
            var_cts.push(info.params[i]);
        } else {
            var_cts.push(eta(table, &local.ty));
        }
    }
    // Protection set P: constant across the body (§3.3.2).
    let mut protected: HashSet<VarId> = HashSet::new();
    for s in &func.body {
        if let IrStmtKind::Protect(v) = s.kind {
            protected.insert(v);
        }
    }
    // Address-taken int locals are pinned to ⊤ (§5.1).
    let mut volatile_ints: HashSet<VarId> = HashSet::new();
    for &v in &func.address_taken {
        if matches!(func.locals[v.as_usize()].ty, CTypeExpr::Int | CTypeExpr::Float) {
            volatile_ints.insert(v);
        }
    }

    let mut engine = Engine {
        table,
        constraints,
        registry,
        interner,
        options,
        func,
        liveness,
        var_cts,
        protected,
        volatile_ints,
        ret_ct: info.ret,
        self_effect: info.effect,
        labels: HashMap::new(),
        env: Vec::new(),
        reporting: false,
        diags: DiagnosticBag::new(),
        obligations: Vec::new(),
        reported_addr_of: HashSet::new(),
    };
    // Address-of on value-typed locals: imprecision (§5.1), once per local.
    for &v in &func.address_taken {
        if func.locals[v.as_usize()].ty.contains_value() {
            engine.diags.push(Diagnostic::new(
                DiagnosticCode::AddressOfValue,
                func.locals[v.as_usize()].span,
                format!(
                    "address of `value` variable `{}` is taken; the analysis cannot track it",
                    func.locals[v.as_usize()].name
                ),
            ));
            engine.reported_addr_of.insert(v);
        }
    }

    let mut passes = 0usize;
    const MAX_PASSES: usize = 64;
    loop {
        passes += 1;
        let changed = engine.run_pass();
        if !changed || passes >= MAX_PASSES {
            break;
        }
    }
    engine.reporting = true;
    engine.run_pass();
    passes += 1;

    FunctionResult {
        diagnostics: std::mem::take(&mut engine.diags),
        obligations: std::mem::take(&mut engine.obligations),
        passes,
    }
}

struct Engine<'a> {
    table: &'a mut TypeTable,
    constraints: &'a mut ConstraintSet,
    registry: &'a mut Registry,
    interner: &'a mut Interner,
    options: &'a AnalysisOptions,
    func: &'a IrFunction,
    liveness: Liveness,
    var_cts: Vec<CtId>,
    protected: HashSet<VarId>,
    volatile_ints: HashSet<VarId>,
    ret_ct: CtId,
    self_effect: GcId,
    /// `G`: environment at each label, all-⊥ initially (`reset(Γ)`).
    labels: HashMap<Label, Vec<Shape>>,
    env: Vec<Shape>,
    reporting: bool,
    diags: DiagnosticBag,
    obligations: Vec<GcObligation>,
    reported_addr_of: HashSet<VarId>,
}

/// An expression's inferred `ct [B{I}]{T}`.
#[derive(Clone, Copy, Debug)]
struct ExprTy {
    ct: CtId,
    shape: Shape,
}

impl<'a> Engine<'a> {
    // ---- plumbing ------------------------------------------------------------

    fn report(&mut self, code: DiagnosticCode, span: Span, msg: String) {
        if self.reporting {
            self.diags.push(Diagnostic::new(code, span, msg));
        }
    }

    fn bottom_env(&self) -> Vec<Shape> {
        vec![Shape::bottom(); self.func.locals.len()]
    }

    fn initial_env(&self) -> Vec<Shape> {
        let mut env = self.bottom_env();
        for slot in env.iter_mut().take(self.func.n_params) {
            *slot = Shape::unknown();
        }
        env
    }

    fn join_into_label(&mut self, label: Label, env: &[Shape]) -> bool {
        let entry = self.labels.entry(label).or_insert_with(|| vec![Shape::bottom(); env.len()]);
        let mut changed = false;
        for (g, e) in entry.iter_mut().zip(env.iter()) {
            let joined = g.join(*e);
            if joined != *g {
                *g = joined;
                changed = true;
            }
        }
        changed
    }

    /// Normalizes a shape according to the variable's resolved `ct`
    /// (§3.3: non-`value`, non-`int` types carry no useful shape).
    fn shape_for_ct(&mut self, ct: CtId, s: Shape) -> Shape {
        let ct = self.table.resolve_ct(ct);
        match self.table.ct_node(ct).clone() {
            CtNode::Value(_) | CtNode::Var => s,
            CtNode::Int => Shape::new(Boxedness::Top, FlatInt::Known(0), s.t),
            _ => Shape::unknown(),
        }
    }

    fn set_var(&mut self, v: VarId, s: Shape) {
        let s = if self.volatile_ints.contains(&v) { Shape::unknown() } else { s };
        let ct = self.var_cts[v.as_usize()];
        self.env[v.as_usize()] = self.shape_for_ct(ct, s);
    }

    /// The `mt` under a `value` ct, binding unknown cts to fresh values.
    fn value_mt(&mut self, ct: CtId) -> Option<MtId> {
        let ct = self.table.resolve_ct(ct);
        match self.table.ct_node(ct).clone() {
            CtNode::Value(mt) => Some(mt),
            CtNode::Var => {
                let fresh = self.table.ct_fresh_value();
                self.table.unify_ct(ct, fresh).ok();
                self.value_mt(fresh)
            }
            _ => None,
        }
    }

    /// Forces `mt` to be a representational type, binding variables.
    /// Returns `None` (without reporting) for abstract/custom types.
    fn rep_components(
        &mut self,
        mt: MtId,
    ) -> Option<(ffisafe_types::PsiId, ffisafe_types::SigmaId)> {
        let mt = self.table.resolve_mt(mt);
        match self.table.mt_node(mt).clone() {
            MtNode::Rep(psi, sigma) => Some((psi, sigma)),
            MtNode::Var => {
                let fresh = self.table.mt_fresh_rep();
                self.table.unify_mt(mt, fresh).ok();
                match self.table.mt_node(fresh).clone() {
                    MtNode::Rep(psi, sigma) => Some((psi, sigma)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn unify_ct_or_report(&mut self, a: CtId, b: CtId, span: Span, what: &str) {
        if let Err(e) = self.table.unify_ct(a, b) {
            self.report(DiagnosticCode::TypeMismatch, span, format!("{what}: {e}"));
        }
    }

    // ---- the driver pass -------------------------------------------------------

    /// Walks the body once; returns whether any label environment changed.
    fn run_pass(&mut self) -> bool {
        self.env = self.initial_env();
        let mut changed = false;
        for idx in 0..self.func.body.len() {
            changed |= self.step(idx);
        }
        changed
    }

    fn step(&mut self, idx: usize) -> bool {
        let stmt = self.func.body[idx].clone();
        let span = stmt.span;
        let mut changed = false;
        match &stmt.kind {
            IrStmtKind::Nop => {}
            IrStmtKind::Mark(l) => {
                let env = self.env.clone();
                changed |= self.join_into_label(*l, &env);
                self.env = self.labels[l].clone();
            }
            IrStmtKind::Goto(l) => {
                let env = self.env.clone();
                changed |= self.join_into_label(*l, &env);
                self.env = self.bottom_env();
            }
            IrStmtKind::Protect(_) => {}
            IrStmtKind::Return(e) => {
                if let Some(e) = e {
                    let t = self.eval(e);
                    let ret = self.ret_ct;
                    self.unify_ct_or_report(t.ct, ret, span, "return type");
                    self.check_safe(&t, span, "returned value");
                }
                if !self.protected.is_empty() {
                    self.report(
                        DiagnosticCode::MissingCamlReturn,
                        span,
                        format!(
                            "`{}` registered values with CAMLparam/CAMLlocal but exits through plain return",
                            self.func.name
                        ),
                    );
                }
                self.env = self.bottom_env();
            }
            IrStmtKind::CamlReturn(e) => {
                if let Some(e) = e {
                    let t = self.eval(e);
                    let ret = self.ret_ct;
                    self.unify_ct_or_report(t.ct, ret, span, "return type");
                    self.check_safe(&t, span, "returned value");
                }
                if self.protected.is_empty() {
                    self.report(
                        DiagnosticCode::SpuriousCamlReturn,
                        span,
                        format!(
                            "`{}` uses CAMLreturn but never registered anything with CAMLparam/CAMLlocal",
                            self.func.name
                        ),
                    );
                }
                self.env = self.bottom_env();
            }
            IrStmtKind::Assign(lval, e) => {
                let t = self.eval(e);
                self.assign(lval, t, span);
            }
            IrStmtKind::Call { dst, callee, args } => self.call(idx, dst, callee, args, span),
            IrStmtKind::If { cond, target } => changed |= self.branch(cond, *target, span),
        }
        changed
    }

    fn assign(&mut self, lval: &IrLval, t: ExprTy, span: Span) {
        match lval {
            IrLval::Var(v) => {
                let vct = self.var_cts[v.as_usize()];
                self.unify_ct_or_report(t.ct, vct, span, "assignment");
                self.set_var(*v, t.shape);
            }
            IrLval::Mem { base, offset } => {
                let b = self.eval(base);
                let o = self.eval(offset);
                self.store(b, o, t, span);
            }
        }
    }

    /// (LSet Stmt): heap stores are flow-insensitive; the stored value must
    /// be safe and match the field type.
    fn store(&mut self, base: ExprTy, offset: ExprTy, value: ExprTy, span: Span) {
        self.check_safe(&value, span, "stored value");
        let base_ct = self.table.resolve_ct(base.ct);
        match self.table.ct_node(base_ct).clone() {
            CtNode::Value(mt) => {
                let Some(field) = self.value_field(mt, base.shape, offset.shape.t, span) else {
                    return;
                };
                let want = self.table.ct_value(field);
                self.unify_ct_or_report(value.ct, want, span, "value stored into OCaml block");
            }
            CtNode::Ptr(inner) => {
                self.unify_ct_or_report(value.ct, inner, span, "store through pointer");
            }
            CtNode::Var => {
                let fresh = self.table.fresh_ct();
                let ptr = self.table.ct_ptr(fresh);
                self.table.unify_ct(base_ct, ptr).ok();
                self.unify_ct_or_report(value.ct, fresh, span, "store through pointer");
            }
            other => {
                let rendered = self.table.render_ct(base_ct);
                let _ = other;
                self.report(
                    DiagnosticCode::TypeMismatch,
                    span,
                    format!("store through non-pointer type `{rendered}`"),
                );
            }
        }
    }

    /// Locates the field `mt` of an OCaml block at (`tag` from the shape,
    /// `index` = shape offset + extra), implementing (Val Deref Exp) /
    /// (Val Deref Tuple Exp) and their store duals.
    fn value_field(&mut self, mt: MtId, shape: Shape, extra: FlatInt, span: Span) -> Option<MtId> {
        // Unreachable code (⊥ shapes) is vacuously well-typed: `reset(Γ)`
        // satisfies every rule, so no structural demands are made.
        if shape.b == Boxedness::Bot {
            return None;
        }
        // Combined offset
        let off = shape.i.aop("+", extra);
        let index = match off {
            FlatInt::Known(n) if n >= 0 => n as usize,
            FlatInt::Bot => 0,
            _ => {
                // if the base offset was already ⊤, the pointer arithmetic
                // that lost it has reported the imprecision at its own site
                if !matches!(shape.i, FlatInt::Top) {
                    self.report(
                        DiagnosticCode::UnknownOffset,
                        span,
                        "offset into OCaml block is not statically known".to_string(),
                    );
                }
                return None;
            }
        };
        let Some((psi, sigma)) = self.rep_components(mt) else {
            let rendered = self.table.render_mt(mt);
            self.report(
                DiagnosticCode::TypeMismatch,
                span,
                format!("structured-block access on non-block type `{rendered}`"),
            );
            return None;
        };
        if shape.b == Boxedness::Unboxed {
            self.report(
                DiagnosticCode::BoxednessMismatch,
                span,
                "dereference of a value known to be unboxed".to_string(),
            );
            return None;
        }
        let tag = match shape.t {
            FlatInt::Known(n) if n >= 0 && shape.b == Boxedness::Boxed => n as usize,
            FlatInt::Bot => 0,
            _ => {
                // (Val Deref Tuple Exp): no tag test — the block must be a
                // bare product (tuple/record/ref/array) at tag 0.
                if self.reporting && shape.b != Boxedness::Bot {
                    // strictness per the paper: tag-0 access without a
                    // boxedness test requires a product type; unify Ψ = 0
                    // only when Ψ is not already a known sum count
                    let psi_node = self.table.psi_node(psi);
                    if matches!(psi_node, ffisafe_types::PsiNode::Var) {
                        let zero = self.table.psi_count(0);
                        self.table.unify_psi(psi, zero).ok();
                    }
                }
                0
            }
        };
        match self.table.sigma_at(sigma, tag) {
            Ok(pi) => match self.table.pi_at(pi, index) {
                Ok(field) => Some(field),
                Err(e) => {
                    self.report(DiagnosticCode::FieldRange, span, e.to_string());
                    None
                }
            },
            Err(e) => {
                self.report(DiagnosticCode::TagRange, span, e.to_string());
                None
            }
        }
    }

    fn check_safe(&mut self, t: &ExprTy, span: Span, what: &str) {
        match t.shape.i {
            FlatInt::Known(0) | FlatInt::Bot => {}
            FlatInt::Known(n) => self.report(
                DiagnosticCode::UnsafeValue,
                span,
                format!("{what} points into the middle of an OCaml block (offset {n})"),
            ),
            FlatInt::Top => {
                // already reported as UnknownOffset where the offset was lost
            }
        }
    }

    // ---- calls ----------------------------------------------------------------

    fn call(
        &mut self,
        idx: usize,
        dst: &Option<IrLval>,
        callee: &Callee,
        args: &[IrExpr],
        span: Span,
    ) {
        let arg_tys: Vec<ExprTy> = args.iter().map(|a| self.eval(a)).collect();
        let info = match callee {
            Callee::Pointer(p) => {
                let _ = self.eval(p);
                self.report(
                    DiagnosticCode::FunctionPointerCall,
                    span,
                    "call through an unknown C function pointer; no constraints generated"
                        .to_string(),
                );
                let fresh = self.table.fresh_ct();
                if let Some(lv) = dst {
                    let t = ExprTy { ct: fresh, shape: Shape::unknown() };
                    self.assign(lv, t, span);
                }
                return;
            }
            Callee::Named(name) => {
                self.registry.resolve_call(self.table, self.interner, name, args.len(), span)
            }
        };
        if info.params.len() != args.len()
            && matches!(
                info.origin,
                FuncOrigin::Defined | FuncOrigin::Declared | FuncOrigin::Runtime
            )
        {
            self.report(
                DiagnosticCode::ArityMismatch,
                span,
                format!(
                    "`{}` called with {} argument(s) but declared with {}",
                    info.name,
                    args.len(),
                    info.params.len()
                ),
            );
        }
        for (t, p) in arg_tys.iter().zip(info.params.iter()) {
            self.unify_ct_or_report(t.ct, *p, span, &format!("argument to `{}`", info.name));
            self.check_safe(t, span, &format!("argument to `{}`", info.name));
        }
        if self.options.gc_effects {
            self.constraints.add_gc_edge(info.effect, self.self_effect);
            if self.reporting && !info.noreturn {
                let live = self.liveness.live_across(self.func, idx);
                let live: Vec<(String, CtId)> = live
                    .iter()
                    .map(|v| {
                        (self.func.locals[v.as_usize()].name.clone(), self.var_cts[v.as_usize()])
                    })
                    .collect();
                let protected = self
                    .protected
                    .iter()
                    .map(|v| self.func.locals[v.as_usize()].name.clone())
                    .collect();
                self.obligations.push(GcObligation {
                    func: self.func.name.clone(),
                    callee: info.name.clone(),
                    effect: info.effect,
                    live,
                    protected,
                    span,
                });
            }
        }
        if let Some(lv) = dst {
            let t = ExprTy { ct: info.ret, shape: Shape::unknown() };
            self.assign(lv, t, span);
        }
        if info.noreturn {
            self.env = self.bottom_env();
        }
    }

    // ---- branches ----------------------------------------------------------------

    fn branch(&mut self, cond: &IrCond, target: Label, span: Span) -> bool {
        let fs = self.options.flow_sensitive;
        match cond {
            IrCond::Expr(e) => {
                let t = self.eval(e);
                match (fs, t.shape.t) {
                    (true, FlatInt::Known(0)) => false, // branch never taken
                    (true, FlatInt::Known(_)) => {
                        let env = self.env.clone();
                        let changed = self.join_into_label(target, &env);
                        self.env = self.bottom_env(); // fall-through unreachable
                        changed
                    }
                    _ => {
                        let env = self.env.clone();
                        self.join_into_label(target, &env)
                    }
                }
            }
            IrCond::Unboxed(x) => self.boxedness_test(*x, target, span, Boxedness::Unboxed),
            IrCond::Boxed(x) => self.boxedness_test(*x, target, span, Boxedness::Boxed),
            IrCond::SumTagEq(x, n) => {
                let vct = self.var_cts[x.as_usize()];
                let shape = self.env[x.as_usize()];
                if shape.b == Boxedness::Unboxed {
                    self.report(
                        DiagnosticCode::BoxednessMismatch,
                        span,
                        "Tag_val applied to a value known to be unboxed".to_string(),
                    );
                }
                if !shape.is_safe() {
                    self.report(
                        DiagnosticCode::UnsafeValue,
                        span,
                        "Tag_val applied to an interior pointer".to_string(),
                    );
                }
                if let Some(mt) = self.value_mt(vct) {
                    if let Some((_, sigma)) = self.rep_components(mt) {
                        // unreachable code makes no structural demands
                        if *n >= 0 && shape.b != Boxedness::Bot {
                            if let Err(e) = self.table.sigma_at(sigma, *n as usize) {
                                self.report(DiagnosticCode::TagRange, span, e.to_string());
                            }
                        }
                    }
                } else {
                    let rendered = self.table.render_ct(vct);
                    self.report(
                        DiagnosticCode::TypeMismatch,
                        span,
                        format!("Tag_val applied to non-value type `{rendered}`"),
                    );
                }
                if !fs {
                    let env = self.env.clone();
                    return self.join_into_label(target, &env);
                }
                let mut tenv = self.env.clone();
                tenv[x.as_usize()] =
                    Shape::new(Boxedness::Boxed, FlatInt::Known(0), FlatInt::Known(*n));
                self.join_into_label(target, &tenv)
            }
            IrCond::IntTagEq(x, n) => {
                let vct = self.var_cts[x.as_usize()];
                let shape = self.env[x.as_usize()];
                if shape.b == Boxedness::Boxed {
                    self.report(
                        DiagnosticCode::BoxednessMismatch,
                        span,
                        "Int_val tag test on a value known to be boxed".to_string(),
                    );
                }
                if let Some(mt) = self.value_mt(vct) {
                    if let Some((psi, _)) = self.rep_components(mt) {
                        if self.reporting && shape.b != Boxedness::Bot {
                            self.constraints.add_psi_bound(
                                FlatInt::Known(*n),
                                psi,
                                span,
                                format!("int_tag test against {n}"),
                            );
                        }
                    }
                }
                if !fs {
                    let env = self.env.clone();
                    return self.join_into_label(target, &env);
                }
                let mut tenv = self.env.clone();
                tenv[x.as_usize()] =
                    Shape::new(Boxedness::Unboxed, FlatInt::Known(0), FlatInt::Known(*n));
                self.join_into_label(target, &tenv)
            }
        }
    }

    /// (If unboxed Stmt) and its `Is_block` dual.
    fn boxedness_test(
        &mut self,
        x: VarId,
        target: Label,
        span: Span,
        on_target: Boxedness,
    ) -> bool {
        let vct = self.var_cts[x.as_usize()];
        let shape = self.env[x.as_usize()];
        if !shape.is_safe() {
            self.report(
                DiagnosticCode::UnsafeValue,
                span,
                "boxedness test on an interior pointer".to_string(),
            );
        }
        match self.value_mt(vct) {
            Some(mt) => {
                // The Figure 8 example: the test forces a representational
                // type when nothing else is known. Abstract/custom types
                // keep their identity (only B is refined).
                let mt = self.table.resolve_mt(mt);
                if matches!(self.table.mt_node(mt), MtNode::Var) {
                    let fresh = self.table.mt_fresh_rep();
                    self.table.unify_mt(mt, fresh).ok();
                }
            }
            None => {
                let rendered = self.table.render_ct(vct);
                self.report(
                    DiagnosticCode::TypeMismatch,
                    span,
                    format!("boxedness test on non-value type `{rendered}`"),
                );
            }
        }
        if !self.options.flow_sensitive {
            let env = self.env.clone();
            return self.join_into_label(target, &env);
        }
        let other = match on_target {
            Boxedness::Unboxed => Boxedness::Boxed,
            _ => Boxedness::Unboxed,
        };
        let mut tenv = self.env.clone();
        tenv[x.as_usize()] = Shape::new(on_target, FlatInt::Known(0), shape.t);
        let changed = self.join_into_label(target, &tenv);
        self.env[x.as_usize()] = Shape::new(other, FlatInt::Known(0), shape.t);
        changed
    }

    // ---- expressions ---------------------------------------------------------------

    fn eval(&mut self, e: &IrExpr) -> ExprTy {
        let span = e.span;
        match &e.kind {
            IrExprKind::Int(n) => ExprTy { ct: self.table.ct_int(), shape: Shape::int_const(*n) },
            IrExprKind::Float => ExprTy { ct: self.table.ct_float(), shape: Shape::unknown() },
            IrExprKind::Str(_) => {
                let i = self.table.ct_int();
                let p = self.table.ct_ptr(i);
                ExprTy { ct: p, shape: Shape::unknown() }
            }
            IrExprKind::OpaqueInt => ExprTy { ct: self.table.ct_int(), shape: Shape::unknown() },
            IrExprKind::Var(v) => {
                ExprTy { ct: self.var_cts[v.as_usize()], shape: self.env[v.as_usize()] }
            }
            IrExprKind::AddrOfVar(v) => {
                if self.func.locals[v.as_usize()].ty.contains_value()
                    && !self.reported_addr_of.contains(v)
                {
                    // normally pre-reported; guard for synthesized temps
                    self.reported_addr_of.insert(*v);
                }
                let inner = self.var_cts[v.as_usize()];
                let p = self.table.ct_ptr(inner);
                ExprTy { ct: p, shape: Shape::unknown() }
            }
            IrExprKind::ValInt(inner) => {
                let t = self.eval(inner);
                let ict = self.table.ct_int();
                if let Err(err) = self.table.unify_ct(t.ct, ict) {
                    self.report(
                        DiagnosticCode::TypeMismatch,
                        span,
                        format!("Val_int applied to a non-integer: {err}"),
                    );
                }
                // fresh (ψ, σ) with T + 1 ≤ ψ  — (Val Int Exp)
                let mt = self.table.mt_fresh_rep();
                let MtNode::Rep(psi, _) = *self.table.mt_node(mt) else { unreachable!() };
                if self.reporting {
                    self.constraints.add_psi_bound(
                        t.shape.t,
                        psi,
                        span,
                        "Val_int conversion".to_string(),
                    );
                }
                let ct = self.table.ct_value(mt);
                ExprTy { ct, shape: Shape::new(Boxedness::Unboxed, FlatInt::Known(0), t.shape.t) }
            }
            IrExprKind::IntVal(inner) => {
                let t = self.eval(inner);
                let fresh = self.table.ct_fresh_value();
                if let Err(err) = self.table.unify_ct(t.ct, fresh) {
                    self.report(
                        DiagnosticCode::TypeMismatch,
                        span,
                        format!("Int_val applied to a non-value: {err}"),
                    );
                }
                // The value must admit an immediate representation: abstract
                // types (strings, floats, custom data, unmodeled
                // polymorphic variants) are always boxed, as are
                // representational types with no nullary constructors.
                if let Some(mt) = self.value_mt(t.ct) {
                    let mt = self.table.resolve_mt(mt);
                    match self.table.mt_node(mt).clone() {
                        MtNode::Abstract { name, .. } => {
                            self.report(
                                DiagnosticCode::TypeMismatch,
                                span,
                                format!("Int_val applied to a value of boxed type `{name}`"),
                            );
                        }
                        MtNode::Rep(psi, sigma)
                            if matches!(
                                self.table.psi_node(psi),
                                ffisafe_types::PsiNode::Count(0)
                            ) && self.table.sigma_nonempty(sigma) =>
                        {
                            let rendered = self.table.render_mt(mt);
                            self.report(
                                DiagnosticCode::TypeMismatch,
                                span,
                                format!(
                                    "Int_val applied to a value of type `{rendered}`, which is always boxed"
                                ),
                            );
                        }
                        _ => {}
                    }
                }
                if t.shape.b == Boxedness::Boxed {
                    self.report(
                        DiagnosticCode::BoxednessMismatch,
                        span,
                        "Int_val applied to a value known to be boxed".to_string(),
                    );
                }
                ExprTy {
                    ct: self.table.ct_int(),
                    shape: Shape::new(Boxedness::Top, FlatInt::Known(0), t.shape.t),
                }
            }
            IrExprKind::Deref(inner) => self.deref(inner, span),
            IrExprKind::PtrAdd(a, b) => self.add(a, b, "+", span),
            IrExprKind::Binop(op @ ("+" | "-"), a, b) => self.add(a, b, op, span),
            IrExprKind::Binop(op, a, b) => {
                let ta = self.eval(a);
                let tb = self.eval(b);
                self.arith(op, ta, tb, span)
            }
            IrExprKind::Not(inner) => {
                let t = self.eval(inner);
                let nt = match t.shape.t {
                    FlatInt::Known(0) => FlatInt::Known(1),
                    FlatInt::Known(_) => FlatInt::Known(0),
                    other => other,
                };
                ExprTy {
                    ct: self.table.ct_int(),
                    shape: Shape::new(Boxedness::Top, FlatInt::Known(0), nt),
                }
            }
            IrExprKind::Neg(inner) => {
                let t = self.eval(inner);
                let nt = FlatInt::Known(0).aop("-", t.shape.t);
                ExprTy {
                    ct: self.table.ct_int(),
                    shape: Shape::new(Boxedness::Top, FlatInt::Known(0), nt),
                }
            }
            IrExprKind::Cast(ty, inner) => self.cast(ty, inner, span),
            IrExprKind::Prim(op, args) => self.prim(*op, args, span),
            IrExprKind::Unknown => ExprTy { ct: self.table.fresh_ct(), shape: Shape::unknown() },
        }
    }

    /// (AOP Exp): both operands C integers; values may be compared for
    /// equality against each other.
    fn arith(&mut self, op: &str, ta: ExprTy, tb: ExprTy, span: Span) -> ExprTy {
        let a_ct = self.table.resolve_ct(ta.ct);
        let b_ct = self.table.resolve_ct(tb.ct);
        let a_val = matches!(self.table.ct_node(a_ct), CtNode::Value(_));
        let b_val = matches!(self.table.ct_node(b_ct), CtNode::Value(_));
        if (op == "==" || op == "!=") && (a_val || b_val) {
            // comparing two OCaml values (e.g. `x == Val_unit`)
            self.unify_ct_or_report(ta.ct, tb.ct, span, "value comparison");
        } else {
            let ia = self.table.ct_int();
            self.unify_ct_or_report(ta.ct, ia, span, "arithmetic operand");
            let ib = self.table.ct_int();
            self.unify_ct_or_report(tb.ct, ib, span, "arithmetic operand");
        }
        ExprTy {
            ct: self.table.ct_int(),
            shape: Shape::new(Boxedness::Top, FlatInt::Known(0), ta.shape.t.aop(op, tb.shape.t)),
        }
    }

    /// `e₁ +p e₂` and additive operators: dispatches between
    /// (Add Val Exp), (Add C Exp) and (AOP Exp) on the inferred types.
    fn add(&mut self, a: &IrExpr, b: &IrExpr, op: &str, span: Span) -> ExprTy {
        let ta = self.eval(a);
        let tb = self.eval(b);
        let a_ct = self.table.resolve_ct(ta.ct);
        let b_ct = self.table.resolve_ct(tb.ct);
        let a_node = self.table.ct_node(a_ct).clone();
        let b_node = self.table.ct_node(b_ct).clone();
        match (a_node, b_node) {
            // (Add Val Exp)
            (CtNode::Value(mt), _) => self.add_value(mt, ta, tb, op, span),
            (_, CtNode::Value(mt)) if op == "+" => self.add_value(mt, tb, ta, op, span),
            // (Add C Exp)
            (CtNode::Ptr(_), _) => {
                let i = self.table.ct_int();
                self.unify_ct_or_report(tb.ct, i, span, "pointer offset");
                ExprTy { ct: ta.ct, shape: Shape::unknown() }
            }
            (_, CtNode::Ptr(_)) if op == "+" => {
                let i = self.table.ct_int();
                self.unify_ct_or_report(ta.ct, i, span, "pointer offset");
                ExprTy { ct: tb.ct, shape: Shape::unknown() }
            }
            _ => self.arith(op, ta, tb, span),
        }
    }

    fn add_value(&mut self, mt: MtId, base: ExprTy, off: ExprTy, op: &str, span: Span) -> ExprTy {
        let ict = self.table.ct_int();
        self.unify_ct_or_report(off.ct, ict, span, "offset into OCaml block");
        let m = if op == "-" { FlatInt::Known(0).aop("-", off.shape.t) } else { off.shape.t };
        let new_off = base.shape.i.aop("+", m);
        if matches!(new_off, FlatInt::Top) {
            self.report(
                DiagnosticCode::UnknownOffset,
                span,
                "pointer arithmetic on an OCaml value with a statically-unknown offset".to_string(),
            );
        }
        // grow the rows so the new interior pointer is known in-bounds
        // ((Add Val Exp) side conditions), when tag and offset are known
        if let (FlatInt::Known(tag), FlatInt::Known(idx)) = (base.shape.t, new_off) {
            if base.shape.b == Boxedness::Boxed && tag >= 0 && idx >= 0 {
                if let Some((_, sigma)) = self.rep_components(mt) {
                    match self.table.sigma_at(sigma, tag as usize) {
                        Ok(pi) => {
                            if let Err(e) = self.table.pi_at(pi, idx as usize) {
                                self.report(DiagnosticCode::FieldRange, span, e.to_string());
                            }
                        }
                        Err(e) => {
                            self.report(DiagnosticCode::TagRange, span, e.to_string());
                        }
                    }
                }
            }
        }
        ExprTy { ct: base.ct, shape: Shape::new(base.shape.b, new_off, base.shape.t) }
    }

    /// `*e` — (Val Deref Exp) / (Val Deref Tuple Exp) / (C Deref Exp).
    fn deref(&mut self, inner: &IrExpr, span: Span) -> ExprTy {
        let t = self.eval(inner);
        let ct = self.table.resolve_ct(t.ct);
        match self.table.ct_node(ct).clone() {
            CtNode::Value(mt) => {
                let Some(field) = self.value_field(mt, t.shape, FlatInt::Known(0), span) else {
                    let fresh = self.table.ct_fresh_value();
                    return ExprTy { ct: fresh, shape: Shape::unknown() };
                };
                let fct = self.table.ct_value(field);
                ExprTy { ct: fct, shape: Shape::unknown() }
            }
            CtNode::Ptr(inner_ct) => ExprTy { ct: inner_ct, shape: Shape::unknown() },
            CtNode::Var => {
                let fresh = self.table.fresh_ct();
                let ptr = self.table.ct_ptr(fresh);
                self.table.unify_ct(ct, ptr).ok();
                ExprTy { ct: fresh, shape: Shape::unknown() }
            }
            other => {
                let rendered = self.table.render_ct(ct);
                let _ = other;
                self.report(
                    DiagnosticCode::TypeMismatch,
                    span,
                    format!("dereference of non-pointer type `{rendered}`"),
                );
                ExprTy { ct: self.table.fresh_ct(), shape: Shape::unknown() }
            }
        }
    }

    /// Casts: (Custom Exp), (Val Cast Exp) and the §5.1 heuristics.
    fn cast(&mut self, ty: &CTypeExpr, inner: &IrExpr, span: Span) -> ExprTy {
        let t = self.eval(inner);
        let src_ct = self.table.resolve_ct(t.ct);
        let src_is_value = matches!(self.table.ct_node(src_ct), CtNode::Value(_));
        match ty {
            CTypeExpr::Value => {
                match self.table.ct_node(src_ct).clone() {
                    // (value) e where e is already a value: identity
                    CtNode::Value(_) => t,
                    // (Custom Exp): C data enters OCaml as `ct custom`
                    CtNode::Ptr(_) | CtNode::Named(_) | CtNode::Var => {
                        let custom = self.table.mt_custom(src_ct);
                        let ct = self.table.ct_value(custom);
                        ExprTy { ct, shape: Shape::unknown() }
                    }
                    CtNode::Int => {
                        self.report(
                            DiagnosticCode::SuspiciousCast,
                            span,
                            "C integer cast directly to `value` without Val_int".to_string(),
                        );
                        let ct = self.table.ct_fresh_value();
                        ExprTy { ct, shape: Shape::unknown() }
                    }
                    _ => {
                        let ct = self.table.ct_fresh_value();
                        ExprTy { ct, shape: Shape::unknown() }
                    }
                }
            }
            _ if src_is_value => {
                let CtNode::Value(mt) = self.table.ct_node(src_ct).clone() else { unreachable!() };
                let target = eta(self.table, ty);
                match ty {
                    // heuristic: casts through void * are ignored (§5.1)
                    CTypeExpr::Ptr(inner_ty) if **inner_ty == CTypeExpr::Void => {
                        ExprTy { ct: target, shape: Shape::unknown() }
                    }
                    // (long) v idiom: tolerated without constraints
                    CTypeExpr::Int | CTypeExpr::Float => {
                        ExprTy { ct: target, shape: Shape::unknown() }
                    }
                    _ => {
                        // (Val Cast Exp): the value must embed this C type
                        let custom = self.table.mt_custom(target);
                        if let Err(e) = self.table.unify_mt(mt, custom) {
                            self.report(
                                DiagnosticCode::SuspiciousCast,
                                span,
                                format!("cast of OCaml value to `{ty}`: {e}"),
                            );
                        }
                        ExprTy { ct: target, shape: Shape::unknown() }
                    }
                }
            }
            _ => {
                let target = eta(self.table, ty);
                // numeric/pointer casts between C types: keep T for ints
                let shape = self.shape_for_ct(target, t.shape);
                ExprTy { ct: target, shape }
            }
        }
    }

    fn prim(&mut self, op: PrimOp, args: &[IrExpr], span: Span) -> ExprTy {
        let tys: Vec<ExprTy> = args.iter().map(|a| self.eval(a)).collect();
        let int_result =
            |table: &mut TypeTable| ExprTy { ct: table.ct_int(), shape: Shape::unknown() };
        match op {
            PrimOp::TagVal | PrimOp::IsLong | PrimOp::IsBlock | PrimOp::WosizeVal => {
                if let Some(t) = tys.first() {
                    let fresh = self.table.ct_fresh_value();
                    self.unify_ct_or_report(t.ct, fresh, span, "FFI primitive argument");
                }
                int_result(self.table)
            }
            PrimOp::StringVal => {
                if let Some(t) = tys.first() {
                    let s = self.table.mt_abstract("string", true);
                    let want = self.table.ct_value(s);
                    self.unify_ct_or_report(t.ct, want, span, "String_val argument");
                }
                let i = self.table.ct_int();
                let p = self.table.ct_ptr(i);
                ExprTy { ct: p, shape: Shape::unknown() }
            }
            PrimOp::DoubleVal => {
                if let Some(t) = tys.first() {
                    let f = self.table.mt_abstract("float", true);
                    let want = self.table.ct_value(f);
                    self.unify_ct_or_report(t.ct, want, span, "Double_val argument");
                }
                ExprTy { ct: self.table.ct_float(), shape: Shape::unknown() }
            }
            PrimOp::Atom => {
                // Atom(t): a zero-sized boxed block with tag t. The result
                // is boxed at offset 0; when the tag is a known constant
                // the sum row must have that constructor.
                let tag = tys.first().map(|t| t.shape.t).unwrap_or(FlatInt::Top);
                let mt = self.table.mt_fresh_rep();
                if let (FlatInt::Known(n), MtNode::Rep(_, sigma)) =
                    (tag, self.table.mt_node(mt).clone())
                {
                    if n >= 0 {
                        let _ = self.table.sigma_at(sigma, n as usize);
                    }
                }
                let ct = self.table.ct_value(mt);
                ExprTy { ct, shape: Shape::new(Boxedness::Boxed, FlatInt::Known(0), tag) }
            }
        }
    }
}
