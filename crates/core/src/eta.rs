//! The `η` mapping of §3.3.2: source C types to extended C types.
//!
//! ```text
//! η(void)    = void
//! η(int)     = int
//! η(value)   = α value      (α fresh)
//! η(ctype *) = η(ctype) *
//! ```

use ffisafe_cil::CTypeExpr;
use ffisafe_types::{CtId, TypeTable};

/// Translates a source C type to an arena type, allocating a fresh `α`
/// under every `value`.
pub fn eta(table: &mut TypeTable, ty: &CTypeExpr) -> CtId {
    match ty {
        CTypeExpr::Void => table.ct_void(),
        CTypeExpr::Int => table.ct_int(),
        CTypeExpr::Float => table.ct_float(),
        CTypeExpr::Value => table.ct_fresh_value(),
        CTypeExpr::Ptr(inner) => {
            let i = eta(table, inner);
            table.ct_ptr(i)
        }
        CTypeExpr::Named(n) => table.ct_named(n),
        // Function pointers and synthesized temporaries are unconstrained.
        CTypeExpr::FuncPtr | CTypeExpr::Auto => table.fresh_ct(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_types::CtNode;

    #[test]
    fn eta_value_allocates_fresh_alpha() {
        let mut tt = TypeTable::new();
        let a = eta(&mut tt, &CTypeExpr::Value);
        let b = eta(&mut tt, &CTypeExpr::Value);
        let (CtNode::Value(m1), CtNode::Value(m2)) = (tt.ct_node(a).clone(), tt.ct_node(b).clone())
        else {
            panic!()
        };
        assert_ne!(tt.find_mt(m1), tt.find_mt(m2));
    }

    #[test]
    fn eta_structural_forms() {
        let mut tt = TypeTable::new();
        let p = eta(&mut tt, &CTypeExpr::Int.ptr());
        assert_eq!(tt.render_ct(p), "int *");
        let n = eta(&mut tt, &CTypeExpr::Named("gzFile".into()));
        assert_eq!(tt.render_ct(n), "gzFile");
        let auto = eta(&mut tt, &CTypeExpr::Auto);
        assert!(matches!(tt.ct_node(auto), CtNode::Var));
    }
}
