//! Function registry: the initial environment `Γ_I` plus every C function
//! the analysis discovers.
//!
//! Three kinds of functions live here:
//!
//! * glue functions declared `external` in OCaml — their `Φ`-translated
//!   signatures are unified with their C definitions (checking arity and
//!   the trailing-`unit` practice of §5.2);
//! * OCaml runtime entry points (`caml_alloc`, `caml_callback`, …) with
//!   known types and GC effects;
//! * ordinary C functions (helpers, system libraries) — helpers get
//!   `η`-translated declared types, unknown library functions get
//!   unconstrained signatures and, absent effect edges, are `nogc`.
//!
//! The registry is keyed by interned [`Symbol`]s from the session's
//! [`Interner`], so the hot `resolve_call` path in the inference engine
//! hashes a `u32` instead of a string.

use crate::eta::eta;
use ffisafe_cil::CTypeExpr;
use ffisafe_support::{Interner, Span, Symbol};
use ffisafe_types::{CtId, GcId, TypeTable};
use std::collections::HashMap;

/// How the registry learned about a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncOrigin {
    /// Defined in analyzed C code.
    Defined,
    /// Declared (prototype) in analyzed C code.
    Declared,
    /// A known OCaml runtime function.
    Runtime,
    /// Synthesized at a call site to an unknown function.
    Unknown,
}

/// Everything the engine needs to type a call to one function.
#[derive(Clone, Debug)]
pub struct FuncInfo {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<CtId>,
    /// Return type.
    pub ret: CtId,
    /// GC effect.
    pub effect: GcId,
    /// Provenance.
    pub origin: FuncOrigin,
    /// Index into the phase-1 signatures when this is an FFI entry point.
    pub external_index: Option<usize>,
    /// Whether the function never returns (`caml_failwith` and friends):
    /// values live "after" such a call are unwound, so no GC-registration
    /// obligation arises.
    pub noreturn: bool,
    /// Where the function was declared/first seen.
    pub span: Span,
}

/// The function environment shared by all per-function analyses.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    funcs: HashMap<Symbol, FuncInfo>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Looks up a function by name. Non-mutating: a name never interned
    /// was never registered.
    pub fn get(&self, interner: &Interner, name: &str) -> Option<&FuncInfo> {
        self.funcs.get(&interner.get(name)?)
    }

    /// Looks up a function by its interned symbol.
    pub fn get_sym(&self, sym: Symbol) -> Option<&FuncInfo> {
        self.funcs.get(&sym)
    }

    /// Registers a function definition/prototype with `η`-translated
    /// declared types. Re-registration keeps the first entry (definitions
    /// are registered before prototypes by the driver).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        table: &mut TypeTable,
        interner: &mut Interner,
        name: &str,
        ret: &CTypeExpr,
        params: &[CTypeExpr],
        origin: FuncOrigin,
        span: Span,
    ) -> &FuncInfo {
        let sym = interner.intern(name);
        self.funcs.entry(sym).or_insert_with(|| {
            let params: Vec<CtId> = params.iter().map(|p| eta(table, p)).collect();
            let ret = eta(table, ret);
            let effect = table.fresh_gc();
            FuncInfo {
                name: name.to_string(),
                params,
                ret,
                effect,
                origin,
                external_index: None,
                noreturn: false,
                span,
            }
        })
    }

    /// Ties a registered function to its phase-1 `external` signature.
    pub fn set_external_index(&mut self, interner: &Interner, name: &str, idx: usize) {
        if let Some(f) = interner.get(name).and_then(|s| self.funcs.get_mut(&s)) {
            f.external_index = Some(idx);
        }
    }

    /// Resolves a call target, synthesizing runtime or unknown signatures
    /// on demand. `arity` is the number of arguments at the call site.
    ///
    /// Runtime functions (`caml_alloc`, `caml_callback`, …) are
    /// *polymorphic*: each call site gets a fresh instantiation. Defined
    /// and unknown C functions are monomorphic (§5.1) and memoized.
    pub fn resolve_call(
        &mut self,
        table: &mut TypeTable,
        interner: &mut Interner,
        name: &str,
        arity: usize,
        span: Span,
    ) -> FuncInfo {
        let sym = interner.intern(name);
        if let Some(info) = self.funcs.get(&sym) {
            return info.clone();
        }
        if let Some(info) = runtime_signature(table, name, arity, span) {
            return info; // fresh per call site, never cached
        }
        // unknown library function: unconstrained, nogc unless edges prove
        // otherwise; monomorphic, so memoized
        let params: Vec<CtId> = (0..arity).map(|_| table.fresh_ct()).collect();
        let ret = table.fresh_ct();
        let effect = table.fresh_gc();
        let info = FuncInfo {
            name: name.to_string(),
            params,
            ret,
            effect,
            origin: FuncOrigin::Unknown,
            external_index: None,
            noreturn: false,
            span,
        };
        self.funcs.insert(sym, info.clone());
        info
    }

    /// All registered functions.
    pub fn iter(&self) -> impl Iterator<Item = &FuncInfo> {
        self.funcs.values()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

/// Builds the signature of a known OCaml runtime function, or `None`.
///
/// Effects follow §2/§5: allocation and callbacks may trigger the
/// collector; root registration and field writes do not.
fn runtime_signature(
    table: &mut TypeTable,
    name: &str,
    arity: usize,
    span: Span,
) -> Option<FuncInfo> {
    let gc = |table: &mut TypeTable| table.gc_gc();
    let nogc = |table: &mut TypeTable| table.gc_nogc();
    let value = |table: &mut TypeTable| table.ct_fresh_value();
    let int = |table: &mut TypeTable| table.ct_int();
    let charp = |table: &mut TypeTable| {
        let i = table.ct_int();
        table.ct_ptr(i)
    };
    let (params, ret, effect): (Vec<CtId>, CtId, GcId) = match name {
        "caml_alloc" | "caml_alloc_small" | "caml_alloc_shr" => {
            (vec![int(table), int(table)], value(table), gc(table))
        }
        "caml_alloc_tuple" | "caml_alloc_string" => (vec![int(table)], value(table), gc(table)),
        "caml_copy_string" => {
            let p = charp(table);
            let s = table.mt_abstract("string", true);
            let r = table.ct_value(s);
            (vec![p], r, gc(table))
        }
        "caml_copy_double" => {
            let f = table.ct_float();
            let m = table.mt_abstract("float", true);
            let r = table.ct_value(m);
            (vec![f], r, gc(table))
        }
        "caml_copy_int32" => {
            let i = int(table);
            let m = table.mt_abstract("int32", true);
            let r = table.ct_value(m);
            (vec![i], r, gc(table))
        }
        "caml_copy_int64" => {
            let i = int(table);
            let m = table.mt_abstract("int64", true);
            let r = table.ct_value(m);
            (vec![i], r, gc(table))
        }
        "caml_copy_nativeint" => {
            let i = int(table);
            let m = table.mt_abstract("nativeint", true);
            let r = table.ct_value(m);
            (vec![i], r, gc(table))
        }
        "caml_callback" | "caml_callback_exn" => {
            (vec![value(table), value(table)], value(table), gc(table))
        }
        "caml_callback2" | "caml_callback2_exn" => {
            (vec![value(table), value(table), value(table)], value(table), gc(table))
        }
        "caml_callback3" | "caml_callback3_exn" => {
            (vec![value(table), value(table), value(table), value(table)], value(table), gc(table))
        }
        "caml_failwith" | "caml_invalid_argument" => {
            (vec![charp(table)], table.ct_void(), gc(table))
        }
        "caml_raise_out_of_memory" | "caml_raise_stack_overflow" | "caml_raise_not_found" => {
            (vec![], table.ct_void(), gc(table))
        }
        "caml_raise" | "caml_raise_constant" => (vec![value(table)], table.ct_void(), gc(table)),
        "caml_raise_with_arg" => (vec![value(table), value(table)], table.ct_void(), gc(table)),
        "caml_named_value" => {
            let p = charp(table);
            let v = value(table);
            let pv = table.ct_ptr(v);
            (vec![p], pv, nogc(table))
        }
        "caml_register_global_root" | "caml_remove_global_root" => {
            let v = value(table);
            let pv = table.ct_ptr(v);
            (vec![pv], table.ct_void(), nogc(table))
        }
        "caml_modify" => {
            let v1 = value(table);
            let pv = table.ct_ptr(v1);
            (vec![pv, value(table)], table.ct_void(), nogc(table))
        }
        "caml_alloc_custom" => {
            let ops = table.fresh_ct();
            (vec![ops, int(table), int(table), int(table)], value(table), gc(table))
        }
        "caml_enter_blocking_section" | "caml_leave_blocking_section" => {
            // other threads may collect while the lock is released
            (vec![], table.ct_void(), gc(table))
        }
        "caml_gc_full_major" | "caml_gc_minor" | "caml_gc_compaction" => {
            (vec![], table.ct_void(), gc(table))
        }
        _ if arity == usize::MAX => return None, // unreachable guard
        _ => return None,
    };
    let noreturn = matches!(
        name,
        "caml_failwith"
            | "caml_invalid_argument"
            | "caml_raise"
            | "caml_raise_constant"
            | "caml_raise_with_arg"
            | "caml_raise_out_of_memory"
            | "caml_raise_stack_overflow"
            | "caml_raise_not_found"
    );
    Some(FuncInfo {
        name: name.to_string(),
        params,
        ret,
        effect,
        origin: FuncOrigin::Runtime,
        external_index: None,
        noreturn,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_types::GcNode;

    #[test]
    fn runtime_alloc_is_gc() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f = reg.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy()).clone();
        assert_eq!(f.origin, FuncOrigin::Runtime);
        assert_eq!(tt.gc_node(f.effect), GcNode::Gc);
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn unknown_library_function_is_nogc_variable() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f = reg.resolve_call(&mut tt, &mut intern, "gzopen", 2, Span::dummy()).clone();
        assert_eq!(f.origin, FuncOrigin::Unknown);
        assert_eq!(tt.gc_node(f.effect), GcNode::Var);
        // memoized
        let again = reg.resolve_call(&mut tt, &mut intern, "gzopen", 2, Span::dummy()).clone();
        assert_eq!(f.ret, again.ret);
    }

    #[test]
    fn defined_functions_keep_first_registration() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let r1 = reg
            .register(
                &mut tt,
                &mut intern,
                "helper",
                &CTypeExpr::Int,
                &[CTypeExpr::Value],
                FuncOrigin::Defined,
                Span::dummy(),
            )
            .clone();
        let r2 = reg
            .register(
                &mut tt,
                &mut intern,
                "helper",
                &CTypeExpr::Void,
                &[],
                FuncOrigin::Declared,
                Span::dummy(),
            )
            .clone();
        assert_eq!(r1.ret, r2.ret);
        assert_eq!(r2.origin, FuncOrigin::Defined);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn copy_string_returns_string_value() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f =
            reg.resolve_call(&mut tt, &mut intern, "caml_copy_string", 1, Span::dummy()).clone();
        assert_eq!(tt.render_ct(f.ret), "string value");
    }

    #[test]
    fn lookup_by_name_and_symbol_agree() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        reg.register(
            &mut tt,
            &mut intern,
            "helper",
            &CTypeExpr::Int,
            &[],
            FuncOrigin::Defined,
            Span::dummy(),
        );
        let sym = intern.get("helper").unwrap();
        assert_eq!(reg.get(&intern, "helper").unwrap().name, "helper");
        assert_eq!(reg.get_sym(sym).unwrap().name, "helper");
        assert!(reg.get(&intern, "missing").is_none());
    }
}
