//! Function registry: the initial environment `Γ_I` plus every C function
//! the analysis discovers.
//!
//! Three kinds of functions live here:
//!
//! * glue functions declared `external` in OCaml — their `Φ`-translated
//!   signatures are unified with their C definitions (checking arity and
//!   the trailing-`unit` practice of §5.2);
//! * OCaml runtime entry points (`caml_alloc`, `caml_callback`, …) with
//!   known types and GC effects;
//! * ordinary C functions (helpers, system libraries) — helpers get
//!   `η`-translated declared types, unknown library functions get
//!   unconstrained signatures and, absent effect edges, are `nogc`.
//!
//! The registry is keyed by interned [`Symbol`]s from the session's
//! [`Interner`], so the hot `resolve_call` path in the inference engine
//! hashes a `u32` instead of a string.

use crate::eta::eta;
use ffisafe_cil::CTypeExpr;
use ffisafe_support::{Interner, Span, Symbol};
use ffisafe_types::{CtId, GcId, TypeTable};
use std::collections::HashMap;
use std::sync::Arc;

/// How the registry learned about a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncOrigin {
    /// Defined in analyzed C code.
    Defined,
    /// Declared (prototype) in analyzed C code.
    Declared,
    /// A known OCaml runtime function.
    Runtime,
    /// Synthesized at a call site to an unknown function.
    Unknown,
}

/// Everything the engine needs to type a call to one function.
#[derive(Clone, Debug)]
pub struct FuncInfo {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<CtId>,
    /// Return type.
    pub ret: CtId,
    /// GC effect.
    pub effect: GcId,
    /// Provenance.
    pub origin: FuncOrigin,
    /// Index into the phase-1 signatures when this is an FFI entry point.
    pub external_index: Option<usize>,
    /// Whether the function never returns (`caml_failwith` and friends):
    /// values live "after" such a call are unwound, so no GC-registration
    /// obligation arises.
    pub noreturn: bool,
    /// Where the function was declared/first seen.
    pub span: Span,
}

/// The immutable classification of one OCaml runtime entry point: which
/// slot shapes to instantiate, its effect constant and whether it returns.
///
/// Runtime functions are *polymorphic* — every call site must get fresh
/// inference variables — so the [`FuncInfo`] itself cannot be cached. What
/// never changes per name is this shape, which used to be re-derived from
/// scratch (a long string-match chain) at every call site. The registry
/// memoizes it per interned [`Symbol`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeShape {
    params: Vec<SlotShape>,
    ret: SlotShape,
    /// `true` for the `gc` effect constant, `false` for `nogc`.
    may_gc: bool,
    noreturn: bool,
}

/// Type shapes a runtime signature slot can take; instantiated with fresh
/// table nodes per call site by [`RuntimeShape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotShape {
    /// Any C integer.
    Int,
    /// Any C float.
    Float,
    /// `char *`.
    CharPtr,
    /// A fresh `value`.
    Value,
    /// Pointer to a fresh `value`.
    PtrValue,
    /// A fully unconstrained fresh `ct` (e.g. `custom_operations *`).
    Fresh,
    /// `void`.
    Void,
    /// `value` of a boxed abstract type (`string`, `float`, `int64`, …).
    Abstract(&'static str),
}

/// The function environment shared by all per-function analyses.
///
/// Post-link the environment is frozen behind an `Arc` and every worker
/// gets an O(1) [`Registry::overlay`] view: lookups fall through to the
/// shared base, memoizations and unknown-function synthesis land in the
/// worker's local maps. An overlay behaves exactly like a deep clone of
/// its base.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Shared post-link environment this registry layers over, if any.
    base: Option<Arc<Registry>>,
    funcs: HashMap<Symbol, FuncInfo>,
    /// Memoized per-name runtime classification (`None` = not a runtime
    /// function). Keyed by interned symbol; the expensive fresh
    /// *instantiation* still happens per call site, preserving runtime
    /// polymorphism.
    runtime_shapes: HashMap<Symbol, Option<RuntimeShape>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates a copy-on-write view over a shared base registry. O(1).
    pub fn overlay(base: Arc<Registry>) -> Self {
        debug_assert!(base.base.is_none(), "overlay bases must be flat registries");
        Registry { base: Some(base), funcs: HashMap::new(), runtime_shapes: HashMap::new() }
    }

    /// Looks up a function by name. Non-mutating: a name never interned
    /// was never registered.
    pub fn get(&self, interner: &Interner, name: &str) -> Option<&FuncInfo> {
        self.get_sym(interner.get(name)?)
    }

    /// Looks up a function by its interned symbol.
    pub fn get_sym(&self, sym: Symbol) -> Option<&FuncInfo> {
        self.funcs.get(&sym).or_else(|| self.base.as_deref().and_then(|b| b.funcs.get(&sym)))
    }

    fn contains_sym(&self, sym: Symbol) -> bool {
        self.funcs.contains_key(&sym)
            || self.base.as_deref().is_some_and(|b| b.funcs.contains_key(&sym))
    }

    /// Registers a function definition/prototype with `η`-translated
    /// declared types. Re-registration keeps the first entry (definitions
    /// are registered before prototypes by the driver).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        table: &mut TypeTable,
        interner: &mut Interner,
        name: &str,
        ret: &CTypeExpr,
        params: &[CTypeExpr],
        origin: FuncOrigin,
        span: Span,
    ) -> &FuncInfo {
        let sym = interner.intern(name);
        if !self.contains_sym(sym) {
            let params: Vec<CtId> = params.iter().map(|p| eta(table, p)).collect();
            let ret = eta(table, ret);
            let effect = table.fresh_gc();
            self.funcs.insert(
                sym,
                FuncInfo {
                    name: name.to_string(),
                    params,
                    ret,
                    effect,
                    origin,
                    external_index: None,
                    noreturn: false,
                    span,
                },
            );
        }
        self.get_sym(sym).expect("just ensured present")
    }

    /// Ties a registered function to its phase-1 `external` signature.
    pub fn set_external_index(&mut self, interner: &Interner, name: &str, idx: usize) {
        let Some(sym) = interner.get(name) else { return };
        // copy-on-write: pull a base entry into the local layer to annotate
        if !self.funcs.contains_key(&sym) {
            if let Some(info) = self.base.as_deref().and_then(|b| b.funcs.get(&sym)) {
                self.funcs.insert(sym, info.clone());
            }
        }
        if let Some(f) = self.funcs.get_mut(&sym) {
            f.external_index = Some(idx);
        }
    }

    /// Resolves a call target, synthesizing runtime or unknown signatures
    /// on demand. `arity` is the number of arguments at the call site.
    ///
    /// Runtime functions (`caml_alloc`, `caml_callback`, …) are
    /// *polymorphic*: each call site gets a fresh instantiation. Defined
    /// and unknown C functions are monomorphic (§5.1) and memoized.
    pub fn resolve_call(
        &mut self,
        table: &mut TypeTable,
        interner: &mut Interner,
        name: &str,
        arity: usize,
        span: Span,
    ) -> FuncInfo {
        let _ = arity; // runtime classification is name-driven
        let sym = interner.intern(name);
        if let Some(info) = self.get_sym(sym) {
            return info.clone();
        }
        // The shape (the immutable part) is memoized; the instantiation
        // stays fresh per call site, keeping runtime functions polymorphic.
        // A memo already present in the shared base is reused as-is; fresh
        // classifications land in the local layer.
        let base_shape = self.base.as_deref().and_then(|b| b.runtime_shapes.get(&sym)).cloned();
        let shape = match base_shape {
            Some(memoized) => memoized,
            None => self.runtime_shapes.entry(sym).or_insert_with(|| runtime_shape(name)).clone(),
        };
        if let Some(shape) = shape {
            return shape.instantiate(table, name, span);
        }
        // unknown library function: unconstrained, nogc unless edges prove
        // otherwise; monomorphic, so memoized
        let params: Vec<CtId> = (0..arity).map(|_| table.fresh_ct()).collect();
        let ret = table.fresh_ct();
        let effect = table.fresh_gc();
        let info = FuncInfo {
            name: name.to_string(),
            params,
            ret,
            effect,
            origin: FuncOrigin::Unknown,
            external_index: None,
            noreturn: false,
            span,
        };
        self.funcs.insert(sym, info.clone());
        info
    }

    /// All registered functions: base entries not shadowed locally, then
    /// local entries (iteration order within each layer is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &FuncInfo> {
        self.base
            .as_deref()
            .map(|b| &b.funcs)
            .into_iter()
            .flatten()
            .filter(|(sym, _)| !self.funcs.contains_key(sym))
            .map(|(_, f)| f)
            .chain(self.funcs.values())
    }

    /// All registered functions with their symbols, sorted by symbol —
    /// a deterministic iteration for fingerprinting.
    pub fn iter_stable(&self) -> Vec<(Symbol, &FuncInfo)> {
        let mut out: Vec<(Symbol, &FuncInfo)> = self
            .base
            .as_deref()
            .map(|b| &b.funcs)
            .into_iter()
            .flatten()
            .filter(|(sym, _)| !self.funcs.contains_key(sym))
            .chain(self.funcs.iter())
            .map(|(sym, f)| (*sym, f))
            .collect();
        out.sort_by_key(|(sym, _)| *sym);
        out
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        let shadowed = match self.base.as_deref() {
            Some(b) => b.funcs.keys().filter(|s| self.funcs.contains_key(s)).count(),
            None => 0,
        };
        self.base.as_deref().map_or(0, |b| b.funcs.len()) + self.funcs.len() - shadowed
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RuntimeShape {
    /// Instantiates the shape with fresh table nodes for one call site.
    fn instantiate(&self, table: &mut TypeTable, name: &str, span: Span) -> FuncInfo {
        let slot = |table: &mut TypeTable, s: SlotShape| -> CtId {
            match s {
                SlotShape::Int => table.ct_int(),
                SlotShape::Float => table.ct_float(),
                SlotShape::CharPtr => {
                    let i = table.ct_int();
                    table.ct_ptr(i)
                }
                SlotShape::Value => table.ct_fresh_value(),
                SlotShape::PtrValue => {
                    let v = table.ct_fresh_value();
                    table.ct_ptr(v)
                }
                SlotShape::Fresh => table.fresh_ct(),
                SlotShape::Void => table.ct_void(),
                SlotShape::Abstract(n) => {
                    let m = table.mt_abstract(n, true);
                    table.ct_value(m)
                }
            }
        };
        let params: Vec<CtId> = self.params.iter().map(|&s| slot(table, s)).collect();
        let ret = slot(table, self.ret);
        let effect: GcId = if self.may_gc { table.gc_gc() } else { table.gc_nogc() };
        FuncInfo {
            name: name.to_string(),
            params,
            ret,
            effect,
            origin: FuncOrigin::Runtime,
            external_index: None,
            noreturn: self.noreturn,
            span,
        }
    }
}

/// Every OCaml runtime entry point [`runtime_shape`] classifies.
///
/// The [`crate::api::AnalysisService`] pre-interns these into the interner
/// seed it clones into each request's session, so the names glue code
/// calls hottest resolve to already-interned symbols on every run.
pub fn runtime_names() -> &'static [&'static str] {
    &[
        "caml_alloc",
        "caml_alloc_small",
        "caml_alloc_shr",
        "caml_alloc_tuple",
        "caml_alloc_string",
        "caml_copy_string",
        "caml_copy_double",
        "caml_copy_int32",
        "caml_copy_int64",
        "caml_copy_nativeint",
        "caml_callback",
        "caml_callback_exn",
        "caml_callback2",
        "caml_callback2_exn",
        "caml_callback3",
        "caml_callback3_exn",
        "caml_failwith",
        "caml_invalid_argument",
        "caml_raise_out_of_memory",
        "caml_raise_stack_overflow",
        "caml_raise_not_found",
        "caml_raise",
        "caml_raise_constant",
        "caml_raise_with_arg",
        "caml_named_value",
        "caml_register_global_root",
        "caml_remove_global_root",
        "caml_modify",
        "caml_alloc_custom",
        "caml_enter_blocking_section",
        "caml_leave_blocking_section",
        "caml_gc_full_major",
        "caml_gc_minor",
        "caml_gc_compaction",
    ]
}

/// Classifies a known OCaml runtime function by name, or `None`.
///
/// Effects follow §2/§5: allocation and callbacks may trigger the
/// collector; root registration and field writes do not. This is the pure,
/// table-free part of the old `runtime_signature`; the registry memoizes
/// its result so the string-match chain runs once per distinct name
/// instead of once per call site.
fn runtime_shape(name: &str) -> Option<RuntimeShape> {
    use SlotShape::*;
    let shape = |params: Vec<SlotShape>, ret: SlotShape, may_gc: bool| RuntimeShape {
        params,
        ret,
        may_gc,
        noreturn: false,
    };
    let mut out = match name {
        "caml_alloc" | "caml_alloc_small" | "caml_alloc_shr" => shape(vec![Int, Int], Value, true),
        "caml_alloc_tuple" | "caml_alloc_string" => shape(vec![Int], Value, true),
        "caml_copy_string" => shape(vec![CharPtr], Abstract("string"), true),
        "caml_copy_double" => shape(vec![Float], Abstract("float"), true),
        "caml_copy_int32" => shape(vec![Int], Abstract("int32"), true),
        "caml_copy_int64" => shape(vec![Int], Abstract("int64"), true),
        "caml_copy_nativeint" => shape(vec![Int], Abstract("nativeint"), true),
        "caml_callback" | "caml_callback_exn" => shape(vec![Value, Value], Value, true),
        "caml_callback2" | "caml_callback2_exn" => shape(vec![Value, Value, Value], Value, true),
        "caml_callback3" | "caml_callback3_exn" => {
            shape(vec![Value, Value, Value, Value], Value, true)
        }
        "caml_failwith" | "caml_invalid_argument" => shape(vec![CharPtr], Void, true),
        "caml_raise_out_of_memory" | "caml_raise_stack_overflow" | "caml_raise_not_found" => {
            shape(vec![], Void, true)
        }
        "caml_raise" | "caml_raise_constant" => shape(vec![Value], Void, true),
        "caml_raise_with_arg" => shape(vec![Value, Value], Void, true),
        "caml_named_value" => shape(vec![CharPtr], PtrValue, false),
        "caml_register_global_root" | "caml_remove_global_root" => {
            shape(vec![PtrValue], Void, false)
        }
        "caml_modify" => shape(vec![PtrValue, Value], Void, false),
        "caml_alloc_custom" => shape(vec![Fresh, Int, Int, Int], Value, true),
        // other threads may collect while the lock is released
        "caml_enter_blocking_section" | "caml_leave_blocking_section" => shape(vec![], Void, true),
        "caml_gc_full_major" | "caml_gc_minor" | "caml_gc_compaction" => shape(vec![], Void, true),
        _ => return None,
    };
    out.noreturn = matches!(
        name,
        "caml_failwith"
            | "caml_invalid_argument"
            | "caml_raise"
            | "caml_raise_constant"
            | "caml_raise_with_arg"
            | "caml_raise_out_of_memory"
            | "caml_raise_stack_overflow"
            | "caml_raise_not_found"
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffisafe_types::GcNode;

    #[test]
    fn runtime_alloc_is_gc() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f = reg.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy()).clone();
        assert_eq!(f.origin, FuncOrigin::Runtime);
        assert_eq!(tt.gc_node(f.effect), GcNode::Gc);
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn unknown_library_function_is_nogc_variable() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f = reg.resolve_call(&mut tt, &mut intern, "gzopen", 2, Span::dummy()).clone();
        assert_eq!(f.origin, FuncOrigin::Unknown);
        assert_eq!(tt.gc_node(f.effect), GcNode::Var);
        // memoized
        let again = reg.resolve_call(&mut tt, &mut intern, "gzopen", 2, Span::dummy()).clone();
        assert_eq!(f.ret, again.ret);
    }

    #[test]
    fn defined_functions_keep_first_registration() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let r1 = reg
            .register(
                &mut tt,
                &mut intern,
                "helper",
                &CTypeExpr::Int,
                &[CTypeExpr::Value],
                FuncOrigin::Defined,
                Span::dummy(),
            )
            .clone();
        let r2 = reg
            .register(
                &mut tt,
                &mut intern,
                "helper",
                &CTypeExpr::Void,
                &[],
                FuncOrigin::Declared,
                Span::dummy(),
            )
            .clone();
        assert_eq!(r1.ret, r2.ret);
        assert_eq!(r2.origin, FuncOrigin::Defined);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn copy_string_returns_string_value() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let f =
            reg.resolve_call(&mut tt, &mut intern, "caml_copy_string", 1, Span::dummy()).clone();
        assert_eq!(tt.render_ct(f.ret), "string value");
    }

    #[test]
    fn runtime_shape_memoized_but_instantiation_fresh() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let a = reg.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy());
        let b = reg.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy());
        // one classification, memoized by symbol…
        assert_eq!(reg.runtime_shapes.len(), 1);
        let sym = intern.get("caml_alloc").unwrap();
        assert!(reg.runtime_shapes.get(&sym).unwrap().is_some());
        // …but polymorphic per call site: distinct fresh nodes every time
        assert_ne!(a.ret, b.ret, "each call site must get a fresh instantiation");
        assert_ne!(a.params[0], b.params[0]);
        assert_eq!(tt.gc_node(a.effect), GcNode::Gc);
        assert_eq!(tt.gc_node(b.effect), GcNode::Gc);
        // non-runtime names are memoized as `None` and stay Unknown
        let g = reg.resolve_call(&mut tt, &mut intern, "gzopen", 1, Span::dummy());
        assert_eq!(g.origin, FuncOrigin::Unknown);
        let gz = intern.get("gzopen").unwrap();
        assert!(reg.runtime_shapes.get(&gz).unwrap().is_none());
    }

    #[test]
    fn runtime_shapes_match_legacy_signatures() {
        // regression for the shape refactor: spot-check every slot kind
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        let case = |reg: &mut Registry, tt: &mut TypeTable, intern: &mut Interner, name: &str| {
            reg.resolve_call(tt, intern, name, 0, Span::dummy())
        };
        let f = case(&mut reg, &mut tt, &mut intern, "caml_copy_double");
        assert_eq!(tt.render_ct(f.params[0]), "double");
        assert_eq!(tt.render_ct(f.ret), "float value");
        assert_eq!(tt.gc_node(f.effect), GcNode::Gc);
        assert!(!f.noreturn);

        let f = case(&mut reg, &mut tt, &mut intern, "caml_failwith");
        assert_eq!(tt.render_ct(f.params[0]), "int *");
        assert_eq!(tt.render_ct(f.ret), "void");
        assert!(f.noreturn);

        let f = case(&mut reg, &mut tt, &mut intern, "caml_named_value");
        assert_eq!(tt.gc_node(f.effect), GcNode::NoGc);
        assert!(!f.noreturn);

        let f = case(&mut reg, &mut tt, &mut intern, "caml_modify");
        assert_eq!(tt.gc_node(f.effect), GcNode::NoGc);
        assert_eq!(f.params.len(), 2);

        let f = case(&mut reg, &mut tt, &mut intern, "caml_enter_blocking_section");
        assert_eq!(tt.gc_node(f.effect), GcNode::Gc);
        assert!(f.params.is_empty());

        let f = case(&mut reg, &mut tt, &mut intern, "caml_raise_not_found");
        assert!(f.noreturn);
        assert_eq!(f.origin, FuncOrigin::Runtime);
    }

    #[test]
    fn lookup_by_name_and_symbol_agree() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut reg = Registry::new();
        reg.register(
            &mut tt,
            &mut intern,
            "helper",
            &CTypeExpr::Int,
            &[],
            FuncOrigin::Defined,
            Span::dummy(),
        );
        let sym = intern.get("helper").unwrap();
        assert_eq!(reg.get(&intern, "helper").unwrap().name, "helper");
        assert_eq!(reg.get_sym(sym).unwrap().name, "helper");
        assert!(reg.get(&intern, "missing").is_none());
    }

    #[test]
    fn overlay_reads_base_and_writes_locally() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut base = Registry::new();
        base.register(
            &mut tt,
            &mut intern,
            "helper",
            &CTypeExpr::Int,
            &[CTypeExpr::Value],
            FuncOrigin::Defined,
            Span::dummy(),
        );
        base.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy());
        let base = Arc::new(base);

        let mut view = Registry::overlay(base.clone());
        assert_eq!(view.len(), base.len());
        // base entries resolve through the overlay without copying
        let helper = view.resolve_call(&mut tt, &mut intern, "helper", 1, Span::dummy());
        assert_eq!(helper.origin, FuncOrigin::Defined);
        assert!(view.funcs.is_empty(), "base hit must not populate the local layer");
        // the base runtime-shape memo is reused, not re-derived
        let alloc = view.resolve_call(&mut tt, &mut intern, "caml_alloc", 2, Span::dummy());
        assert_eq!(alloc.origin, FuncOrigin::Runtime);
        assert!(view.runtime_shapes.is_empty());
        // unknown synthesis lands locally; the shared base is untouched
        let gz = view.resolve_call(&mut tt, &mut intern, "gzopen", 1, Span::dummy());
        assert_eq!(gz.origin, FuncOrigin::Unknown);
        assert_eq!(view.len(), base.len() + 1);
        assert!(base.get(&intern, "gzopen").is_none());
        assert_eq!(view.iter().count(), view.len());
        // a sibling view never sees another view's synthesis
        let sibling = Registry::overlay(base);
        assert!(sibling.get(&intern, "gzopen").is_none());
    }

    #[test]
    fn iter_stable_is_sorted_and_complete() {
        let mut tt = TypeTable::new();
        let mut intern = Interner::new();
        let mut base = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            base.register(
                &mut tt,
                &mut intern,
                name,
                &CTypeExpr::Int,
                &[],
                FuncOrigin::Defined,
                Span::dummy(),
            );
        }
        let base = Arc::new(base);
        let mut view = Registry::overlay(base);
        view.resolve_call(&mut tt, &mut intern, "extra", 0, Span::dummy());
        let stable = view.iter_stable();
        assert_eq!(stable.len(), 4);
        let syms: Vec<u32> = stable.iter().map(|(s, _)| s.as_raw()).collect();
        let mut sorted = syms.clone();
        sorted.sort_unstable();
        assert_eq!(syms, sorted, "iter_stable must be symbol-ordered");
    }

    #[test]
    fn runtime_names_list_matches_classifier() {
        // Every advertised name classifies; the list has no duplicates.
        let names = runtime_names();
        for name in names {
            assert!(runtime_shape(name).is_some(), "{name} must classify as a runtime function");
        }
        let mut sorted: Vec<_> = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate entries in runtime_names()");
    }
}
