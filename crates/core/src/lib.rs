//! Multi-lingual type inference for checking type safety of OCaml→C
//! foreign function calls — a reproduction of Furr & Foster, *Checking
//! Type Safety of Foreign Function Calls* (PLDI 2005).
//!
//! The analysis runs in two phases (§3):
//!
//! 1. **OCaml side.** `external` declarations are extracted and their
//!    types translated through `Φ`/`ρ` (Figure 4) into *representational
//!    types* that describe how OCaml data is physically laid out: `(Ψ, Σ)`
//!    bounds the unboxed constructors and lists one product per boxed
//!    constructor.
//! 2. **C side.** Glue code is lowered to a CIL-like IR and inferred
//!    against the rules of Figures 6/7: unification over the multi-lingual
//!    type language, a flow-sensitive dataflow analysis of boxedness,
//!    offsets and tags (`ct [B{I}]{T}`), and GC effects ensuring every
//!    live heap pointer is registered before a collection can happen.
//!
//! The entry point is the service API ([`api`]): an immutable
//! content-addressed [`Corpus`], submitted as an [`AnalysisRequest`] to a
//! long-lived [`AnalysisService`]:
//!
//! ```
//! use ffisafe_core::{AnalysisRequest, AnalysisService, Corpus};
//!
//! let corpus = Corpus::builder()
//!     .ml_source("lib.ml", r#"
//!         type t = A of int | B | C of int * int | D
//!         external examine : t -> int = "ml_examine"
//!     "#)
//!     .c_source("glue.c", r#"
//!         value ml_examine(value x) {
//!             if (Is_long(x)) {
//!                 switch (Int_val(x)) {
//!                 case 0: return Val_int(10); /* B */
//!                 case 1: return Val_int(11); /* D */
//!                 }
//!             } else {
//!                 switch (Tag_val(x)) {
//!                 case 0: return Field(x, 0);            /* A of int */
//!                 case 1: return Field(x, 1);            /* C of int * int */
//!                 }
//!             }
//!             return Val_int(0);
//!         }
//!     "#)
//!     .build();
//! let service = AnalysisService::new();
//! let report = service.analyze(&AnalysisRequest::new(corpus)).unwrap();
//! assert_eq!(report.error_count(), 0, "{}", report.render());
//! ```
//!
//! Misuse is caught:
//!
//! ```
//! use ffisafe_core::{AnalysisRequest, AnalysisService, Corpus};
//! use ffisafe_support::DiagnosticCode;
//!
//! let corpus = Corpus::builder()
//!     .ml_source("lib.ml", r#"external f : int -> int = "ml_f""#)
//!     // Bug: the C code applies Val_int to something that is already a value.
//!     .c_source("glue.c", r#"
//!         value ml_f(value n) { return Val_int(n); }
//!     "#)
//!     .build();
//! let report = AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap();
//! assert!(report.diagnostics.with_code(DiagnosticCode::TypeMismatch).count() > 0);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod driver;
pub mod engine;
pub mod eta;
pub mod pipeline;
pub mod registry;

pub use api::{
    available_cores, fair_share_jobs, source_files_under, AnalysisRequest, AnalysisService,
    ApiError, CacheMode, Corpus, CorpusBuilder, CorpusFile, ServiceConfig, SourceKind,
};
#[allow(deprecated)]
pub use driver::Analyzer;
pub use driver::{
    AnalysisReport, AnalysisStats, ReportSummary, RuntimeCheckSuggestion, REPORT_SCHEMA_VERSION,
};
pub use engine::{AnalysisOptions, GcObligation};
pub use ffisafe_support::{Phase, PhaseTimings, Session};
pub use pipeline::{Frontend, ParsedUnit, FRONTENDS};
pub use registry::{FuncInfo, FuncOrigin, Registry};
