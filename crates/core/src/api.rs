//! The service-grade batch API: [`Corpus`], [`AnalysisRequest`],
//! [`AnalysisService`].
//!
//! The paper's tool is a one-shot CLI; this module is the opposite shape —
//! the boundary a long-lived deployment programs against:
//!
//! * a [`Corpus`] is an **immutable, content-addressed** bundle of named
//!   `.ml`/`.rs`/`.c` sources, fingerprinted once at build time
//!   ([`ffisafe_support::Fingerprint`]) so caches and shard reducers can
//!   key work by content instead of by path or mtime;
//! * an [`AnalysisRequest`] pairs a corpus with [`AnalysisOptions`] and a
//!   [`CacheMode`], and every fallible edge reports a typed [`ApiError`]
//!   instead of panicking or printing;
//! * an [`AnalysisService`] is a **long-lived handle** owning the interner
//!   seed, the batch worker-pool width and one open `ffisafe-cache` store.
//!   [`AnalysisService::analyze`] runs one request;
//!   [`AnalysisService::analyze_batch`] runs many concurrently over the
//!   pool and returns results in submission order at any width.
//!
//! Reports come back as [`AnalysisReport`] — same structured diagnostics,
//! stats and renderings as always, plus the versioned
//! [`AnalysisReport::to_json`] form batch reducers and CI consume.
//!
//! # Examples
//!
//! ```
//! use ffisafe_core::api::{AnalysisRequest, AnalysisService, Corpus};
//!
//! let corpus = Corpus::builder()
//!     .ml_source("lib.ml", r#"external double : int -> int = "ml_double""#)
//!     .c_source("glue.c", r#"value ml_double(value n) { return Val_int(2 * Int_val(n)); }"#)
//!     .build();
//!
//! let service = AnalysisService::new();
//! let report = service.analyze(&AnalysisRequest::new(corpus)).unwrap();
//! assert_eq!(report.error_count(), 0, "{}", report.render());
//! ```

use crate::driver::{AnalysisReport, AnalysisStats};
use crate::engine::AnalysisOptions;
use crate::pipeline::cache::{self, CachedReport, PipelineCache};
use crate::pipeline::{discharge, frontend, frontend_c, frontend_ml, frontend_rust, infer};
use ffisafe_cache::{open_backend, CacheBackend, CacheLocation, Tier};
use ffisafe_cil as cil;
use ffisafe_ocaml as ocaml;
use ffisafe_support::telemetry;
use ffisafe_support::{Fingerprint, Interner, Phase, Session};
use ffisafe_types::TypeTable;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

// ---- errors -------------------------------------------------------------

/// A typed failure at the API boundary.
///
/// Everything the old surface reported by `eprintln` + exit or by silently
/// degrading is a variant here, so embedders can branch on the cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Reading a source file from disk failed.
    Io {
        /// The path that could not be read.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A file's extension names neither an OCaml (`.ml`/`.mli`), a Rust
    /// (`.rs`) nor a C (`.c`/`.h`) source.
    UnknownFileKind {
        /// The offending file name.
        name: String,
    },
    /// Opening the cache backend failed (local directory unusable, or the
    /// remote daemon unreachable / serving a different analyzer version).
    Cache {
        /// The configured cache location (directory path or `tcp://` URL).
        dir: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            ApiError::UnknownFileKind { name } => {
                write!(f, "{name}: unknown file kind (expected .ml, .mli, .rs, .c or .h)")
            }
            ApiError::Cache { dir, message } => {
                write!(f, "cannot open cache directory {dir}: {message}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

// ---- corpus -------------------------------------------------------------

/// How one corpus file is parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// OCaml: `external` declarations and type definitions.
    Ml,
    /// C glue code.
    C,
    /// Rust: `extern "C"` boundary surfaces.
    Rust,
}

impl SourceKind {
    /// Stable tag folded into content digests (the file name alone need
    /// not determine how a file is parsed).
    pub(crate) fn tag(self) -> u8 {
        match self {
            SourceKind::Ml => 0,
            SourceKind::C => 1,
            SourceKind::Rust => 2,
        }
    }

    /// Classifies a file name by extension: `.ml`/`.mli` are OCaml,
    /// `.rs` is Rust, `.c`/`.h` are C, anything else is `None` (not an
    /// FFI source).
    pub fn from_name(name: &str) -> Option<SourceKind> {
        if name.ends_with(".ml") || name.ends_with(".mli") {
            Some(SourceKind::Ml)
        } else if name.ends_with(".rs") {
            Some(SourceKind::Rust)
        } else if name.ends_with(".c") || name.ends_with(".h") {
            Some(SourceKind::C)
        } else {
            None
        }
    }
}

/// One named source inside a [`Corpus`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusFile {
    kind: SourceKind,
    name: String,
    src: String,
}

impl CorpusFile {
    /// How this file is parsed.
    pub fn kind(&self) -> SourceKind {
        self.kind
    }

    /// The registered file name (spans resolve against it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source text.
    pub fn src(&self) -> &str {
        &self.src
    }
}

/// An immutable, content-addressed bundle of sources — the unit of
/// analysis work.
///
/// Built once via [`Corpus::builder`], fingerprinted once; after that it
/// can be cloned into any number of [`AnalysisRequest`]s, hashed into
/// cache keys, or sharded across services, and it will always mean the
/// same program. File order is preserved (it determines span resolution
/// and report order, exactly like CLI argument order).
#[derive(Clone, Debug)]
pub struct Corpus {
    files: Vec<CorpusFile>,
    fingerprint: Fingerprint,
    ml_loc: usize,
    c_loc: usize,
    rust_loc: usize,
}

impl Corpus {
    /// Starts building a corpus.
    pub fn builder() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Loads every FFI source (`.ml`/`.mli`/`.rs`/`.c`/`.h`) under `dir`,
    /// recursively, in deterministic (sorted-path) order. Files of any
    /// other kind are skipped, never [`ApiError::UnknownFileKind`] — a
    /// library directory full of build scripts and READMEs loads cleanly.
    /// Both the sweep planner and the CLI's directory arguments go through
    /// this.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Corpus, ApiError> {
        Ok(CorpusBuilder::default().dir(dir)?.build())
    }

    /// The 128-bit content digest: every file's kind, name and text, in
    /// order. Two corpora with equal fingerprints analyze identically.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The files, in registration order.
    pub fn files(&self) -> impl Iterator<Item = &CorpusFile> {
        self.files.iter()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// `true` when the corpus holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total OCaml lines.
    pub fn ml_loc(&self) -> usize {
        self.ml_loc
    }

    /// Total C lines.
    pub fn c_loc(&self) -> usize {
        self.c_loc
    }

    /// Total Rust lines.
    pub fn rust_loc(&self) -> usize {
        self.rust_loc
    }
}

/// Accumulates files for a [`Corpus`]; consumed by
/// [`CorpusBuilder::build`], which fingerprints the bundle exactly once.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    files: Vec<CorpusFile>,
}

impl CorpusBuilder {
    /// Adds an OCaml source.
    pub fn ml_source(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.files.push(CorpusFile { kind: SourceKind::Ml, name: name.into(), src: src.into() });
        self
    }

    /// Adds a C source.
    pub fn c_source(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.files.push(CorpusFile { kind: SourceKind::C, name: name.into(), src: src.into() });
        self
    }

    /// Adds a Rust source.
    pub fn rust_source(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.files.push(CorpusFile { kind: SourceKind::Rust, name: name.into(), src: src.into() });
        self
    }

    /// Adds a source whose kind is inferred from `name`'s extension.
    pub fn source(
        mut self,
        name: impl Into<String>,
        src: impl Into<String>,
    ) -> Result<Self, ApiError> {
        let name = name.into();
        let Some(kind) = SourceKind::from_name(&name) else {
            return Err(ApiError::UnknownFileKind { name });
        };
        self.files.push(CorpusFile { kind, name, src: src.into() });
        Ok(self)
    }

    /// Reads `path` from disk and adds it, inferring the kind from its
    /// extension.
    pub fn source_path(self, path: impl AsRef<Path>) -> Result<Self, ApiError> {
        let path = path.as_ref();
        let name = path.display().to_string();
        if SourceKind::from_name(&name).is_none() {
            return Err(ApiError::UnknownFileKind { name });
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| ApiError::Io { path: name.clone(), message: e.to_string() })?;
        self.source(name, src)
    }

    /// Adds every FFI source under `dir` (the builder form of
    /// [`Corpus::from_dir`]): recursive, deterministic sorted-path order,
    /// non-FFI files skipped.
    pub fn dir(mut self, dir: impl AsRef<Path>) -> Result<Self, ApiError> {
        for path in source_files_under(dir.as_ref())? {
            self = self.source_path(path)?;
        }
        Ok(self)
    }

    /// Freezes the bundle: counts lines and computes the content
    /// fingerprint.
    pub fn build(self) -> Corpus {
        let mut ml_loc = 0;
        let mut c_loc = 0;
        let mut rust_loc = 0;
        for f in &self.files {
            match f.kind {
                SourceKind::Ml => ml_loc += f.src.lines().count(),
                SourceKind::C => c_loc += f.src.lines().count(),
                SourceKind::Rust => rust_loc += f.src.lines().count(),
            }
        }
        let fingerprint = cache::corpus_content_digest(
            self.files.iter().map(|f| (f.kind.tag(), f.name.as_str(), f.src.as_str())),
        );
        Corpus { files: self.files, fingerprint, ml_loc, c_loc, rust_loc }
    }
}

/// Every FFI source file (`.ml`/`.mli`/`.rs`/`.c`/`.h`) under `root`,
/// recursively, sorted by path string — the one deterministic file order
/// [`Corpus::from_dir`], the CLI's directory arguments and the sweep
/// planner all share, so the same tree always produces the same corpus
/// fingerprint.
///
/// Directories that cannot be read surface as [`ApiError::Io`]; non-FFI
/// files are skipped silently.
pub fn source_files_under(root: &Path) -> Result<Vec<PathBuf>, ApiError> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ApiError> {
        let read = std::fs::read_dir(dir).map_err(|e| ApiError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        for dirent in read {
            let dirent = dirent.map_err(|e| ApiError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = dirent.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if SourceKind::from_name(&path.display().to_string()).is_some() {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort_by_key(|p| p.display().to_string());
    Ok(files)
}

// ---- requests -----------------------------------------------------------

/// Per-request cache policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Use the service's shared store, when it has one.
    #[default]
    Shared,
    /// Force a cold run even if the service has a store (the library
    /// equivalent of `--no-cache`).
    Bypass,
}

/// One unit of work for an [`AnalysisService`]: a corpus, the options to
/// analyze it under, and the cache policy.
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    corpus: Corpus,
    options: AnalysisOptions,
    cache_mode: CacheMode,
}

impl AnalysisRequest {
    /// A request with default options and the shared cache.
    pub fn new(corpus: Corpus) -> AnalysisRequest {
        AnalysisRequest {
            corpus,
            options: AnalysisOptions::default(),
            cache_mode: CacheMode::default(),
        }
    }

    /// Sets the analysis options (builder style).
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the cache policy (builder style).
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// The corpus under analysis.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The configured options.
    pub fn analysis_options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// The configured cache policy.
    pub fn cache_policy(&self) -> CacheMode {
        self.cache_mode
    }
}

// ---- service ------------------------------------------------------------

/// Configuration for a long-lived [`AnalysisService`].
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Root of the shared two-tier incremental-reanalysis store; `None`
    /// disables caching for every request (unless `cache_url` is set).
    pub cache_dir: Option<PathBuf>,
    /// URL of a remote `ffisafe cache-serve` daemon (`tcp://host:port`).
    /// Mutually exclusive with `cache_dir`: configuring both is an error,
    /// not a silent preference.
    pub cache_url: Option<String>,
    /// Concurrent requests [`AnalysisService::analyze_batch`] runs; `0`
    /// means "auto" (the machine's available parallelism). Each request
    /// additionally sizes its own inference pool from its
    /// [`AnalysisOptions::jobs`].
    pub batch_jobs: usize,
}

impl ServiceConfig {
    /// The cache location the `cache_dir`/`cache_url` pair names, or
    /// `None` when caching is disabled. `Err` when both are set.
    pub fn cache_location(&self) -> Result<Option<CacheLocation>, ApiError> {
        match (&self.cache_dir, &self.cache_url) {
            (Some(dir), Some(url)) => Err(ApiError::Cache {
                dir: format!("{} + {url}", dir.display()),
                message: "configure either a cache dir or a cache URL, not both".to_string(),
            }),
            (Some(dir), None) => Ok(Some(CacheLocation::Dir(dir.clone()))),
            (None, Some(url)) => Ok(Some(CacheLocation::parse(url))),
            (None, None) => Ok(None),
        }
    }
}

/// A long-lived analysis engine: accepts any number of immutable corpora,
/// shares one open cache store across them, and emits machine-readable
/// [`AnalysisReport`]s.
///
/// The service owns the three pieces of cross-request state:
///
/// * the **interner seed** — every known OCaml runtime entry point
///   ([`crate::registry::runtime_names`]) pre-interned once, cloned into
///   each request's session;
/// * the **batch pool width** — [`AnalysisService::analyze_batch`] fans
///   requests out over scoped worker threads of this width and still
///   returns results in submission order;
/// * **one open [`ffisafe_cache`] store** — concurrent requests interleave
///   tier-1/tier-2 traffic on the same store, so a batch over N corpora
///   warms one cache, not N.
///
/// Reports are byte-identical to the deprecated single-corpus
/// [`crate::Analyzer`] facade (which now delegates here), at any batch
/// width, submission order or `jobs` setting.
#[derive(Debug)]
pub struct AnalysisService {
    cache: Option<Arc<dyn CacheBackend>>,
    interner_seed: Interner,
    batch_jobs: usize,
}

impl Default for AnalysisService {
    fn default() -> Self {
        AnalysisService::new()
    }
}

impl AnalysisService {
    /// A service with no cache store and auto batch width.
    pub fn new() -> AnalysisService {
        AnalysisService::with_config(ServiceConfig::default())
            .expect("config without a cache dir cannot fail")
    }

    /// A service configured explicitly. Fails with [`ApiError::Cache`]
    /// when the cache directory cannot be opened or created, or when the
    /// remote cache daemon is unreachable or version-mismatched.
    pub fn with_config(config: ServiceConfig) -> Result<AnalysisService, ApiError> {
        let cache = match config.cache_location()? {
            Some(location) => {
                Some(open_backend(&location, &cache::analyzer_cache_version()).map_err(|e| {
                    ApiError::Cache { dir: location.to_string(), message: e.to_string() }
                })?)
            }
            None => None,
        };
        let mut interner_seed = Interner::new();
        for name in crate::registry::runtime_names() {
            interner_seed.intern(name);
        }
        Ok(AnalysisService { cache, interner_seed, batch_jobs: config.batch_jobs })
    }

    /// Convenience: a service whose requests share the store under `dir`.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Result<AnalysisService, ApiError> {
        AnalysisService::with_config(ServiceConfig {
            cache_dir: Some(dir.into()),
            ..Default::default()
        })
    }

    /// Number of entries currently in the shared store (`None` without a
    /// cache) — observability for tests and operators.
    pub fn cache_entry_count(&self) -> Option<usize> {
        self.cache.as_ref().map(|store| store.stats().entries)
    }

    /// Hit/miss counters and current occupancy (entry count, live bytes,
    /// evictions) of the shared store; `None` without a cache. This is
    /// what `--cache-stats` and the sweep report's `cache_store` section
    /// read — through the backend trait, so a remote store reports the
    /// *daemon's* occupancy, not a local-dir guess.
    pub fn cache_stats(&self) -> Option<ffisafe_cache::CacheStats> {
        self.cache.as_ref().map(|store| store.stats())
    }

    /// Analyzes one request.
    ///
    /// An in-memory corpus cannot fail today — the `Result` is the
    /// boundary's contract, not a promise that it will stay infallible as
    /// richer request kinds (paths, remote shards, deadlines) land. Cache
    /// I/O problems mid-run degrade to cache misses, never to errors.
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<AnalysisReport, ApiError> {
        self.analyze_as(request, *request.analysis_options())
    }

    /// [`AnalysisService::analyze`] with the effective options decided by
    /// the caller — the batch path substitutes a fair-share worker count
    /// for auto-jobs requests. Options never change *results* (reports
    /// are jobs-invariant), only resource usage.
    fn analyze_as(
        &self,
        request: &AnalysisRequest,
        options: AnalysisOptions,
    ) -> Result<AnalysisReport, ApiError> {
        let parsed = parse_sources(
            options,
            Some(&self.interner_seed),
            request.corpus.files().map(|f| (f.kind(), f.name(), f.src())),
        );
        let cache = match (request.cache_mode, &self.cache) {
            (CacheMode::Shared, Some(store)) => Some(PipelineCache::from_shared(store.clone())),
            _ => None,
        };
        let content_fp = cache.is_some().then(|| request.corpus.fingerprint());
        Ok(execute(parsed, content_fp, cache))
    }

    /// Analyzes every request, fanning out over the service's batch pool.
    ///
    /// Results come back **in submission order** regardless of the pool
    /// width or which request finishes first: slot `i` of the returned
    /// vector is always request `i`'s result, and each report is
    /// byte-identical to what a sequential [`AnalysisService::analyze`]
    /// call would have produced.
    ///
    /// Requests that leave [`AnalysisOptions::jobs`] at `0` (auto) get a
    /// **fair share** of the machine instead of the whole machine: with
    /// `width` requests in flight the per-request inference pool is sized
    /// to `cores / width`, so a default-configured batch never runs
    /// `cores²` worker threads. An explicit `jobs` value is honored as
    /// given.
    pub fn analyze_batch(
        &self,
        requests: &[AnalysisRequest],
    ) -> Vec<Result<AnalysisReport, ApiError>> {
        let n = requests.len();
        let width = self.effective_batch_jobs().clamp(1, n.max(1));
        let mut span =
            telemetry::span_with("service.analyze_batch", || vec![("requests", n.to_string())]);
        span.arg("width", width.to_string());
        if n <= 1 || width == 1 {
            return requests.iter().map(|r| self.analyze(r)).collect();
        }
        let cores = available_cores();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<AnalysisReport, ApiError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| {
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let request = &requests[idx];
                        let mut options = *request.analysis_options();
                        if options.jobs == 0 {
                            options.jobs = fair_share_jobs(cores, width);
                        }
                        let result = self.analyze_as(request, options);
                        *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                    // Scoped joins don't wait for thread-local teardown, so
                    // the spans must be handed off before the closure ends.
                    telemetry::flush_thread();
                });
            }
        });
        slots
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every batch slot completed")
            })
            .collect()
    }

    fn effective_batch_jobs(&self) -> usize {
        if self.batch_jobs > 0 {
            self.batch_jobs
        } else {
            available_cores()
        }
    }
}

/// The machine's available parallelism (at least 1) — the core budget
/// that [`fair_share_jobs`] divides among concurrent requests. Public so
/// schedulers layered on the service (the batch executor here, the
/// admission layer in `ffisafe-serve`) size against the same number.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The inference-pool width an auto-jobs request gets when `width`
/// requests share the machine: its fair share of the cores, at least 1.
///
/// [`AnalysisService::analyze_batch`] applies this per batch, and the
/// resident daemon applies it per admitted request, so a default-
/// configured client can never commandeer `cores²` worker threads no
/// matter how many peers are in flight. Explicit `jobs` values are never
/// rewritten — fairness only governs requests that left sizing to the
/// service.
pub fn fair_share_jobs(cores: usize, width: usize) -> usize {
    (cores / width.max(1)).max(1)
}

// ---- the engine ---------------------------------------------------------

/// A corpus parsed into one session: the input `execute` runs the staged
/// pipeline over.
pub(crate) struct ParsedSources {
    pub(crate) session: Session,
    pub(crate) ml_files: Vec<ocaml::ParsedFile>,
    pub(crate) c_units: Vec<cil::CUnit>,
    pub(crate) rust_files: Vec<ffisafe_rustffi::ParsedRustFile>,
    pub(crate) ml_loc: usize,
    pub(crate) c_loc: usize,
    pub(crate) rust_loc: usize,
}

/// Parses every source into a fresh session (optionally warm-started from
/// an interner seed), in corpus order, dispatching each file through the
/// [`frontend::Frontend`] registry by its [`SourceKind`].
pub(crate) fn parse_sources<'a>(
    options: AnalysisOptions,
    interner_seed: Option<&Interner>,
    files: impl Iterator<Item = (SourceKind, &'a str, &'a str)>,
) -> ParsedSources {
    let mut session = Session::with_options(options);
    if let Some(seed) = interner_seed {
        *session.interner_mut() = seed.clone();
    }
    let mut ml_files = Vec::new();
    let mut c_units = Vec::new();
    let mut rust_files = Vec::new();
    let mut ml_loc = 0;
    let mut c_loc = 0;
    let mut rust_loc = 0;
    for (kind, name, src) in files {
        let loc = src.lines().count();
        match frontend::frontend_for(kind).parse(&mut session, name, src) {
            frontend::ParsedUnit::Ml(file) => {
                ml_loc += loc;
                ml_files.push(file);
            }
            frontend::ParsedUnit::C(unit) => {
                c_loc += loc;
                c_units.push(unit);
            }
            frontend::ParsedUnit::Rust(file) => {
                rust_loc += loc;
                rust_files.push(file);
            }
        }
    }
    ParsedSources { session, ml_files, c_units, rust_files, ml_loc, c_loc, rust_loc }
}

/// Runs the staged pipeline over parsed sources and assembles the report.
///
/// `content_fp` is the corpus content digest, present exactly when `cache`
/// is; the tier-2 report key combines it with the session's semantic
/// options. This is the single engine entry both [`AnalysisService`] and
/// the deprecated [`crate::Analyzer`] facade go through.
pub(crate) fn execute(
    parsed: ParsedSources,
    content_fp: Option<Fingerprint>,
    cache: Option<PipelineCache>,
) -> AnalysisReport {
    let start = Instant::now();
    let ParsedSources { mut session, ml_files, c_units, rust_files, ml_loc, c_loc, rust_loc } =
        parsed;
    let mut span = telemetry::span_with("service.analyze", || {
        vec![
            ("ml_files", ml_files.len().to_string()),
            ("c_units", c_units.len().to_string()),
            ("rust_files", rust_files.len().to_string()),
        ]
    });
    let mut pcache = cache;

    // Tier-2 probe: an already-analyzed (corpus, options) pair skips the
    // pipeline entirely.
    let report_fp = content_fp.map(|fp| cache::report_key(fp, session.options()));
    if let (Some(pc), Some(fp)) = (pcache.as_ref(), report_fp) {
        if let Some(cached) = pc.get(Tier::Report, fp).and_then(|b| cache::decode_report(&b)) {
            pc.flush();
            span.arg("report_hit", "true");
            let stats = AnalysisStats {
                ml_loc,
                c_loc,
                rust_loc,
                seconds: start.elapsed().as_secs_f64(),
                cache_report_hit: true,
                ..AnalysisStats::default()
            };
            return AnalysisReport {
                diagnostics: cached.diagnostics.clone(),
                stats,
                timings: *session.timings(),
                source_map: session.source_map().clone(),
                cached: Some(cached),
            };
        }
    }

    let mut table = TypeTable::new();
    let ml = session.time(Phase::FrontendMl, |s| frontend_ml::run(s, &ml_files, &mut table));
    let c = session.time(Phase::FrontendC, |s| frontend_c::run(s, &c_units));
    let rust = session.time(Phase::FrontendRust, |s| {
        frontend_rust::run(s, &rust_files, &c.program, pcache.as_ref())
    });
    let mut base = session.time(Phase::Infer, |s| infer::link(s, table, &ml, &c.program));
    if let Some(pc) = pcache.as_mut() {
        pc.base_digest = cache::base_state_digest(session.options(), &base, &ml.phase1);
    }
    let inferred = session
        .time(Phase::Infer, |s| infer::run(s, &base, &c.program, &ml.phase1, pcache.as_ref()));
    session.timings_mut().set_work(Phase::Infer, Duration::from_secs_f64(inferred.work_seconds));
    session.time(Phase::Discharge, |s| discharge::run(s, &mut base, &inferred, &ml.phase1));

    let mut diags = session.take_diagnostics();
    diags.dedup();
    let stats = AnalysisStats {
        ml_loc,
        c_loc,
        rust_loc,
        externals: ml.phase1.signatures.len(),
        c_functions: c.program.functions.len(),
        rust_externs: rust.program.imports.len() + rust.program.statics.len(),
        rust_exports: rust.program.exports.len(),
        rust_types: rust.program.types.len(),
        rust_check_cached: rust.check_cached,
        passes: inferred.passes,
        type_nodes: base.table.node_count() + inferred.new_nodes,
        gc_edges: base.constraints.gc_edge_count() + inferred.new_gc_edges,
        jobs: inferred.jobs,
        seconds: start.elapsed().as_secs_f64(),
        infer_work_seconds: inferred.work_seconds,
        infer_setup_seconds: inferred.setup_seconds,
        infer_critical_path_seconds: inferred.critical_path_seconds,
        cache_fn_hits: inferred.cache_hits,
        cache_fn_misses: inferred.cache_misses,
        workers_executed: inferred.workers_executed,
        cache_report_hit: false,
    };
    let report = AnalysisReport {
        diagnostics: diags,
        stats,
        timings: *session.timings(),
        source_map: session.source_map().clone(),
        cached: None,
    };
    if let (Some(pc), Some(fp)) = (pcache.as_ref(), report_fp) {
        let entry = CachedReport {
            rendered: report.render_stable(),
            errors: report.error_count(),
            warnings: report.warning_count(),
            imprecision: report.imprecision_count(),
            diagnostics: report.diagnostics.clone(),
        };
        pc.put(Tier::Report, fp, &cache::encode_report(&entry));
        pc.flush();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(tag: &str) -> Corpus {
        Corpus::builder()
            .ml_source("lib.ml", format!(r#"external {tag} : int -> int = "ml_{tag}""#))
            .c_source(
                "glue.c",
                format!("value ml_{tag}(value n) {{ return Val_int(Int_val(n)); }}"),
            )
            .build()
    }

    #[test]
    fn corpus_fingerprint_is_content_addressed() {
        let a = tiny_corpus("f");
        let b = tiny_corpus("f");
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal content, equal fingerprint");
        assert_ne!(a.fingerprint(), tiny_corpus("g").fingerprint(), "content change");

        // name, kind and order all participate
        let renamed = Corpus::builder().ml_source("other.ml", "type t").build();
        let base = Corpus::builder().ml_source("lib.ml", "type t").build();
        assert_ne!(renamed.fingerprint(), base.fingerprint(), "file name");
        let as_c = Corpus::builder().c_source("lib.ml", "type t").build();
        assert_ne!(as_c.fingerprint(), base.fingerprint(), "kind tag");
        let ab = Corpus::builder().ml_source("a.ml", "").ml_source("b.ml", "").build();
        let ba = Corpus::builder().ml_source("b.ml", "").ml_source("a.ml", "").build();
        assert_ne!(ab.fingerprint(), ba.fingerprint(), "registration order");
    }

    #[test]
    fn corpus_counts_lines_per_kind() {
        let corpus = Corpus::builder()
            .ml_source("a.ml", "type t\nexternal f : t -> t = \"ml_f\"\n")
            .c_source("b.c", "value ml_f(value x) {\n  return x;\n}\n")
            .build();
        assert_eq!(corpus.ml_loc(), 2);
        assert_eq!(corpus.c_loc(), 3);
        assert_eq!(corpus.file_count(), 2);
        assert!(!corpus.is_empty());
        assert!(Corpus::builder().build().is_empty());
    }

    #[test]
    fn builder_source_detects_kind_by_extension() {
        let corpus = Corpus::builder()
            .source("a.ml", "")
            .unwrap()
            .source("b.mli", "")
            .unwrap()
            .source("c.c", "")
            .unwrap()
            .source("d.h", "")
            .unwrap()
            .source("e.rs", "")
            .unwrap()
            .build();
        let kinds: Vec<_> = corpus.files().map(|f| f.kind()).collect();
        assert_eq!(
            kinds,
            [SourceKind::Ml, SourceKind::Ml, SourceKind::C, SourceKind::C, SourceKind::Rust]
        );

        let err = Corpus::builder().source("notes.txt", "").unwrap_err();
        assert_eq!(err, ApiError::UnknownFileKind { name: "notes.txt".into() });
        assert!(err.to_string().contains("notes.txt"), "{err}");
    }

    #[test]
    fn source_path_reports_io_errors() {
        let err = Corpus::builder().source_path("/definitely/not/here.c").unwrap_err();
        match err {
            ApiError::Io { path, .. } => assert_eq!(path, "/definitely/not/here.c"),
            other => panic!("expected Io, got {other:?}"),
        }
        let err = Corpus::builder().source_path("/anything.xyz").unwrap_err();
        assert!(matches!(err, ApiError::UnknownFileKind { .. }), "{err:?}");
    }

    #[test]
    fn from_dir_loads_ffi_files_in_sorted_order_and_skips_the_rest() {
        let dir = std::env::temp_dir().join(format!("ffisafe-api-fromdir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("zz.ml"), "external f : int -> int = \"ml_f\"\n").unwrap();
        std::fs::write(dir.join("sub/glue.c"), "value ml_f(value n) { return n; }\n").unwrap();
        std::fs::write(dir.join("README.txt"), "not a source\n").unwrap();
        std::fs::write(dir.join("build.sh"), "make\n").unwrap();

        let corpus = Corpus::from_dir(&dir).unwrap();
        let names: Vec<&str> = corpus.files().map(|f| f.name()).collect();
        assert_eq!(corpus.file_count(), 2, "non-FFI files are skipped: {names:?}");
        assert!(names[0].ends_with("glue.c") && names[1].ends_with("zz.ml"), "{names:?}");
        assert_eq!(corpus.fingerprint(), Corpus::from_dir(&dir).unwrap().fingerprint());

        let missing = Corpus::from_dir(dir.join("nope"));
        assert!(matches!(missing, Err(ApiError::Io { .. })), "{missing:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn service_analyzes_empty_and_tiny_corpora() {
        let service = AnalysisService::new();
        let empty = service.analyze(&AnalysisRequest::new(Corpus::builder().build())).unwrap();
        assert_eq!(empty.error_count(), 0);
        let report = service.analyze(&AnalysisRequest::new(tiny_corpus("f"))).unwrap();
        assert_eq!(report.error_count(), 0, "{}", report.render());
        assert_eq!(report.stats.c_functions, 1);
    }

    #[test]
    fn service_analyzes_rust_c_corpora() {
        let corpus = Corpus::builder()
            .rust_source(
                "lib.rs",
                "extern \"C\" {\n    fn add(a: i32, b: i32, c: i32) -> i32;\n}\n",
            )
            .c_source("add.c", "int add(int a, int b) { return a + b; }")
            .build();
        assert_eq!(corpus.rust_loc(), 3);
        let service = AnalysisService::new();
        let report = service.analyze(&AnalysisRequest::new(corpus)).unwrap();
        assert_eq!(report.error_count(), 1, "{}", report.render());
        assert!(report.render().contains("E011"), "{}", report.render());
        assert_eq!(report.stats.rust_externs, 1);
        assert_eq!(report.stats.rust_loc, 3);
    }

    #[test]
    fn fair_share_splits_cores_across_the_batch() {
        assert_eq!(fair_share_jobs(16, 4), 4);
        assert_eq!(fair_share_jobs(16, 16), 1);
        assert_eq!(fair_share_jobs(16, 32), 1, "never below one worker");
        assert_eq!(fair_share_jobs(1, 4), 1);
        assert_eq!(fair_share_jobs(8, 3), 2, "rounds down: width * share <= cores");
        assert_eq!(fair_share_jobs(8, 0), 8, "degenerate width treated as 1");
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        // distinct corpora with recognizable diagnostics counts
        let clean = tiny_corpus("ok");
        let buggy = Corpus::builder()
            .ml_source("lib.ml", r#"external f : int -> int = "ml_f""#)
            .c_source("glue.c", "value ml_f(value n) { return Val_int(n); }")
            .build();
        let service = AnalysisService::with_config(ServiceConfig {
            cache_dir: None,
            cache_url: None,
            batch_jobs: 4,
        })
        .unwrap();
        let requests: Vec<AnalysisRequest> = (0..8)
            .map(|i| AnalysisRequest::new(if i % 2 == 0 { clean.clone() } else { buggy.clone() }))
            .collect();
        let results = service.analyze_batch(&requests);
        assert_eq!(results.len(), 8);
        for (i, result) in results.iter().enumerate() {
            let report = result.as_ref().unwrap();
            let expect = if i % 2 == 0 { 0 } else { 1 };
            assert_eq!(report.error_count(), expect, "slot {i} out of order");
        }
    }

    #[test]
    fn bad_cache_dir_is_a_typed_error() {
        let err = AnalysisService::with_cache_dir("/proc/definitely-unwritable/x").unwrap_err();
        assert!(matches!(err, ApiError::Cache { .. }), "{err:?}");
    }

    #[test]
    fn cache_mode_bypass_forces_cold_runs() {
        let dir = std::env::temp_dir().join(format!("ffisafe-api-bypass-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = AnalysisService::with_cache_dir(&dir).unwrap();
        let corpus = tiny_corpus("f");
        let cold = service.analyze(&AnalysisRequest::new(corpus.clone())).unwrap();
        assert!(!cold.stats.cache_report_hit);
        let warm = service.analyze(&AnalysisRequest::new(corpus.clone())).unwrap();
        assert!(warm.stats.cache_report_hit, "second shared-mode run hits the report tier");
        let bypass =
            service.analyze(&AnalysisRequest::new(corpus).cache_mode(CacheMode::Bypass)).unwrap();
        assert!(!bypass.stats.cache_report_hit, "bypass must not consult the store");
        assert_eq!(bypass.render_stable(), warm.render_stable());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
