//! Cross-worker fact propagation under overlay isolation.
//!
//! Each inference worker analyzes its function against a private
//! copy-on-write overlay of the frozen post-link base state, so facts one
//! function establishes about a *shared* identity (an opaque type's
//! hidden representation, a signature slot's heap-ness, a base effect
//! variable's GC-ness) are invisible to its siblings' overlays. The
//! discharge stage must reunite them; these tests pin the scenarios a
//! sequential shared-table run would catch trivially, re-locked at
//! jobs ∈ {1, 2, 8}.

use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus};

fn render(ml: &str, c: &str, jobs: usize) -> String {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions::default().with_jobs(jobs));
    AnalysisService::new().analyze(&request).unwrap().render_stable()
}

/// `ml_h` pins the opaque type `t` to the two-constructor sum `u`;
/// `ml_g`'s `int_tag` test against 7 was recorded while `t`'s `Ψ` was
/// still a variable in `ml_g`'s clone. Discharge must meet the bound with
/// the sibling's pin and reject it.
#[test]
fn psi_bound_meets_sibling_pin() {
    let ml = r#"
type t
type u = A | B
external g : t -> int = "ml_g"
external h : t -> u -> int = "ml_h"
"#;
    let c = r#"
value ml_g(value x) {
    switch (Int_val(x)) {
    case 7: return Val_int(1);
    }
    return Val_int(0);
}
value ml_h(value a, value b) {
    a = b;
    return Val_int(0);
}
"#;
    let report = render(ml, c, 1);
    assert!(
        report.contains("constructor number 7 used but the sum type has only 2"),
        "cross-function Ψ violation missing:\n{report}"
    );
    for jobs in [1, 2, 8] {
        assert_eq!(report, render(ml, c, jobs), "jobs={jobs} diverged");
    }
}

/// Without a sibling pinning `t`, the same bound stays unresolved and
/// must not be reported.
#[test]
fn psi_bound_without_pin_is_silent() {
    let ml = r#"
type t
external g : t -> int = "ml_g"
"#;
    let c = r#"
value ml_g(value x) {
    switch (Int_val(x)) {
    case 7: return Val_int(1);
    }
    return Val_int(0);
}
"#;
    let report = render(ml, c, 1);
    assert!(
        !report.contains("constructor number 7"),
        "unpinned Ψ bound should not fire:\n{report}"
    );
}

/// `tmp` aliases the parameter `s` (assignment unifies their cts) and is
/// live, unprotected, across a call that may collect. Its type is an
/// unresolved variable in `ml_f`'s clone — only `ml_h`'s clone pins the
/// shared opaque `t` to a heap block — so the unrooted-value report
/// depends on the deferred slot check covering *aliases* of parameters,
/// not just the parameters themselves.
#[test]
fn aliased_local_is_deferred_to_sibling_heap_pin() {
    let ml = r#"
type t
external f : t -> t = "ml_f"
external h : t -> int = "ml_h"
"#;
    let c = r#"
value ml_f(value s) {
    value tmp = s;
    caml_alloc(1, 0);
    return tmp;
}
value ml_h(value x) {
    return Field(x, 0);
}
"#;
    let report = render(ml, c, 1);
    assert!(
        report.contains("`tmp` holds a pointer into the OCaml heap"),
        "deferred aliased-local check missing:\n{report}"
    );
    for jobs in [1, 2, 8] {
        assert_eq!(report, render(ml, c, jobs), "jobs={jobs} diverged");
    }
}

/// `y` is unified with `mystery`'s *return* slot, which only `mystery`'s
/// own worker resolves to a heap string. The deferred check must cover
/// callee return slots, not just the obligated function's parameters.
#[test]
fn callee_return_slot_is_deferred_to_sibling_heap_pin() {
    let ml = r#"
external f : unit -> unit = "ml_f"
"#;
    let c = r#"
value mystery(void) {
    return caml_copy_string("hi");
}
value ml_f(value u) {
    value y = mystery();
    caml_alloc(1, 0);
    use_ptr(y);
    return Val_unit;
}
"#;
    let report = render(ml, c, 1);
    assert!(
        report.contains("`y` holds a pointer into the OCaml heap"),
        "deferred callee-return check missing:\n{report}"
    );
    for jobs in [1, 2, 8] {
        assert_eq!(report, render(ml, c, jobs), "jobs={jobs} diverged");
    }
}

/// The `EffectKey` Local/Base promotion edges. `ml_f`'s worker holds a
/// heap string across three calls: `ml_g` (a *base* effect variable only
/// `ml_g`'s own worker proves GC — the report requires the merged solve
/// to promote that fact across workers), and `unknown_leaf` (a synthetic
/// callee whose effect is a worker-*local* GC id exported as
/// `EffectKey::Local` — never proven GC, so it must stay silent). The
/// verdicts and the rendered report must be identical at every width.
#[test]
fn base_effect_proven_gc_by_sibling_reaches_callers_local_graph() {
    let ml = r#"
external f : unit -> unit = "ml_f"
"#;
    let c = r#"
value ml_g(value u) {
    caml_alloc(1, 0);
    return Val_unit;
}
value ml_f(value u) {
    value y = caml_copy_string("hi");
    unknown_leaf();
    ml_g(Val_unit);
    use_ptr(y);
    return Val_unit;
}
"#;
    let report = render(ml, c, 1);
    assert!(
        report.contains("across a call to `ml_g`"),
        "sibling-proven base effect did not reach the caller:\n{report}"
    );
    assert!(
        !report.contains("across a call to `unknown_leaf`"),
        "an unproven local effect must not fire:\n{report}"
    );
    for jobs in [1, 2, 8] {
        assert_eq!(report, render(ml, c, jobs), "jobs={jobs} diverged");
    }
}

/// The same flow with `t` never proven heap stays silent: the deferred
/// check must not fire on slots no sibling pinned.
#[test]
fn aliased_local_without_heap_pin_is_silent() {
    let ml = r#"
type t
external f : t -> t = "ml_f"
"#;
    let c = r#"
value ml_f(value s) {
    value tmp = s;
    caml_alloc(1, 0);
    return tmp;
}
"#;
    let report = render(ml, c, 1);
    assert!(
        !report.contains("`tmp` holds a pointer"),
        "deferred check fired without a heap pin:\n{report}"
    );
}
