//! One test per bug class of the paper's §5.2, plus clean-code baselines.
//!
//! This is experiment E3 of DESIGN.md: every error kind and questionable
//! practice the paper reports in its benchmarks must be detected by the
//! analysis, and idiomatic correct glue code must analyze clean.

use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus};
use ffisafe_support::DiagnosticCode as C;

fn run(ml: &str, c: &str) -> ffisafe_core::AnalysisReport {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

fn count(report: &ffisafe_core::AnalysisReport, code: C) -> usize {
    report.diagnostics.with_code(code).count()
}

// ---- clean baselines ---------------------------------------------------------

#[test]
fn figure2_example_is_clean() {
    let report = run(
        r#"
        type t = A of int | B | C of int * int | D
        external examine : t -> int = "ml_examine"
        "#,
        r#"
        value ml_examine(value x) {
            if (Is_long(x)) {
                switch (Int_val(x)) {
                case 0: return Val_int(10);
                case 1: return Val_int(11);
                }
            } else {
                switch (Tag_val(x)) {
                case 0: return Field(x, 0);
                case 1: return Field(x, 1);
                }
            }
            return Val_int(0);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert_eq!(report.warning_count(), 0, "{}", report.render());
}

#[test]
fn idiomatic_allocation_is_clean() {
    let report = run(
        r#"external make_pair : int -> int -> int * int = "ml_make_pair""#,
        r#"
        value ml_make_pair(value a, value b) {
            CAMLparam2(a, b);
            CAMLlocal1(res);
            res = caml_alloc(2, 0);
            Store_field(res, 0, a);
            Store_field(res, 1, b);
            CAMLreturn(res);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn int_only_glue_needs_no_registration() {
    let report = run(
        r#"external add : int -> int -> int = "ml_add""#,
        r#"
        value ml_add(value a, value b) {
            return Val_int(Int_val(a) + Int_val(b));
        }
        "#,
    );
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render());
}

#[test]
fn string_access_is_clean() {
    let report = run(
        r#"external openf : string -> int = "ml_openf""#,
        r#"
        value ml_openf(value path) {
            int fd = open_file(String_val(path));
            return Val_int(fd);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn custom_pointer_roundtrip_is_clean() {
    let report = run(
        r#"
        type handle
        external open_h : string -> handle = "ml_open_h"
        external close_h : handle -> unit = "ml_close_h"
        "#,
        r#"
        value ml_open_h(value path) {
            gzFile f = gzopen(String_val(path), "rb");
            return (value) f;
        }
        value ml_close_h(value h) {
            gzclose((gzFile) h);
            return Val_unit;
        }
        "#,
    );
    // the casts to/from `handle` (an opaque type) are the supported custom
    // idiom; the only acceptable report is the suspicious-cast heuristic
    // staying quiet
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

// ---- type errors (Figure 9 "Errors") ----------------------------------------------

#[test]
fn val_int_applied_to_value_is_reported() {
    let report =
        run(r#"external f : int -> int = "ml_f""#, r#"value ml_f(value n) { return Val_int(n); }"#);
    assert!(count(&report, C::TypeMismatch) >= 1, "{}", report.render());
}

#[test]
fn int_val_applied_to_int_is_reported() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            int k = Int_val(n);
            int bad = Int_val(k);
            return Val_int(bad);
        }
        "#,
    );
    assert!(count(&report, C::TypeMismatch) >= 1, "{}", report.render());
}

#[test]
fn missing_int_val_on_arithmetic_is_reported() {
    // classic: using the tagged value directly in arithmetic
    let report = run(
        r#"external f : int -> int -> int = "ml_f""#,
        r#"
        value ml_f(value a, value b) {
            int sum = a + b;
            return Val_int(sum);
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn option_misused_as_payload_is_reported() {
    // the lablgtk bug: an `int option` argument accessed as if it were the
    // payload directly — Field(x, 0) yields the payload, which the code
    // then treats as a block again
    let report = run(
        r#"
        external set_opt : (int * int) option -> unit = "ml_set_opt"
        "#,
        r#"
        value ml_set_opt(value opt) {
            /* WRONG: treats the option itself as the pair */
            int x = Int_val(Field(opt, 0));
            int y = Int_val(Field(opt, 1));
            use_pair(x, y);
            return Val_unit;
        }
        "#,
    );
    // Field(opt, 1) exceeds the Some-block (1 field)
    assert!(
        count(&report, C::FieldRange) + count(&report, C::TypeMismatch) >= 1,
        "{}",
        report.render()
    );
}

#[test]
fn tag_out_of_range_is_reported() {
    let report = run(
        r#"
        type t = A of int | B of string
        external f : t -> int = "ml_f""#,
        r#"
        value ml_f(value x) {
            switch (Tag_val(x)) {
            case 0: return Val_int(0);
            case 1: return Val_int(1);
            case 2: return Val_int(2);
            }
            return Val_int(3);
        }
        "#,
    );
    assert!(count(&report, C::TagRange) >= 1, "{}", report.render());
}

#[test]
fn nullary_constructor_out_of_range_is_reported() {
    let report = run(
        r#"
        type t = A | B
        external make : int -> t = "ml_make""#,
        r#"
        value ml_make(value i) {
            return Val_int(5); /* t has only 2 nullary constructors */
        }
        "#,
    );
    assert!(count(&report, C::ConstructorRange) >= 1, "{}", report.render());
}

#[test]
fn field_out_of_range_is_reported() {
    let report = run(
        r#"external fst2 : int * int -> int = "ml_fst2""#,
        r#"
        value ml_fst2(value pair) {
            return Field(pair, 5);
        }
        "#,
    );
    assert!(count(&report, C::FieldRange) >= 1, "{}", report.render());
}

#[test]
fn arity_mismatch_is_reported() {
    let report = run(
        r#"external f : int -> int -> int = "ml_f""#,
        r#"value ml_f(value a, value b, value c) { return a; }"#,
    );
    assert!(count(&report, C::ArityMismatch) >= 1, "{}", report.render());
}

// ---- GC errors ---------------------------------------------------------------------

#[test]
fn unregistered_value_across_alloc_is_reported() {
    let report = run(
        r#"external make_pair : int -> int -> int * int = "ml_make_pair""#,
        r#"
        value ml_make_pair(value a, value b) {
            value res = caml_alloc(2, 0); /* a, b live but unregistered */
            Store_field(res, 0, a);
            Store_field(res, 1, b);
            return res;
        }
        "#,
    );
    // a and b are heap-pointer candidates? ints are (⊤, ∅) — NOT pointers.
    // With int params no error is expected; the report must be clean here.
    assert_eq!(count(&report, C::UnrootedValue), 0, "{}", report.render());
    // but a boxed payload is:
    let report = run(
        r#"external wrap : string -> string * string = "ml_wrap""#,
        r#"
        value ml_wrap(value s) {
            value res = caml_alloc(2, 0); /* s live and boxed: must register */
            Store_field(res, 0, s);
            Store_field(res, 1, s);
            return res;
        }
        "#,
    );
    assert!(count(&report, C::UnrootedValue) >= 1, "{}", report.render());
}

#[test]
fn indirect_gc_call_through_helper_is_reported() {
    // the ftplib/lablgl/lablgtk bug: the GC entry point is reached through
    // a local helper, so the registration requirement is easy to miss
    let report = run(
        r#"external store : string -> unit = "ml_store""#,
        r#"
        value build_cell(value v) {
            value cell = caml_alloc(1, 0);
            Store_field(cell, 0, v);
            return cell;
        }
        value ml_store(value s) {
            value c = build_cell(s);
            remember(c, s); /* s live across the allocating helper */
            return Val_unit;
        }
        "#,
    );
    assert!(count(&report, C::UnrootedValue) >= 1, "{}", report.render());
}

#[test]
fn registered_values_are_not_reported() {
    let report = run(
        r#"external wrap : string -> string * string = "ml_wrap""#,
        r#"
        value ml_wrap(value s) {
            CAMLparam1(s);
            CAMLlocal1(res);
            res = caml_alloc(2, 0);
            Store_field(res, 0, s);
            Store_field(res, 1, s);
            CAMLreturn(res);
        }
        "#,
    );
    assert_eq!(count(&report, C::UnrootedValue), 0, "{}", report.render());
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn register_without_release_is_reported() {
    // the ocaml-mad / ocaml-vorbis bug
    let report = run(
        r#"external decode : string -> int = "ml_decode""#,
        r#"
        value ml_decode(value buf) {
            CAMLparam1(buf);
            int n = decode_bytes(String_val(buf));
            return Val_int(n); /* must be CAMLreturn */
        }
        "#,
    );
    assert!(count(&report, C::MissingCamlReturn) >= 1, "{}", report.render());
}

#[test]
fn spurious_camlreturn_is_reported() {
    let report = run(
        r#"external ping : unit -> unit = "ml_ping""#,
        r#"
        value ml_ping(value u) {
            CAMLreturn(Val_unit);
        }
        "#,
    );
    assert!(count(&report, C::SpuriousCamlReturn) >= 1, "{}", report.render());
}

#[test]
fn failwith_does_not_require_registration() {
    let report = run(
        r#"external check : string -> unit = "ml_check""#,
        r#"
        value ml_check(value s) {
            if (bad(String_val(s))) {
                caml_failwith("bad input");
            }
            log_string(String_val(s));
            return Val_unit;
        }
        "#,
    );
    assert_eq!(count(&report, C::UnrootedValue), 0, "{}", report.render());
}

// ---- questionable practice (Figure 9 "Warnings") --------------------------------------

#[test]
fn trailing_unit_parameter_is_warned() {
    let report = run(
        r#"external flush : int -> unit -> unit = "ml_flush""#,
        r#"
        value ml_flush(value fd) {
            do_flush(Int_val(fd));
            return Val_unit;
        }
        "#,
    );
    assert!(count(&report, C::TrailingUnitParameter) >= 1, "{}", report.render());
}

#[test]
fn polymorphic_abuse_is_warned() {
    // the gz seek warning: 'a used, but C commits to a concrete type
    let report = run(
        r#"external seek : 'a -> int -> unit = "ml_seek""#,
        r#"
        value ml_seek(value chan, value pos) {
            do_seek((gzFile) chan, Int_val(pos));
            return Val_unit;
        }
        "#,
    );
    assert!(count(&report, C::PolymorphicAbuse) >= 1, "{}", report.render());
}

#[test]
fn unused_polymorphic_parameter_is_not_warned() {
    let report = run(
        r#"external ignore_it : 'a -> unit = "ml_ignore""#,
        r#"
        value ml_ignore(value x) {
            return Val_unit;
        }
        "#,
    );
    assert_eq!(count(&report, C::PolymorphicAbuse), 0, "{}", report.render());
}

// ---- imprecision ----------------------------------------------------------------------

#[test]
fn unknown_offset_is_imprecision() {
    let report = run(
        r#"external sum : int array -> int -> int = "ml_sum""#,
        r#"
        value ml_sum(value arr, value n) {
            int total = 0;
            int i;
            for (i = 0; i < Int_val(n); i++) {
                total += Int_val(Field(arr, i));
            }
            return Val_int(total);
        }
        "#,
    );
    assert!(count(&report, C::UnknownOffset) >= 1, "{}", report.render());
}

#[test]
fn global_value_is_imprecision() {
    let report = run(
        r#"external init : unit -> unit = "ml_init""#,
        r#"
        static value cached_callback;
        value ml_init(value u) {
            return Val_unit;
        }
        "#,
    );
    assert_eq!(count(&report, C::GlobalValue), 1, "{}", report.render());
}

#[test]
fn address_of_value_is_imprecision() {
    let report = run(
        r#"external reg : string -> unit = "ml_reg""#,
        r#"
        value ml_reg(value s) {
            caml_register_global_root(&s);
            return Val_unit;
        }
        "#,
    );
    assert_eq!(count(&report, C::AddressOfValue), 1, "{}", report.render());
}

#[test]
fn function_pointer_call_is_imprecision() {
    let report = run(
        r#"external apply : int -> int = "ml_apply""#,
        r#"
        int (*handler)(int);
        value ml_apply(value n) {
            int (*h)(int) = get_handler();
            return Val_int(h(Int_val(n)));
        }
        "#,
    );
    assert!(count(&report, C::FunctionPointerCall) >= 1, "{}", report.render());
}

// ---- false-positive sources ------------------------------------------------------------

#[test]
fn polymorphic_variant_produces_spurious_mismatch() {
    // §5.2: polymorphic variants are not handled; code manipulating them
    // as Val_int constants triggers unification errors (counted as false
    // positives against ground truth)
    let report = run(
        r#"external set_mode : [ `On | `Off ] -> unit = "ml_set_mode""#,
        r#"
        value ml_set_mode(value mode) {
            int m = Int_val(mode);
            apply_mode(m);
            return Val_unit;
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn disguised_pointer_arithmetic_produces_spurious_mismatch() {
    // §5.2: `(t*)(v + sizeof(t*))` — pointer arithmetic disguised as
    // integer arithmetic on a custom value
    let report = run(
        r#"
        type buf
        external next : buf -> buf = "ml_next""#,
        r#"
        value ml_next(value v) {
            return (value)(mybuf *)(v + sizeof(mybuf *));
        }
        "#,
    );
    assert!(report.error_count() + count(&report, C::UnknownOffset) >= 1, "{}", report.render());
}

// ---- ablations (DESIGN.md E5) --------------------------------------------------------

#[test]
fn ablation_no_flow_sensitivity_breaks_figure2() {
    let ml = r#"
        type t = A of int | B | C of int * int | D
        external examine : t -> int = "ml_examine"
    "#;
    let c = r#"
        value ml_examine(value x) {
            if (Is_long(x)) {
                switch (Int_val(x)) {
                case 0: return Val_int(10);
                case 1: return Val_int(11);
                }
            } else {
                switch (Tag_val(x)) {
                case 0: return Field(x, 0);
                case 1: return Field(x, 1);
                }
            }
            return Val_int(0);
        }
    "#;
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions {
        flow_sensitive: false,
        gc_effects: true,
        ..AnalysisOptions::default()
    });
    let ablated = AnalysisService::new().analyze(&request).unwrap();
    // without B/I/T tracking the tag-dependent field accesses cannot be
    // validated and spurious reports appear
    assert!(
        ablated.error_count() > 0,
        "flow-insensitive analysis should produce false positives: {}",
        ablated.render()
    );
}

#[test]
fn ablation_no_gc_effects_misses_unrooted_value() {
    let ml = r#"external wrap : string -> string * string = "ml_wrap""#;
    let c = r#"
        value ml_wrap(value s) {
            value res = caml_alloc(2, 0);
            Store_field(res, 0, s);
            Store_field(res, 1, s);
            return res;
        }
    "#;
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions {
        flow_sensitive: true,
        gc_effects: false,
        ..AnalysisOptions::default()
    });
    let ablated = AnalysisService::new().analyze(&request).unwrap();
    assert_eq!(ablated.diagnostics.with_code(C::UnrootedValue).count(), 0, "{}", ablated.render());
}
