//! Differential oracle suite for the frozen-arena overlay.
//!
//! Old semantics: each inference worker deep-cloned the post-link
//! `TypeTable`. New semantics: workers get an O(1) copy-on-write overlay
//! over a frozen, `Arc`-shared arena. The two must be observationally
//! identical — same allocation ids, same unification verdicts, same
//! resolved state, same renders — and, end to end, reports must stay
//! byte-identical at any worker count and cache temperature.
//!
//! The property tests drive a deep clone and a frozen overlay of one
//! randomly built base table through the *same* `Rng64`-seeded
//! unify/bind/Ψ-pin sequence and compare everything observable. Every
//! assertion message carries the seed; replay a single failing seed with
//! `FFISAFE_OVERLAY_SEED=<n> cargo test -p ffisafe-core --test
//! overlay_differential`.

use ffisafe_support::rng::Rng64;
use ffisafe_support::Span;
use ffisafe_types::{ConstraintSet, FlatInt, GcId, MtId, PsiId, TypeTable};
use std::sync::Arc;

// ---- randomized op sequences --------------------------------------------

/// One table operation, pure data so the same sequence can be applied to
/// both implementations.
#[derive(Clone, Debug)]
enum Op {
    FreshMt,
    AbstractMt {
        name: String,
        heap: bool,
    },
    RepMt,
    CustomMt,
    UnifyMt(usize, usize),
    FreshPsi,
    /// `unify_psi(psis[var], psi_count(n))`, or against `psi_top()` when
    /// `count` is `None` — the Ψ-pin a worker performs when a shared open
    /// representation flows into a concrete context.
    PinPsi {
        var: usize,
        count: Option<u32>,
    },
    UnifyPsi(usize, usize),
    FreshGc,
    GcConst(bool),
    UnifyGc(usize, usize),
}

/// Per-table id pools. Both tables allocate in the same order, so the
/// pools must stay identical — `apply` asserts it.
#[derive(Default)]
struct Pools {
    mts: Vec<MtId>,
    psis: Vec<PsiId>,
    gcs: Vec<GcId>,
}

/// Tracks pool sizes during generation so ops only reference ids that
/// will exist when they run.
#[derive(Clone, Copy)]
struct Sim {
    mts: usize,
    psis: usize,
    gcs: usize,
}

fn gen_ops(rng: &mut Rng64, mut sim: Sim, n: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match rng.gen_range(0..11u32) {
            0 => {
                sim.mts += 1;
                Op::FreshMt
            }
            1 => {
                sim.mts += 1;
                Op::AbstractMt {
                    name: format!("t{}", rng.gen_range(0..4u32)),
                    heap: rng.gen_bool(0.5),
                }
            }
            2 => {
                sim.mts += 1;
                Op::RepMt
            }
            3 => {
                sim.mts += 1;
                Op::CustomMt
            }
            4 => Op::UnifyMt(rng.gen_range(0..sim.mts), rng.gen_range(0..sim.mts)),
            5 => {
                sim.psis += 1;
                Op::FreshPsi
            }
            6 => Op::PinPsi {
                var: rng.gen_range(0..sim.psis),
                count: rng.gen_bool(0.7).then(|| rng.gen_range(0..6u32)),
            },
            7 => Op::UnifyPsi(rng.gen_range(0..sim.psis), rng.gen_range(0..sim.psis)),
            8 => {
                sim.gcs += 1;
                Op::FreshGc
            }
            9 => {
                sim.gcs += 1;
                Op::GcConst(rng.gen_bool(0.5))
            }
            _ => Op::UnifyGc(rng.gen_range(0..sim.gcs), rng.gen_range(0..sim.gcs)),
        };
        ops.push(op);
    }
    ops
}

/// Applies one op and returns a string describing everything observable
/// about it (allocated raw ids, unification verdicts) for comparison.
fn apply(table: &mut TypeTable, pools: &mut Pools, op: &Op) -> String {
    match op {
        Op::FreshMt => {
            let id = table.fresh_mt();
            pools.mts.push(id);
            format!("mt {}", id.as_raw())
        }
        Op::AbstractMt { name, heap } => {
            let id = table.mt_abstract(name, *heap);
            pools.mts.push(id);
            format!("mt {}", id.as_raw())
        }
        Op::RepMt => {
            let id = table.mt_fresh_rep();
            pools.mts.push(id);
            format!("mt {}", id.as_raw())
        }
        Op::CustomMt => {
            let ct = table.ct_fresh_value();
            let id = table.mt_custom(ct);
            pools.mts.push(id);
            format!("mt {} (ct {})", id.as_raw(), ct.as_raw())
        }
        Op::UnifyMt(a, b) => {
            format!("unify_mt -> {:?}", table.unify_mt(pools.mts[*a], pools.mts[*b]))
        }
        Op::FreshPsi => {
            let id = table.fresh_psi();
            pools.psis.push(id);
            format!("psi {}", id.as_raw())
        }
        Op::PinPsi { var, count } => {
            let pin = match count {
                Some(n) => table.psi_count(*n),
                None => table.psi_top(),
            };
            format!("pin_psi -> {:?}", table.unify_psi(pools.psis[*var], pin))
        }
        Op::UnifyPsi(a, b) => {
            format!("unify_psi -> {:?}", table.unify_psi(pools.psis[*a], pools.psis[*b]))
        }
        Op::FreshGc => {
            let id = table.fresh_gc();
            pools.gcs.push(id);
            format!("gc {}", id.as_raw())
        }
        Op::GcConst(is_gc) => {
            let id = if *is_gc { table.gc_gc() } else { table.gc_nogc() };
            pools.gcs.push(id);
            format!("gc {}", id.as_raw())
        }
        Op::UnifyGc(a, b) => {
            table.unify_gc(pools.gcs[*a], pools.gcs[*b]);
            "unify_gc".to_string()
        }
    }
}

/// Builds a random base table the way linking would: a mix of variables,
/// abstract types, representation types and constants, pre-tangled by a
/// few base-side unifications.
fn build_base(rng: &mut Rng64) -> (TypeTable, Pools) {
    let mut table = TypeTable::new();
    let mut pools = Pools::default();
    // Seed at least one of each sort so op generation never draws from an
    // empty pool, then grow randomly.
    pools.mts.push(table.fresh_mt());
    pools.psis.push(table.fresh_psi());
    pools.gcs.push(table.fresh_gc());
    let sim = Sim { mts: 1, psis: 1, gcs: 1 };
    let n = rng.gen_range(20..60usize);
    let build_ops = gen_ops(rng, sim, n);
    for op in &build_ops {
        apply(&mut table, &mut pools, op);
    }
    (table, pools)
}

fn run_seed(seed: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let (base, base_pools) = build_base(&mut rng);

    // Old semantics: a deep clone of the (uncompressed) base.
    let mut cloned = base.clone();
    let mut clone_pools = Pools {
        mts: base_pools.mts.clone(),
        psis: base_pools.psis.clone(),
        gcs: base_pools.gcs.clone(),
    };

    // New semantics: freeze (fully path-compressing) and overlay.
    let frozen = base.freeze();
    let mut overlay = frozen.overlay();
    let mut overlay_pools = base_pools;

    assert_eq!(
        cloned.node_count(),
        overlay.node_count(),
        "seed {seed}: node counts diverge before any worker op"
    );

    let sim = Sim {
        mts: clone_pools.mts.len(),
        psis: clone_pools.psis.len(),
        gcs: clone_pools.gcs.len(),
    };
    let n = rng.gen_range(30..120usize);
    let ops = gen_ops(&mut rng, sim, n);
    for (i, op) in ops.iter().enumerate() {
        let old = apply(&mut cloned, &mut clone_pools, op);
        let new = apply(&mut overlay, &mut overlay_pools, op);
        assert_eq!(old, new, "seed {seed}: op {i} {op:?} observed differently");
    }

    // Full-state comparison: every id ever allocated must resolve to the
    // same canonical, the same node, the same render.
    assert_eq!(cloned.node_count(), overlay.node_count(), "seed {seed}: node counts");
    for (i, (&a, &b)) in clone_pools.mts.iter().zip(&overlay_pools.mts).enumerate() {
        assert_eq!(a, b, "seed {seed}: mt pool id {i}");
        assert_eq!(
            cloned.resolve_mt(a).as_raw(),
            overlay.resolve_mt(b).as_raw(),
            "seed {seed}: mt {i} canonical"
        );
        assert_eq!(cloned.render_mt(a), overlay.render_mt(b), "seed {seed}: mt {i} render");
    }
    for (i, (&a, &b)) in clone_pools.psis.iter().zip(&overlay_pools.psis).enumerate() {
        assert_eq!(
            cloned.resolve_psi(a).as_raw(),
            overlay.resolve_psi(b).as_raw(),
            "seed {seed}: psi {i} canonical"
        );
        let ca = cloned.resolve_psi(a);
        let cb = overlay.resolve_psi(b);
        assert_eq!(cloned.psi_node(ca), overlay.psi_node(cb), "seed {seed}: psi {i} node");
    }
    for (i, (&a, &b)) in clone_pools.gcs.iter().zip(&overlay_pools.gcs).enumerate() {
        assert_eq!(
            cloned.resolve_gc(a).as_raw(),
            overlay.resolve_gc(b).as_raw(),
            "seed {seed}: gc {i} canonical"
        );
        let ca = cloned.resolve_gc(a);
        let cb = overlay.resolve_gc(b);
        assert_eq!(cloned.gc_node(ca), overlay.gc_node(cb), "seed {seed}: gc {i} node");
    }

    // Constraint-store differential on top of the same two tables: the
    // clone gets a plain copy of the base store, the overlay a one-level
    // view; identical local appends must yield identical global indexing,
    // an identical GC solve and identical Ψ-bound verdicts.
    let mut base_cs = ConstraintSet::new();
    for _ in 0..rng.gen_range(0..8usize) {
        let a = clone_pools.gcs[rng.gen_range(0..clone_pools.gcs.len())];
        let b = clone_pools.gcs[rng.gen_range(0..clone_pools.gcs.len())];
        base_cs.add_gc_edge(a, b);
    }
    for _ in 0..rng.gen_range(0..5usize) {
        let t = match rng.gen_range(0..3u32) {
            0 => FlatInt::Bot,
            1 => FlatInt::Known(rng.gen_range(0..8u32) as i64 - 1),
            _ => FlatInt::Top,
        };
        let psi = clone_pools.psis[rng.gen_range(0..clone_pools.psis.len())];
        base_cs.add_psi_bound(t, psi, Span::dummy(), "base bound");
    }
    let mut clone_cs = base_cs.clone();
    let mut overlay_cs = ConstraintSet::overlay(Arc::new(base_cs));
    for _ in 0..rng.gen_range(0..10usize) {
        if rng.gen_bool(0.6) {
            let a = rng.gen_range(0..clone_pools.gcs.len());
            let b = rng.gen_range(0..clone_pools.gcs.len());
            clone_cs.add_gc_edge(clone_pools.gcs[a], clone_pools.gcs[b]);
            overlay_cs.add_gc_edge(overlay_pools.gcs[a], overlay_pools.gcs[b]);
        } else {
            let t = FlatInt::Known(rng.gen_range(0..6u32) as i64);
            let p = rng.gen_range(0..clone_pools.psis.len());
            clone_cs.add_psi_bound(t, clone_pools.psis[p], Span::dummy(), "local bound");
            overlay_cs.add_psi_bound(t, overlay_pools.psis[p], Span::dummy(), "local bound");
        }
    }
    assert_eq!(clone_cs.gc_edge_count(), overlay_cs.gc_edge_count(), "seed {seed}: edge count");
    assert_eq!(clone_cs.psi_bound_count(), overlay_cs.psi_bound_count(), "seed {seed}: bounds");
    let old_edges: Vec<_> = clone_cs.gc_edges_from(0).collect();
    let new_edges: Vec<_> = overlay_cs.gc_edges_from(0).collect();
    assert_eq!(old_edges, new_edges, "seed {seed}: global edge sequence");

    let old_solution = clone_cs.solve_gc(&mut cloned);
    let new_solution = overlay_cs.solve_gc(&mut overlay);
    for (i, (&a, &b)) in clone_pools.gcs.iter().zip(&overlay_pools.gcs).enumerate() {
        assert_eq!(
            old_solution.may_gc(&cloned, a),
            new_solution.may_gc(&overlay, b),
            "seed {seed}: gc {i} may-GC verdict"
        );
    }
    let old_violations = clone_cs.check_psi_bounds(&cloned);
    let new_violations = overlay_cs.check_psi_bounds(&overlay);
    assert_eq!(
        format!("{old_violations:?}"),
        format!("{new_violations:?}"),
        "seed {seed}: Ψ-bound verdicts"
    );
}

/// The property suite: many seeds, or exactly one when
/// `FFISAFE_OVERLAY_SEED` is set (replaying a reported failure).
#[test]
fn overlay_is_observationally_identical_to_clone() {
    if let Ok(seed) = std::env::var("FFISAFE_OVERLAY_SEED") {
        let seed: u64 = seed.parse().expect("FFISAFE_OVERLAY_SEED must be an integer");
        run_seed(seed);
        return;
    }
    for seed in 0..48 {
        run_seed(seed);
    }
}

// ---- end-to-end byte identity -------------------------------------------

use ffisafe_bench::corpus::generate;
use ffisafe_bench::spec::paper_benchmarks;
use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus, ServiceConfig};

fn render(ml: &str, c: &str, jobs: usize, cache_dir: Option<&std::path::Path>) -> String {
    let service = AnalysisService::with_config(ServiceConfig {
        cache_dir: cache_dir.map(|d| d.to_path_buf()),
        cache_url: None,
        batch_jobs: 0,
    })
    .expect("temp cache dir opens");
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions::default().with_jobs(jobs));
    service.analyze(&request).expect("in-memory analysis succeeds").render_stable()
}

/// Every Figure 9 workload renders byte-identically at jobs ∈ {1, 2, 8},
/// cold and warm: the frozen-arena overlays leak no scheduling or cache
/// state into the report.
#[test]
fn figure9_reports_identical_across_jobs_and_cache_temperature() {
    for spec in paper_benchmarks() {
        let bench = generate(&spec);
        let baseline = render(&bench.ml_source, &bench.c_source, 1, None);
        for jobs in [1, 2, 8] {
            let dir = std::env::temp_dir().join(format!(
                "ffisafe-overlay-diff-{}-{}-{}",
                spec.name.replace('/', "_"),
                jobs,
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cold = render(&bench.ml_source, &bench.c_source, jobs, Some(&dir));
            let warm = render(&bench.ml_source, &bench.c_source, jobs, Some(&dir));
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(baseline, cold, "{} jobs={jobs}: cold diverges", spec.name);
            assert_eq!(baseline, warm, "{} jobs={jobs}: warm diverges", spec.name);
        }
    }
}
