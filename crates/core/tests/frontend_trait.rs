//! Frontend-trait conformance: routing corpus parsing through the
//! pluggable [`Frontend`] registry must not change what the pipeline
//! produces. The OCaml/C pair renders byte-identical reports at any
//! worker width, cold and warm, and a pure OCaml/C corpus never grows a
//! Rust suffix in its stable rendering.

use ffisafe_core::{
    AnalysisOptions, AnalysisRequest, AnalysisService, Corpus, SourceKind, FRONTENDS,
};

const ML: &str = r#"
type t = A of int | B
external examine : t -> int = "ml_examine"
external bump : int -> int = "ml_bump"
"#;

/// `ml_bump` is buggy (`Val_int` of a `value`), so the report has a
/// stable finding to compare.
const C: &str = r#"
value ml_examine(value x) {
    if (Is_long(x)) return Val_int(0);
    return Field(x, 0);
}
value ml_bump(value n) { return Val_int(n); }
"#;

fn ocaml_c_corpus() -> Corpus {
    Corpus::builder().ml_source("lib.ml", ML).c_source("glue.c", C).build()
}

#[test]
fn registry_is_total_and_unambiguous_over_source_kinds() {
    for kind in [SourceKind::Ml, SourceKind::C, SourceKind::Rust] {
        let claims = FRONTENDS.iter().filter(|f| f.handles(kind)).count();
        assert_eq!(claims, 1, "{kind:?} must be claimed by exactly one frontend");
    }
    let mut ids: Vec<&str> = FRONTENDS.iter().map(|f| f.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), FRONTENDS.len(), "frontend ids must be distinct");
}

#[test]
fn ocaml_c_reports_are_byte_identical_across_jobs_cold_and_warm() {
    let service = AnalysisService::new();
    let reference = service
        .analyze(
            &AnalysisRequest::new(ocaml_c_corpus())
                .options(AnalysisOptions::default().with_jobs(1)),
        )
        .unwrap();
    let stable = reference.render_stable();
    assert!(stable.contains("E001"), "premise: the corpus has a finding:\n{stable}");
    assert!(
        !stable.contains("lines Rust"),
        "a pure OCaml/C report must not mention Rust:\n{stable}"
    );

    // Cold at jobs 8: same bytes.
    let wide = service
        .analyze(
            &AnalysisRequest::new(ocaml_c_corpus())
                .options(AnalysisOptions::default().with_jobs(8)),
        )
        .unwrap();
    assert_eq!(wide.render_stable(), stable);

    // Cold then warm through a shared cache, at both widths.
    let dir = std::env::temp_dir().join(format!("ffisafe-fe-trait-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cached = AnalysisService::with_cache_dir(&dir).unwrap();
    for jobs in [1, 8] {
        let request = AnalysisRequest::new(ocaml_c_corpus())
            .options(AnalysisOptions::default().with_jobs(jobs));
        let cold_or_warm = cached.analyze(&request).unwrap();
        assert_eq!(cold_or_warm.render_stable(), stable, "jobs={jobs}");
    }
    let warm = cached
        .analyze(
            &AnalysisRequest::new(ocaml_c_corpus())
                .options(AnalysisOptions::default().with_jobs(8)),
        )
        .unwrap();
    assert!(warm.stats.cache_report_hit, "unchanged corpus must hit the report tier");
    assert_eq!(warm.stats.workers_executed, 0, "warm runs execute zero workers");
    assert_eq!(warm.render_stable(), stable);
    let _ = std::fs::remove_dir_all(&dir);
}
