//! The inference stage's determinism contract: whatever the worker count,
//! analyzing the same corpus yields byte-identical rendered reports.
//!
//! This is the acceptance gate for the snapshot-isolation design of
//! `pipeline::infer` — outcomes are merged in program order and every
//! cross-clone identity (effect keys, signature slots) is normalized
//! against the base state, so scheduling must never leak into the output.

use ffisafe_bench::corpus::generate;
use ffisafe_bench::spec::paper_benchmarks;
use ffisafe_core::{AnalysisOptions, AnalysisRequest, AnalysisService, Corpus};

fn render_with_jobs(ml: &str, c: &str, jobs: usize) -> String {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    let request = AnalysisRequest::new(corpus).options(AnalysisOptions::default().with_jobs(jobs));
    let report = AnalysisService::new().analyze(&request).unwrap();
    assert_eq!(report.stats.jobs.min(jobs.max(1)), report.stats.jobs);
    report.render_stable()
}

/// Every Figure 9 benchmark renders identically at `jobs=1` and `jobs=8`.
#[test]
fn figure9_corpus_is_jobs_invariant() {
    for spec in paper_benchmarks() {
        let bench = generate(&spec);
        let serial = render_with_jobs(&bench.ml_source, &bench.c_source, 1);
        let parallel = render_with_jobs(&bench.ml_source, &bench.c_source, 8);
        assert_eq!(serial, parallel, "{}: jobs=1 and jobs=8 reports differ", spec.name);
        // and re-running at the same width is stable too
        let parallel2 = render_with_jobs(&bench.ml_source, &bench.c_source, 8);
        assert_eq!(parallel, parallel2, "{}: jobs=8 is not stable", spec.name);
    }
}

/// A diagnostic-dense corpus (every defect kind seeded) stays invariant
/// across several worker counts.
#[test]
fn defect_dense_benchmark_is_jobs_invariant() {
    let spec = paper_benchmarks()
        .into_iter()
        .find(|s| s.name == "lablgtk-2.2.0")
        .expect("lablgtk spec exists");
    let bench = generate(&spec);
    let baseline = render_with_jobs(&bench.ml_source, &bench.c_source, 1);
    assert!(!baseline.is_empty());
    for jobs in [2, 3, 8, 16] {
        let got = render_with_jobs(&bench.ml_source, &bench.c_source, jobs);
        assert_eq!(baseline, got, "jobs={jobs} diverged from jobs=1");
    }
}

/// `jobs: 0` (auto) must agree with an explicit worker count as well.
#[test]
fn auto_jobs_matches_explicit_jobs() {
    let spec = &paper_benchmarks()[3];
    let bench = generate(spec);
    let auto = {
        let corpus = Corpus::builder()
            .ml_source("lib.ml", &bench.ml_source)
            .c_source("glue.c", &bench.c_source)
            .build();
        AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap().render_stable()
    };
    let explicit = render_with_jobs(&bench.ml_source, &bench.c_source, 1);
    assert_eq!(auto, explicit);
}
