//! Focused tests for engine paths not covered by the §5.2 taxonomy:
//! casts and their heuristics, shape propagation through C operators,
//! address-taken pinning, and control-flow corner cases.

use ffisafe_core::{AnalysisRequest, AnalysisService, Corpus};
use ffisafe_support::DiagnosticCode as C;

fn run(ml: &str, c: &str) -> ffisafe_core::AnalysisReport {
    let corpus = Corpus::builder().ml_source("lib.ml", ml).c_source("glue.c", c).build();
    AnalysisService::new().analyze(&AnalysisRequest::new(corpus)).unwrap()
}

fn count(report: &ffisafe_core::AnalysisReport, code: C) -> usize {
    report.diagnostics.with_code(code).count()
}

// ---- casts -------------------------------------------------------------

#[test]
fn void_pointer_cast_heuristic_is_silent() {
    // §5.1: "any cast through a void * type is ignored"
    let report = run(
        r#"
        type h
        external f : h -> unit = "ml_f""#,
        r#"
        value ml_f(value x) {
            void *p = (void *) x;
            use_ptr(p);
            return Val_unit;
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert_eq!(report.warning_count(), 0, "{}", report.render());
}

#[test]
fn long_cast_of_value_is_tolerated() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            long raw = (long) n;
            return Val_int((int)(raw >> 1));
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn int_to_value_cast_is_suspicious() {
    let report = run(
        r#"external f : unit -> int = "ml_f""#,
        r#"
        value ml_f(value u) {
            int n = 21;
            return (value) n; /* missing Val_int */
        }
        "#,
    );
    assert!(count(&report, C::SuspiciousCast) >= 1, "{}", report.render());
}

#[test]
fn conflicting_custom_casts_are_flagged() {
    let report = run(
        r#"
        type h
        external f : h -> unit = "ml_f""#,
        r#"
        value ml_f(value x) {
            winT *w = (winT *) x;
            btnT *b = (btnT *) x; /* same opaque type, different C type */
            use2(w, b);
            return Val_unit;
        }
        "#,
    );
    assert!(count(&report, C::SuspiciousCast) >= 1, "{}", report.render());
}

// ---- operators and shapes -------------------------------------------------

#[test]
fn value_equality_comparison_is_allowed() {
    let report = run(
        r#"external f : int option -> int = "ml_f""#,
        r#"
        value ml_f(value opt) {
            if (opt == Val_int(0)) { /* None check, common idiom */
                return Val_int(-1);
            }
            return Field(opt, 0);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn comparing_value_with_plain_int_is_an_error() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            int k = 3;
            if (n == k) { return Val_int(1); } /* missing Int_val */
            return Val_int(0);
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn negation_and_not_produce_ints() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            int x = Int_val(n);
            int y = -x;
            int z = !y;
            int w = ~z;
            return Val_int(y + z + w);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn ternary_merges_branches() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            int v = Int_val(n) > 0 ? 1 : 2;
            return Val_int(v);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn do_while_and_goto_are_supported() {
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            int i = Int_val(n);
            do { i = i - 1; } while (i > 0);
            if (i < 0) goto out;
            i = i + 100;
        out:
            return Val_int(i);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

// ---- address-of pinning ------------------------------------------------------

#[test]
fn address_taken_int_loses_precision() {
    // `i` has its address taken, so its value is ⊤ everywhere (§5.1) and
    // Field(x, i) cannot prove a static offset even right after i = 0
    let report = run(
        r#"external f : int * int -> int = "ml_f""#,
        r#"
        value ml_f(value x) {
            int i = 0;
            fill_index(&i);
            return Field(x, i);
        }
        "#,
    );
    assert!(count(&report, C::UnknownOffset) >= 1, "{}", report.render());
}

#[test]
fn plain_index_keeps_precision() {
    let report = run(
        r#"external f : int * int -> int = "ml_f""#,
        r#"
        value ml_f(value x) {
            int i = 1;
            return Field(x, i);
        }
        "#,
    );
    assert_eq!(count(&report, C::UnknownOffset), 0, "{}", report.render());
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

// ---- misc runtime interplay ------------------------------------------------------

#[test]
fn caml_copy_double_types_check() {
    let report = run(
        r#"external mk : unit -> float = "ml_mk""#,
        r#"
        value ml_mk(value u) {
            return caml_copy_double(3.25);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn double_val_on_non_float_is_an_error() {
    let report = run(
        r#"external f : int -> unit = "ml_f""#,
        r#"
        value ml_f(value n) {
            double d = Double_val(n);
            use_d(d);
            return Val_unit;
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn distinct_allocations_do_not_unify() {
    // caml_alloc is instantiated per call site: a string pair and an int
    // ref in one function must not interfere
    let report = run(
        r#"
        external a : string -> string * string = "ml_a"
        external b : int -> int ref = "ml_b"
        "#,
        r#"
        value ml_a(value s) {
            CAMLparam1(s);
            CAMLlocal1(r);
            r = caml_alloc(2, 0);
            Store_field(r, 0, s);
            Store_field(r, 1, s);
            CAMLreturn(r);
        }
        value ml_b(value n) {
            value r = caml_alloc(1, 0);
            Store_field(r, 0, n);
            return r;
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn wosize_and_tag_prims_are_ints() {
    let report = run(
        r#"external f : int * int -> int = "ml_f""#,
        r#"
        value ml_f(value x) {
            int size = Wosize_val(x);
            int tag = Tag_val(x);
            return Val_int(size + tag);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn unreachable_branch_is_pruned() {
    // `if (0)` is statically dead: the bogus code inside must not report
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        value ml_f(value n) {
            if (0) {
                return Field(n, 3); /* dead: n is an int */
            }
            return Val_int(Int_val(n));
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn string_literals_are_char_pointers() {
    let report = run(
        r#"external f : unit -> int = "ml_f""#,
        r#"
        value ml_f(value u) {
            const char *msg = "hello";
            return Val_int(lib_measure(msg));
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}

#[test]
fn helper_prototypes_connect_call_sites() {
    // a prototype without body still carries η-types: a bad call is caught
    let report = run(
        r#"external f : int -> int = "ml_f""#,
        r#"
        int helper(int x);
        value ml_f(value n) {
            return Val_int(helper(n)); /* passes a value where int expected */
        }
        "#,
    );
    assert!(report.error_count() >= 1, "{}", report.render());
}

#[test]
fn static_helpers_require_registration_transitively() {
    let report = run(
        r#"external f : string -> string ref = "ml_f""#,
        r#"
        static value wrap(value v) {
            value cell = caml_alloc(1, 0);
            Store_field(cell, 0, v);
            return cell;
        }
        value ml_f(value s) {
            CAMLparam1(s);
            CAMLlocal1(c);
            c = wrap(s);
            CAMLreturn(c);
        }
        "#,
    );
    // ml_f registers correctly, but wrap itself holds `v` live across the
    // allocation without registering it
    assert!(report.diagnostics.with_code(C::UnrootedValue).count() >= 1, "{}", report.render());
}

#[test]
fn runtime_check_suggestions_cover_imprecision() {
    let report = run(
        r#"external sum : int array -> int -> int = "ml_sum""#,
        r#"
        static value stash;
        value ml_sum(value arr, value n) {
            int total = 0;
            int i;
            for (i = 0; i < Int_val(n); i++) {
                total += Int_val(Field(arr, i));
            }
            return Val_int(total);
        }
        "#,
    );
    let suggestions = report.suggest_runtime_checks();
    assert_eq!(suggestions.len(), report.imprecision_count(), "{}", report.render());
    assert!(suggestions.iter().any(|s| s.suggestion.contains("Wosize_val")));
    assert!(suggestions.iter().any(|s| s.suggestion.contains("caml_register_global_root")));
}

#[test]
fn atom_macro_is_boxed_constant() {
    let report = run(
        r#"external empty : unit -> int array = "ml_empty""#,
        r#"
        value ml_empty(value u) {
            return Atom(0);
        }
        "#,
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
}
