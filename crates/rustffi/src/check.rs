//! The Rust-FFI boundary checker.
//!
//! Mirrors rustc's `improper_ctypes` walk (the `check_type_for_ffi` lint):
//! every type reachable from an `extern "C"` boundary signature is
//! recursively classified, with a visiting set for cycle protection, and
//! compared representation-for-representation against the C definitions
//! lowered by the C frontend:
//!
//! * arity and per-position type compatibility against the C function with
//!   the same link name ([`DiagnosticCode::RustArityMismatch`] /
//!   [`DiagnosticCode::RustTypeMismatch`]);
//! * `struct`/`enum`/`union` declarations crossing the boundary without a
//!   C-stable `repr` ([`DiagnosticCode::RustMissingReprC`]);
//! * FFI-unsafe payloads — `String`, `Vec`, wide pointers (`&str`,
//!   `&[T]`), `char`, niche-less `Option`, Rust-ABI fn pointers
//!   ([`DiagnosticCode::RustFfiUnsafe`]);
//! * non-nullable references where the C contract has a plain pointer
//!   ([`DiagnosticCode::RustNullability`]).
//!
//! Classification is deliberately lenient where C is opaque: `Named` C
//! types and unknown Rust paths compare as compatible, so only confident
//! representation clashes (integer vs pointer, float vs integer, …) are
//! reported.

use crate::ast::*;
use ffisafe_cil::ctypes::CTypeExpr;
use ffisafe_cil::ir::IrProgram;
use ffisafe_support::{Diagnostic, DiagnosticBag, DiagnosticCode, Span};
use std::collections::{BTreeMap, BTreeSet};

/// The merged boundary surface of every `.rs` file in a corpus.
#[derive(Clone, Debug, Default)]
pub struct RustProgram {
    /// Imported C functions, in file-then-declaration order.
    pub imports: Vec<ForeignFn>,
    /// Imported C globals.
    pub statics: Vec<ForeignStatic>,
    /// Exported Rust functions.
    pub exports: Vec<ExportFn>,
    /// Type declarations by name (a later declaration shadows an earlier
    /// duplicate, matching last-definition-wins linking).
    pub types: BTreeMap<String, TypeDecl>,
    /// `type` aliases by name.
    pub aliases: BTreeMap<String, RustType>,
}

impl RustProgram {
    /// Merges parsed files into one program surface.
    pub fn merge(files: &[ParsedRustFile]) -> RustProgram {
        let mut out = RustProgram::default();
        for f in files {
            out.imports.extend(f.imports.iter().cloned());
            out.statics.extend(f.statics.iter().cloned());
            out.exports.extend(f.exports.iter().cloned());
            for t in &f.types {
                out.types.insert(t.name.clone(), t.clone());
            }
            for a in &f.aliases {
                out.aliases.insert(a.name.clone(), a.ty.clone());
            }
        }
        out
    }

    /// Whether the surface declares anything boundary-relevant.
    pub fn is_empty(&self) -> bool {
        self.imports.is_empty() && self.statics.is_empty() && self.exports.is_empty()
    }
}

/// How a Rust type is represented at the boundary, for comparison against a
/// [`CTypeExpr`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum Shape {
    /// Any FFI-stable integer (including `bool` and fieldless
    /// primitive-repr enums).
    Int,
    /// `f32` / `f64` and friends.
    Float,
    /// A data pointer. `nullable` is `true` when the type admits a NULL
    /// representation (`*const T`, `Option<&T>`), `false` for `&T` /
    /// `Box<T>` / `NonNull<T>`.
    Ptr {
        /// Whether NULL is a value of the type.
        nullable: bool,
    },
    /// An `extern "C"` function pointer.
    FnPtr,
    /// `()` (meaningful as a return type only).
    Unit,
    /// `!`.
    Never,
    /// A `#[repr(C)]`-stable ADT passed by value.
    Adt(String),
    /// Unknown / opaque: never reported against.
    Opaque,
    /// Already reported as FFI-unsafe; compatibility is not re-checked.
    Bad,
}

/// One flagged component discovered during a signature walk.
struct Unsafety {
    reason: String,
    note: Option<(Span, String)>,
}

/// A `repr`-less ADT observed crossing the boundary: declaration span plus
/// the first boundary position that reaches it.
struct ReprUse {
    decl_span: Span,
    keyword: &'static str,
    use_span: Span,
    use_desc: String,
}

struct Checker<'a> {
    program: &'a RustProgram,
    /// Findings for the position currently being walked.
    pending: Vec<Unsafety>,
    /// `repr`-less ADTs, keyed by type name (first use wins).
    missing_repr: BTreeMap<String, ReprUse>,
    diags: DiagnosticBag,
}

/// Checks the merged Rust surface against the lowered C program.
pub fn check(program: &RustProgram, c: &IrProgram) -> DiagnosticBag {
    let mut ck = Checker {
        program,
        pending: Vec::new(),
        missing_repr: BTreeMap::new(),
        diags: DiagnosticBag::new(),
    };
    for im in &program.imports {
        ck.check_import(im, c);
    }
    for ex in &program.exports {
        ck.check_export(ex, c);
    }
    for st in &program.statics {
        ck.check_static(st, c);
    }
    ck.flush_missing_repr();
    ck.diags
}

/// The C-side view of one function: its signature and where it was
/// declared.
struct CSig<'a> {
    ret: &'a CTypeExpr,
    params: Vec<&'a CTypeExpr>,
    span: Span,
}

fn c_signature<'a>(c: &'a IrProgram, link_name: &str) -> Option<CSig<'a>> {
    for f in &c.functions {
        if f.name == link_name {
            return Some(CSig {
                ret: &f.ret,
                params: f.locals[..f.n_params].iter().map(|l| &l.ty).collect(),
                span: f.span,
            });
        }
    }
    for p in &c.prototypes {
        if p.name == link_name {
            return Some(CSig { ret: &p.ret, params: p.params.iter().collect(), span: p.span });
        }
    }
    None
}

impl<'a> Checker<'a> {
    // ---- per-item entry points -----------------------------------------

    fn check_import(&mut self, im: &ForeignFn, c: &IrProgram) {
        let shapes = self.walk_signature("extern \"C\" fn", &im.name, &im.params, &im.ret, im.span);
        let Some(csig) = c_signature(c, &im.link_name) else { return };
        self.check_against_c(&im.name, "declares", im.variadic, &shapes, im.span, &csig);
        // Nullability: C may *return* NULL where the Rust import promises a
        // non-null reference.
        if let (Shape::Ptr { nullable: false }, CTypeExpr::Ptr(_)) = (&shapes.ret, csig.ret) {
            if matches!(im.ret, RustType::Ref { .. }) {
                self.diags.push(
                    Diagnostic::new(
                        DiagnosticCode::RustNullability,
                        im.span,
                        format!(
                            "extern \"C\" fn `{}` returns `{}`, which can never be NULL, \
                             but the C definition returns a plain pointer; use `Option<{}>` \
                             if NULL is a possible result",
                            im.name,
                            im.ret.display(),
                            im.ret.display()
                        ),
                    )
                    .with_note(csig.span, "C definition here".to_string()),
                );
            }
        }
    }

    fn check_export(&mut self, ex: &ExportFn, c: &IrProgram) {
        let shapes = self.walk_signature("exported fn", &ex.name, &ex.params, &ex.ret, ex.span);
        let Some(csig) = c_signature(c, &ex.link_name) else { return };
        self.check_against_c(&ex.name, "is defined with", false, &shapes, ex.span, &csig);
        // Nullability: C may *pass* NULL where the Rust export demands a
        // non-null reference.
        for (i, shape) in shapes.params.iter().enumerate() {
            let c_ty = match csig.params.get(i) {
                Some(t) => *t,
                None => continue,
            };
            if let (Shape::Ptr { nullable: false }, CTypeExpr::Ptr(_)) = (shape, c_ty) {
                if matches!(ex.params[i], RustType::Ref { .. }) {
                    self.diags.push(
                        Diagnostic::new(
                            DiagnosticCode::RustNullability,
                            ex.span,
                            format!(
                                "parameter {} of exported fn `{}` is `{}`, which C callers \
                                 may pass NULL for; use `Option<{}>` to make NULL legal",
                                i + 1,
                                ex.name,
                                ex.params[i].display(),
                                ex.params[i].display()
                            ),
                        )
                        .with_note(csig.span, "C declaration here".to_string()),
                    );
                }
            }
        }
    }

    fn check_static(&mut self, st: &ForeignStatic, c: &IrProgram) {
        let shape =
            self.position(&format!("foreign static `{}`", st.name), &st.name, &st.ty, st.span);
        let Some((_, c_ty, c_span)) = c.globals.iter().find(|(name, _, _)| *name == st.link_name)
        else {
            return;
        };
        if let Some(clash) = incompatible(&shape, c_ty) {
            self.diags.push(
                Diagnostic::new(
                    DiagnosticCode::RustTypeMismatch,
                    st.span,
                    format!(
                        "foreign static `{}` is `{}` but the C definition is `{c_ty}` ({clash})",
                        st.name,
                        st.ty.display()
                    ),
                )
                .with_note(*c_span, "C definition here".to_string()),
            );
        }
    }

    // ---- signature walking ----------------------------------------------

    fn walk_signature(
        &mut self,
        what: &str,
        name: &str,
        params: &[RustType],
        ret: &RustType,
        span: Span,
    ) -> SigShapes {
        let mut shapes = Vec::with_capacity(params.len());
        for (i, p) in params.iter().enumerate() {
            let desc = format!("parameter {} of {what} `{name}`", i + 1);
            shapes.push(self.position(&desc, name, p, span));
        }
        let ret_desc = format!("return type of {what} `{name}`");
        let ret_shape = self.position(&ret_desc, name, ret, span);
        SigShapes { params: shapes, ret: ret_shape }
    }

    /// Classifies one signature position, draining any unsafety findings
    /// into `E014` diagnostics anchored at the signature.
    fn position(&mut self, desc: &str, _name: &str, ty: &RustType, span: Span) -> Shape {
        let mut visiting = BTreeSet::new();
        let shape = self.classify(ty, span, desc, &mut visiting);
        for u in std::mem::take(&mut self.pending) {
            let mut d = Diagnostic::new(
                DiagnosticCode::RustFfiUnsafe,
                span,
                format!("{desc} is not FFI-safe: {}", u.reason),
            );
            if let Some((nspan, nmsg)) = u.note {
                d = d.with_note(nspan, nmsg);
            }
            self.diags.push(d);
        }
        shape
    }

    fn bad(&mut self, reason: String) -> Shape {
        self.pending.push(Unsafety { reason, note: None });
        Shape::Bad
    }

    fn bad_at(&mut self, reason: String, span: Span, note: String) -> Shape {
        self.pending.push(Unsafety { reason, note: Some((span, note)) });
        Shape::Bad
    }

    /// The recursive field walk. `visiting` carries the ADT names on the
    /// current path (rustc's cycle cache): a recursive `struct Node { next:
    /// *mut Node }` terminates because the second visit of `Node` answers
    /// immediately.
    fn classify(
        &mut self,
        ty: &RustType,
        use_span: Span,
        use_desc: &str,
        visiting: &mut BTreeSet<String>,
    ) -> Shape {
        match ty {
            RustType::Ptr { inner, .. } => self.pointee(inner, true, use_span, use_desc, visiting),
            RustType::Ref { inner, .. } => self.pointee(inner, false, use_span, use_desc, visiting),
            RustType::Slice(_) => {
                self.bad("a bare slice `[T]` has no C representation".to_string())
            }
            RustType::Str => self
                .bad("`str` has no C representation; use `*const c_char` and a length".to_string()),
            RustType::Array(inner, _) => {
                // Arrays are C-compatible inside structs; walk the element.
                self.classify(inner, use_span, use_desc, visiting);
                Shape::Opaque
            }
            RustType::Tuple(parts) if parts.is_empty() => Shape::Unit,
            RustType::Tuple(_) => {
                self.bad("tuples have unspecified layout; use a `#[repr(C)]` struct".to_string())
            }
            RustType::Unit => Shape::Unit,
            RustType::Never => Shape::Never,
            RustType::FnPtr { abi_c: true, params, ret } => {
                for p in params {
                    self.classify(p, use_span, use_desc, visiting);
                }
                self.classify(ret, use_span, use_desc, visiting);
                Shape::FnPtr
            }
            RustType::FnPtr { abi_c: false, .. } => self.bad(
                "`fn(..)` is a Rust-ABI function pointer; declare it `extern \"C\" fn(..)`"
                    .to_string(),
            ),
            RustType::TraitObject => self.bad("trait objects have no C representation".to_string()),
            RustType::Unknown => Shape::Opaque,
            RustType::Path { name, args, .. } => {
                self.classify_path(ty, name, args, use_span, use_desc, visiting)
            }
        }
    }

    fn classify_path(
        &mut self,
        whole: &RustType,
        name: &str,
        args: &[RustType],
        use_span: Span,
        use_desc: &str,
        visiting: &mut BTreeSet<String>,
    ) -> Shape {
        const INTS: &[&str] = &[
            "i8",
            "i16",
            "i32",
            "i64",
            "isize",
            "u8",
            "u16",
            "u32",
            "u64",
            "usize",
            "bool",
            "c_char",
            "c_schar",
            "c_uchar",
            "c_short",
            "c_ushort",
            "c_int",
            "c_uint",
            "c_long",
            "c_ulong",
            "c_longlong",
            "c_ulonglong",
            "c_size_t",
            "c_ssize_t",
            "size_t",
            "ssize_t",
            "intptr_t",
            "uintptr_t",
        ];
        const FLOATS: &[&str] = &["f32", "f64", "c_float", "c_double"];
        const OWNED_CONTAINERS: &[&str] = &[
            "String", "Vec", "VecDeque", "HashMap", "BTreeMap", "HashSet", "BTreeSet", "OsString",
            "PathBuf", "CString",
        ];
        if INTS.contains(&name) {
            return Shape::Int;
        }
        if FLOATS.contains(&name) {
            return Shape::Float;
        }
        match name {
            "char" => self.bad(
                "`char` is a 4-byte Unicode scalar with a restricted range; use `u32` or \
                 `c_char`"
                    .to_string(),
            ),
            "u128" | "i128" => self.bad(format!("`{name}` has no stable C ABI on common targets")),
            n if OWNED_CONTAINERS.contains(&n) => self.bad(format!(
                "`{}` is an owned Rust container with no C representation; pass a pointer and \
                 length instead",
                whole.display()
            )),
            "c_void" => Shape::Opaque,
            "Option" => {
                let Some(inner) = args.first() else { return Shape::Opaque };
                // Niche-guaranteed payloads — Option<&T> / Option<Box<T>> /
                // Option<NonNull<T>> / Option<extern "C" fn> — collapse to a
                // single nullable pointer.
                let niche = match inner {
                    RustType::Ref { .. } => true,
                    RustType::FnPtr { abi_c: true, .. } => true,
                    RustType::Path { name, .. } => name == "NonNull" || name == "Box",
                    _ => false,
                };
                if niche {
                    self.classify(inner, use_span, use_desc, visiting);
                    Shape::Ptr { nullable: true }
                } else {
                    self.bad(format!(
                        "`Option<{}>` has no guaranteed layout; only pointer-niche payloads \
                         (`Option<&T>`, `Option<extern \"C\" fn>`, …) are FFI-safe",
                        inner.display()
                    ))
                }
            }
            "NonNull" => {
                if let Some(inner) = args.first() {
                    self.pointee(inner, false, use_span, use_desc, visiting)
                } else {
                    Shape::Ptr { nullable: false }
                }
            }
            "Box" => {
                if let Some(inner) = args.first() {
                    self.pointee(inner, false, use_span, use_desc, visiting)
                } else {
                    Shape::Ptr { nullable: false }
                }
            }
            "ManuallyDrop" | "MaybeUninit" | "Cell" | "UnsafeCell" | "Pin" => match args.first() {
                Some(inner) => self.classify(inner, use_span, use_desc, visiting),
                None => Shape::Opaque,
            },
            "PhantomData" => Shape::Opaque,
            "CStr" | "OsStr" | "Path" => self.bad(format!(
                "`{name}` is unsized; it only exists behind a wide pointer, which has no C \
                 representation"
            )),
            _ => {
                if let Some(aliased) = self.program.aliases.get(name).cloned() {
                    return self.classify(&aliased, use_span, use_desc, visiting);
                }
                let Some(decl) = self.program.types.get(name).cloned() else {
                    return Shape::Opaque; // undeclared: treated opaquely
                };
                self.classify_adt(&decl, use_span, use_desc, visiting)
            }
        }
    }

    fn classify_adt(
        &mut self,
        decl: &TypeDecl,
        use_span: Span,
        use_desc: &str,
        visiting: &mut BTreeSet<String>,
    ) -> Shape {
        if !visiting.insert(decl.name.clone()) {
            // Already on the walk path: assume safe, exactly like rustc's
            // `cache.insert(ty)` early return.
            return Shape::Adt(decl.name.clone());
        }
        if decl.generic {
            let shape = self.bad_at(
                format!("generic {} `{}` has no single C layout", decl.kind.keyword(), decl.name),
                decl.span,
                "declared here".to_string(),
            );
            visiting.remove(&decl.name);
            return shape;
        }
        let shape = match decl.repr {
            Repr::C => {
                for f in &decl.fields {
                    self.field(decl, f, use_span, use_desc, visiting);
                }
                Shape::Adt(decl.name.clone())
            }
            Repr::Transparent => {
                // Layout of the single non-zero-sized field.
                let mut inner_shape = Shape::Opaque;
                for f in &decl.fields {
                    let s = self.field(decl, f, use_span, use_desc, visiting);
                    if !matches!(s, Shape::Opaque) {
                        inner_shape = s;
                    }
                }
                inner_shape
            }
            Repr::PrimitiveInt => {
                if decl.kind == AdtKind::Enum && !decl.has_payload {
                    Shape::Int
                } else {
                    // RFC 2195 gives data-carrying primitive-repr enums a
                    // defined layout; walk payloads, compare as an ADT.
                    for f in &decl.fields {
                        self.field(decl, f, use_span, use_desc, visiting);
                    }
                    Shape::Adt(decl.name.clone())
                }
            }
            Repr::Rust => {
                self.missing_repr.entry(decl.name.clone()).or_insert_with(|| ReprUse {
                    decl_span: decl.span,
                    keyword: decl.kind.keyword(),
                    use_span,
                    use_desc: use_desc.to_string(),
                });
                Shape::Opaque // already reported; avoid cascading E012s
            }
        };
        visiting.remove(&decl.name);
        shape
    }

    /// Classifies one ADT field, wrapping any unsafety it surfaces with a
    /// note pointing at the field declaration.
    fn field(
        &mut self,
        decl: &TypeDecl,
        f: &Field,
        use_span: Span,
        use_desc: &str,
        visiting: &mut BTreeSet<String>,
    ) -> Shape {
        let before = self.pending.len();
        let shape = self.classify(&f.ty, use_span, use_desc, visiting);
        for u in &mut self.pending[before..] {
            if u.note.is_none() {
                u.note = Some((
                    f.span,
                    format!(
                        "reached via field `{}` of {} `{}`, declared here",
                        f.name,
                        decl.kind.keyword(),
                        decl.name
                    ),
                ));
            }
        }
        shape
    }

    /// Classifies a pointee and returns the pointer shape, flagging wide
    /// pointers (slices, `str`, trait objects) whose fat layout has no C
    /// counterpart.
    fn pointee(
        &mut self,
        inner: &RustType,
        nullable: bool,
        use_span: Span,
        use_desc: &str,
        visiting: &mut BTreeSet<String>,
    ) -> Shape {
        match inner {
            RustType::Slice(_) => self.bad(
                "a pointer to a slice is a wide (pointer, length) pair with no C layout; pass \
                 the data pointer and length separately"
                    .to_string(),
            ),
            RustType::Str => self.bad(
                "`&str` is a wide (pointer, length) pair with no C layout; use `*const c_char`"
                    .to_string(),
            ),
            RustType::TraitObject => {
                self.bad("a pointer to a trait object is a wide (data, vtable) pair".to_string())
            }
            RustType::Path { name, .. } if name == "CStr" || name == "OsStr" || name == "Path" => {
                self.bad(format!(
                    "`&{name}` is a wide pointer with no C layout; use `*const c_char`"
                ))
            }
            _ => {
                // The pointee itself must still be representable (a pointer
                // to a `repr(Rust)` struct leaks its layout to C).
                self.classify(inner, use_span, use_desc, visiting);
                Shape::Ptr { nullable }
            }
        }
    }

    // ---- comparison against C -------------------------------------------

    fn check_against_c(
        &mut self,
        name: &str,
        verb: &str,
        variadic: bool,
        shapes: &SigShapes,
        span: Span,
        csig: &CSig<'_>,
    ) {
        let n_rust = shapes.params.len();
        let n_c = csig.params.len();
        let arity_ok = if variadic { n_c >= n_rust } else { n_c == n_rust };
        if !arity_ok {
            let c_desc = if variadic { format!("at least {n_rust}") } else { n_rust.to_string() };
            self.diags.push(
                Diagnostic::new(
                    DiagnosticCode::RustArityMismatch,
                    span,
                    format!(
                        "`{name}` {verb} {c_desc} parameter(s) on the Rust side but the C \
                         definition has {n_c}"
                    ),
                )
                .with_note(csig.span, "C definition here".to_string()),
            );
            return; // positional comparison is meaningless past an arity clash
        }
        for (i, (shape, c_ty)) in shapes.params.iter().zip(&csig.params).enumerate() {
            if let Some(clash) = incompatible(shape, c_ty) {
                self.diags.push(
                    Diagnostic::new(
                        DiagnosticCode::RustTypeMismatch,
                        span,
                        format!(
                            "parameter {} of `{name}` does not match the C definition: {clash}",
                            i + 1
                        ),
                    )
                    .with_note(csig.span, "C definition here".to_string()),
                );
            }
        }
        if let Some(clash) = incompatible_ret(&shapes.ret, csig.ret) {
            self.diags.push(
                Diagnostic::new(
                    DiagnosticCode::RustTypeMismatch,
                    span,
                    format!("return type of `{name}` does not match the C definition: {clash}"),
                )
                .with_note(csig.span, "C definition here".to_string()),
            );
        }
    }

    fn flush_missing_repr(&mut self) {
        for (name, u) in std::mem::take(&mut self.missing_repr) {
            self.diags.push(
                Diagnostic::new(
                    DiagnosticCode::RustMissingReprC,
                    u.decl_span,
                    format!(
                        "{} `{name}` crosses the `extern \"C\"` boundary but has no \
                         `#[repr(C)]` attribute; its layout is unspecified",
                        u.keyword
                    ),
                )
                .with_note(u.use_span, format!("reachable from {} here", u.use_desc))
                .with_note(u.decl_span, "consider adding a `#[repr(C)]` attribute".to_string()),
            );
        }
    }
}

/// Shapes of one signature, parallel to its parameter list.
struct SigShapes {
    params: Vec<Shape>,
    ret: Shape,
}

/// Confident representation clashes between a Rust parameter shape and a C
/// parameter type; `None` means compatible (or not confidently comparable).
fn incompatible(shape: &Shape, c: &CTypeExpr) -> Option<String> {
    let clash = |r: &str, c_desc: &str| Some(format!("Rust side is {r}, C side is {c_desc}"));
    match (shape, c) {
        // Opaque / already-flagged shapes and opaque C types never clash.
        (Shape::Opaque | Shape::Bad | Shape::Never, _) => None,
        (_, CTypeExpr::Named(_) | CTypeExpr::Auto) => None,
        (Shape::Int, CTypeExpr::Int | CTypeExpr::Value) => None,
        (Shape::Int, CTypeExpr::Ptr(_) | CTypeExpr::FuncPtr) => clash("an integer", "a pointer"),
        (Shape::Int, CTypeExpr::Float) => clash("an integer", "a floating type"),
        (Shape::Int, CTypeExpr::Void) => clash("an integer", "void"),
        (Shape::Float, CTypeExpr::Float) => None,
        (Shape::Float, CTypeExpr::Int | CTypeExpr::Value) => clash("a floating type", "an integer"),
        (Shape::Float, CTypeExpr::Ptr(_) | CTypeExpr::FuncPtr) => {
            clash("a floating type", "a pointer")
        }
        (Shape::Float, CTypeExpr::Void) => clash("a floating type", "void"),
        (Shape::Ptr { .. }, CTypeExpr::Ptr(_) | CTypeExpr::FuncPtr | CTypeExpr::Value) => None,
        (Shape::Ptr { .. }, CTypeExpr::Int) => clash("a pointer", "an integer"),
        (Shape::Ptr { .. }, CTypeExpr::Float) => clash("a pointer", "a floating type"),
        (Shape::Ptr { .. }, CTypeExpr::Void) => clash("a pointer", "void"),
        (Shape::FnPtr, CTypeExpr::FuncPtr | CTypeExpr::Ptr(_) | CTypeExpr::Value) => None,
        (Shape::FnPtr, CTypeExpr::Int) => clash("a function pointer", "an integer"),
        (Shape::FnPtr, CTypeExpr::Float) => clash("a function pointer", "a floating type"),
        (Shape::FnPtr, CTypeExpr::Void) => clash("a function pointer", "void"),
        (Shape::Adt(name), CTypeExpr::Int | CTypeExpr::Float | CTypeExpr::Ptr(_)) => {
            Some(format!("Rust side passes `{name}` by value, C side is `{c}`"))
        }
        (Shape::Adt(_), _) => None,
        (Shape::Unit, CTypeExpr::Void) => None,
        (Shape::Unit, _) => clash("`()`", "a non-void type"),
    }
}

/// Like [`incompatible`] but for the return position, where `void`/`()`
/// pair up and anything-vs-void is the confident clash.
fn incompatible_ret(shape: &Shape, c: &CTypeExpr) -> Option<String> {
    match (shape, c) {
        (Shape::Unit, CTypeExpr::Void) => None,
        (Shape::Unit, CTypeExpr::Named(_) | CTypeExpr::Auto) => None,
        (Shape::Unit, _) => Some(format!("Rust side returns `()`, C side returns `{c}`")),
        (Shape::Opaque | Shape::Bad | Shape::Never, _) => None,
        (s, CTypeExpr::Void) if !matches!(s, Shape::Unit) => {
            Some("Rust side returns a value, C side returns void".to_string())
        }
        _ => incompatible(shape, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use ffisafe_cil::{lower, parser as cparser};
    use ffisafe_support::SourceMap;

    fn run(rust_src: &str, c_src: &str) -> DiagnosticBag {
        let mut sm = SourceMap::new();
        let rs_file = sm.add_file("lib.rs", rust_src);
        let c_file = sm.add_file("glue.c", c_src);
        let parsed = parser::parse(rs_file, "lib.rs", rust_src);
        assert!(parsed.errors.is_empty(), "parse errors: {:?}", parsed.errors);
        let program = RustProgram::merge(std::slice::from_ref(&parsed));
        let unit = cparser::parse(c_file, c_src);
        let ir = lower::lower_unit(&unit);
        let mut bag = check(&program, &ir);
        bag.dedup();
        bag
    }

    fn codes(bag: &DiagnosticBag) -> Vec<&'static str> {
        bag.iter().map(|d| d.code().code_str()).collect()
    }

    #[test]
    fn clean_pair_is_silent() {
        let bag = run(
            r#"
            #[repr(C)]
            pub struct Pair { a: i32, b: i32 }
            extern "C" {
                fn pair_sum(p: *const Pair, n: i32) -> i32;
            }
            "#,
            r#"
            typedef struct pair pair_t;
            int pair_sum(pair_t *p, int n) { return n; }
            "#,
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }

    #[test]
    fn arity_mismatch_is_e011() {
        let bag = run(
            "extern \"C\" { fn mix(a: i32, b: i32, c: i32) -> i32; }",
            "int mix(int a, int b) { return a + b; }",
        );
        assert_eq!(codes(&bag), ["E011"]);
    }

    #[test]
    fn type_mismatch_is_e012() {
        let bag = run(
            "extern \"C\" { fn scale(x: i64) -> f64; }",
            "double scale(double x) { return x; }",
        );
        assert_eq!(codes(&bag), ["E012"]);
    }

    #[test]
    fn missing_repr_is_e013_once_per_type() {
        let bag = run(
            r#"
            pub struct Handle { fd: i32 }
            extern "C" {
                fn h_open() -> *mut Handle;
                fn h_close(h: *mut Handle) -> i32;
            }
            "#,
            "",
        );
        assert_eq!(codes(&bag), ["E013"]);
    }

    #[test]
    fn ffi_unsafe_payloads_are_e014() {
        let bag = run(
            r#"
            #[repr(C)]
            pub struct Meta { name: String }
            extern "C" {
                fn put(m: Meta);
                fn desc() -> &'static str;
            }
            "#,
            "",
        );
        assert_eq!(codes(&bag), ["E014", "E014"]);
    }

    #[test]
    fn nullability_is_w004_for_export_params() {
        let bag = run(
            r#"
            #[no_mangle]
            pub extern "C" fn consume(buf: &u8) -> i32 { 0 }
            "#,
            "int consume(char *buf);",
        );
        assert_eq!(codes(&bag), ["W004"]);
    }

    #[test]
    fn option_ref_matches_plain_pointer_silently() {
        let bag = run(
            r#"
            #[no_mangle]
            pub extern "C" fn consume(buf: Option<&u8>) -> i32 { 0 }
            "#,
            "int consume(char *buf);",
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }

    #[test]
    fn recursive_struct_terminates() {
        let bag = run(
            r#"
            #[repr(C)]
            pub struct Node { value: i32, next: *mut Node }
            extern "C" { fn visit(n: *const Node); }
            "#,
            "",
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }

    #[test]
    fn transparent_unwraps_to_inner_layout() {
        let bag = run(
            r#"
            #[repr(transparent)]
            pub struct Fd(i32);
            extern "C" { fn close_fd(fd: Fd) -> i32; }
            "#,
            "int close_fd(int fd) { return 0; }",
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }

    #[test]
    fn niche_less_option_is_flagged() {
        let bag = run(
            "extern \"C\" { fn maybe(x: Option<i32>) -> i32; }",
            "int maybe(int x) { return x; }",
        );
        assert_eq!(codes(&bag), ["E014"]);
    }

    #[test]
    fn fieldless_primitive_enum_is_an_int() {
        let bag = run(
            r#"
            #[repr(u8)]
            pub enum Mode { Read, Write }
            extern "C" { fn set_mode(m: Mode) -> i32; }
            "#,
            "int set_mode(int m) { return m; }",
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }

    #[test]
    fn foreign_static_type_checked() {
        let bag = run("extern \"C\" { static ERRNO: *mut u8; }", "int ERRNO;");
        assert_eq!(codes(&bag), ["E012"]);
    }

    #[test]
    fn variadic_import_checks_lower_bound() {
        let bag = run(
            "extern \"C\" { fn logf(fmt: *const u8, ...) -> i32; }",
            "int logf(char *fmt) { return 0; }",
        );
        assert!(bag.is_empty(), "unexpected findings: {:?}", codes(&bag));
    }
}
