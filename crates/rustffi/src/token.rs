//! Tokens of the Rust-FFI sublanguage.
//!
//! The lexer only needs to be faithful enough to recover item structure,
//! attributes and type syntax; expression bodies are skipped by brace
//! matching in the parser, so literals carry no decoded payload.

use ffisafe_support::Span;

/// A lexed Rust token.
#[derive(Clone, Debug, PartialEq)]
pub enum RsTokenKind {
    /// Identifier or keyword (including raw identifiers, `r#fn` → `fn`).
    Ident(String),
    /// Lifetime, without the leading `'` (e.g. `a` for `'a`).
    Lifetime(String),
    /// Integer/float literal text (kept verbatim; suffixes included).
    Number(String),
    /// String literal contents (escapes left verbatim; raw strings
    /// unwrapped).
    Str(String),
    /// Character or byte literal (contents verbatim).
    Char(String),
    /// Punctuation / operator, e.g. `"->"`, `"::"`, `"#"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl RsTokenKind {
    /// Whether this token is the identifier `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        matches!(self, RsTokenKind::Ident(s) if s == kw)
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, RsTokenKind::Punct(s) if *s == p)
    }

    /// Identifier text, if any.
    pub fn ident(&self) -> Option<&str> {
        match self {
            RsTokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct RsToken {
    /// Kind and payload.
    pub kind: RsTokenKind,
    /// Source span.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(RsTokenKind::Ident("extern".into()).is_ident("extern"));
        assert!(!RsTokenKind::Ident("extern".into()).is_ident("fn"));
        assert!(RsTokenKind::Punct("->").is_punct("->"));
        assert_eq!(RsTokenKind::Ident("repr".into()).ident(), Some("repr"));
        assert_eq!(RsTokenKind::Punct("#").ident(), None);
    }
}
