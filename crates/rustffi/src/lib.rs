//! Rust frontend for `ffisafe` — the third language pair behind the
//! pipeline's `Frontend` trait.
//!
//! Where the OCaml/C pair checks *runtime representation agreement* through
//! the `value` encoding, the Rust/C pair checks *layout agreement* across
//! `extern "C"`: every Rust type reachable from a boundary signature must
//! have a defined C representation, and the signature must match the C
//! definition with the same link name. The checker follows rustc's
//! `improper_ctypes` lint (`check_type_for_ffi`): `#[repr(C)]` /
//! `#[repr(transparent)]` gating, recursive field walks with cycle
//! protection, and FfiSafe/FfiUnsafe verdicts per reachable component.
//!
//! * [`parser::parse`] — parses the boundary surface of one `.rs` file
//!   (`extern "C"` blocks, `#[no_mangle] extern "C" fn` definitions, type
//!   declarations, aliases); bodies and non-boundary items are skipped;
//! * [`check::RustProgram::merge`] — merges parsed files into one corpus
//!   surface;
//! * [`check::check`] — compares that surface against the C program lowered
//!   by the C frontend, emitting `E011`–`E014` / `W004` diagnostics.
//!
//! # Examples
//!
//! ```
//! use ffisafe_rustffi::{parser, check::{self, RustProgram}};
//! use ffisafe_support::SourceMap;
//!
//! let src = r#"
//!     extern "C" {
//!         fn add(a: i32, b: i32, c: i32) -> i32;
//!     }
//! "#;
//! let mut sm = SourceMap::new();
//! let file = sm.add_file("lib.rs", src);
//! let parsed = parser::parse(file, "lib.rs", src);
//! assert_eq!(parsed.imports.len(), 1);
//!
//! let c_src = "int add(int a, int b) { return a + b; }";
//! let c_file = sm.add_file("add.c", c_src);
//! let unit = ffisafe_cil::parser::parse(c_file, c_src);
//! let ir = ffisafe_cil::lower::lower_unit(&unit);
//! let program = RustProgram::merge(&[parsed]);
//! let bag = check::check(&program, &ir);
//! assert_eq!(bag.count_errors(), 1); // E011: 3 params vs 2
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{ParsedRustFile, RustType};
pub use check::{check, RustProgram};
