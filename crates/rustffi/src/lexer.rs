//! Lexer for the Rust-FFI sublanguage.
//!
//! Handles line and (nested) block comments, raw identifiers, raw strings,
//! byte/char literals and lifetimes — enough that the item-level parser can
//! skip function bodies by brace matching without being fooled by braces
//! inside literals or comments.

use crate::token::{RsToken, RsTokenKind};
use ffisafe_support::{FileId, Span};

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "&&", "||", "<<", ">>", "<=", ">=", "==",
    "!=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "#", "+", "-", "*", "/", "%", "=", "<",
    ">", "!", "~", "&", "|", "^", "?", "@", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "$",
];

/// Lexes Rust source text into tokens (ending with `Eof`).
pub fn lex(file: FileId, src: &str) -> Vec<RsToken> {
    RsLexer { file, src: src.as_bytes(), pos: 0 }.run()
}

struct RsLexer<'a> {
    file: FileId,
    src: &'a [u8],
    pos: usize,
}

impl<'a> RsLexer<'a> {
    fn run(mut self) -> Vec<RsToken> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let lo = self.pos as u32;
            let Some(c) = self.peek() else {
                out.push(self.tok(RsTokenKind::Eof, lo));
                return out;
            };
            let kind = match c {
                b'r' | b'b' if self.is_raw_or_byte_string() => self.take_raw_or_byte_string(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let s = self.take_ident();
                    RsTokenKind::Ident(s)
                }
                b'0'..=b'9' => RsTokenKind::Number(self.take_number()),
                b'"' => RsTokenKind::Str(self.take_string()),
                b'\'' => self.take_lifetime_or_char(),
                _ => {
                    let mut matched = None;
                    for p in PUNCTS {
                        if self.src[self.pos..].starts_with(p.as_bytes()) {
                            matched = Some(*p);
                            break;
                        }
                    }
                    match matched {
                        Some(p) => {
                            self.pos += p.len();
                            RsTokenKind::Punct(p)
                        }
                        None => {
                            self.bump();
                            continue; // unknown byte: drop it
                        }
                    }
                }
            };
            out.push(self.tok(kind, lo));
        }
    }

    fn tok(&self, kind: RsTokenKind, lo: u32) -> RsToken {
        RsToken { kind, span: Span::new(self.file, lo, self.pos as u32) }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.bump(),
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.bump(),
                            (None, _) => break,
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn is_ident_byte(c: u8) -> bool {
        c.is_ascii_alphanumeric() || c == b'_'
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if Self::is_ident_byte(c) {
                self.bump();
            } else {
                break;
            }
        }
        let mut s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // `r#type` lexes as a raw identifier meaning `type`-the-name; strip
        // the sigil so the parser never confuses it with the keyword (raw
        // identifiers are never keywords).
        if s == "r" && self.peek() == Some(b'#') && self.peek_at(1).is_some_and(Self::is_ident_byte)
        {
            self.bump(); // '#'
            let raw_start = self.pos;
            while let Some(c) = self.peek() {
                if Self::is_ident_byte(c) {
                    self.bump();
                } else {
                    break;
                }
            }
            s = String::from_utf8_lossy(&self.src[raw_start..self.pos]).into_owned();
        }
        s
    }

    fn take_number(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            // Digits, radix prefixes/hex digits, `_` separators, exponent
            // signs and type suffixes all fall in this set; the parser only
            // ever looks at array-length literals, so precision is not
            // required here.
            if Self::is_ident_byte(c) || c == b'.' {
                if c == b'.' && self.peek_at(1) == Some(b'.') {
                    break; // `0..n` range: stop before `..`
                }
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_string(&mut self) -> String {
        self.bump(); // opening quote
        let start = self.pos;
        while let Some(c) = self.peek() {
            match c {
                b'"' => break,
                b'\\' => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                _ => self.bump(),
            }
        }
        let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if self.peek() == Some(b'"') {
            self.bump();
        }
        s
    }

    /// Whether the cursor sits on `r"`, `r#`-string, `b"`, `br"` or `b'`.
    fn is_raw_or_byte_string(&self) -> bool {
        match (self.peek(), self.peek_at(1)) {
            (Some(b'r'), Some(b'"')) => true,
            (Some(b'r'), Some(b'#')) => {
                // distinguish r"..."/r#"..."# from raw identifiers r#name
                let mut i = 1;
                while self.peek_at(i) == Some(b'#') {
                    i += 1;
                }
                self.peek_at(i) == Some(b'"')
            }
            (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
            (Some(b'b'), Some(b'r')) => matches!(self.peek_at(2), Some(b'"') | Some(b'#')),
            _ => false,
        }
    }

    fn take_raw_or_byte_string(&mut self) -> RsTokenKind {
        if self.peek() == Some(b'b') {
            self.bump();
        }
        if self.peek() == Some(b'\'') {
            return self.take_lifetime_or_char(); // byte literal b'x'
        }
        if self.peek() == Some(b'r') {
            self.bump();
            let mut hashes = 0usize;
            while self.peek() == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
            let start = self.pos;
            let closer: Vec<u8> =
                std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
            while self.pos < self.src.len() && !self.src[self.pos..].starts_with(&closer) {
                self.bump();
            }
            let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.pos = (self.pos + closer.len()).min(self.src.len());
            RsTokenKind::Str(s)
        } else {
            RsTokenKind::Str(self.take_string())
        }
    }

    fn take_lifetime_or_char(&mut self) -> RsTokenKind {
        self.bump(); // opening '
                     // A lifetime is `'ident` NOT followed by a closing quote ('a' is a
                     // char literal, 'a a lifetime).
        if self.peek().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
            let mut i = 0;
            while self.peek_at(i).is_some_and(Self::is_ident_byte) {
                i += 1;
            }
            if self.peek_at(i) != Some(b'\'') {
                let start = self.pos;
                self.pos += i;
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                return RsTokenKind::Lifetime(s);
            }
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            match c {
                b'\'' => break,
                b'\\' => {
                    self.bump();
                    if self.peek().is_some() {
                        self.bump();
                    }
                }
                _ => self.bump(),
            }
        }
        let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if self.peek() == Some(b'\'') {
            self.bump();
        }
        RsTokenKind::Char(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<RsTokenKind> {
        lex(FileId::from_raw(0), src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_arrow() {
        let ks = kinds("extern \"C\" fn f(x: *const u8) -> i32;");
        assert!(ks.contains(&RsTokenKind::Ident("extern".into())));
        assert!(ks.contains(&RsTokenKind::Str("C".into())));
        assert!(ks.contains(&RsTokenKind::Punct("->")));
        assert!(ks.contains(&RsTokenKind::Punct("*")));
    }

    #[test]
    fn comments_are_trivia_even_nested() {
        let ks = kinds("a /* x /* y */ z */ b // tail\nc");
        let idents: Vec<_> = ks.iter().filter_map(|k| k.ident().map(String::from)).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a str '\\n' 'x'");
        assert!(ks.contains(&RsTokenKind::Lifetime("a".into())));
        assert!(ks.contains(&RsTokenKind::Char("\\n".into())));
        assert!(ks.contains(&RsTokenKind::Char("x".into())));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ks = kinds(r###"r#"{ not a brace }"# r#type b"bytes""###);
        assert!(ks.contains(&RsTokenKind::Str("{ not a brace }".into())));
        assert!(ks.contains(&RsTokenKind::Ident("type".into())));
        assert!(ks.contains(&RsTokenKind::Str("bytes".into())));
    }

    #[test]
    fn paths_and_generics() {
        let ks = kinds("std::os::raw::c_int Option<&T>");
        assert!(ks.contains(&RsTokenKind::Punct("::")));
        assert!(ks.contains(&RsTokenKind::Punct("<")));
        assert!(ks.contains(&RsTokenKind::Punct("&")));
    }
}
