//! Item-level parser for the Rust-FFI sublanguage.
//!
//! The analysis only needs the *boundary surface* of a `.rs` file: its
//! `extern "C"` blocks, `#[no_mangle] extern "C" fn` definitions, type
//! declarations (with their `#[repr(..)]`) and `type` aliases. Function
//! bodies, expressions, `impl` blocks and macros are skipped by balanced
//! delimiter matching; `mod name { … }` is recursed into. Parsing is
//! tolerant: malformed items record an error and resynchronize at the next
//! `;` / `}` instead of aborting the file.

use crate::ast::*;
use crate::lexer;
use crate::token::{RsToken, RsTokenKind};
use ffisafe_support::{FileId, Span};

/// Parses one `.rs` source file into its boundary-relevant items.
pub fn parse(file: FileId, name: &str, src: &str) -> ParsedRustFile {
    let toks = lexer::lex(file, src);
    let mut p = Parser {
        toks,
        pos: 0,
        out: ParsedRustFile { name: name.to_string(), ..Default::default() },
    };
    p.items(true);
    p.out
}

/// Attributes gathered in front of an item.
#[derive(Default)]
struct Attrs {
    repr: Option<Repr>,
    no_mangle: bool,
    export_name: Option<String>,
    link_name: Option<String>,
}

struct Parser {
    toks: Vec<RsToken>,
    pos: usize,
    out: ParsedRustFile,
}

impl Parser {
    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> &RsTokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &RsTokenKind {
        let i = (self.pos + off).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) {
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), RsTokenKind::Eof)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes one `>` even when the lexer produced `>>` (nested generic
    /// closers), by rewriting the token in place.
    fn eat_gt(&mut self) -> bool {
        match self.peek() {
            RsTokenKind::Punct(">") => {
                self.bump();
                true
            }
            RsTokenKind::Punct(">>") => {
                self.toks[self.pos].kind = RsTokenKind::Punct(">");
                true
            }
            _ => false,
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        let s = self.peek().ident()?.to_string();
        self.bump();
        Some(s)
    }

    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.out.errors.push((span, msg.into()));
    }

    /// Skips a balanced `{ … }` / `( … )` / `[ … ]` group, cursor on the
    /// opener.
    fn skip_group(&mut self) {
        let close = match self.peek() {
            RsTokenKind::Punct("{") => "}",
            RsTokenKind::Punct("(") => ")",
            RsTokenKind::Punct("[") => "]",
            _ => return,
        };
        let open = match self.peek() {
            RsTokenKind::Punct(p) => *p,
            _ => unreachable!(),
        };
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && !self.at_eof() {
            if self.peek().is_punct(open) {
                depth += 1;
            } else if self.peek().is_punct(close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skips to (and over) the next `;` at delimiter depth 0, also stopping
    /// after a balanced top-level `{ … }` (items like `static X: T = { … };`
    /// and `fn` bodies both end an item).
    fn skip_item_rest(&mut self) {
        while !self.at_eof() {
            match self.peek() {
                RsTokenKind::Punct(";") => {
                    self.bump();
                    return;
                }
                RsTokenKind::Punct("{") => {
                    self.skip_group();
                    // a trailing `;` after the group belongs to the item
                    self.eat_punct(";");
                    return;
                }
                RsTokenKind::Punct("(") | RsTokenKind::Punct("[") => self.skip_group(),
                RsTokenKind::Punct("}") => return, // enclosing mod/block closes
                _ => self.bump(),
            }
        }
    }

    // ---- attributes -----------------------------------------------------

    /// Parses any number of leading `#[…]` attributes (and skips inner
    /// `#![…]` ones).
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.peek().is_punct("#") {
            self.bump();
            self.eat_punct("!"); // inner attribute: parsed the same, flags ignored anyway
            if !self.peek().is_punct("[") {
                return out;
            }
            self.bump();
            self.attr_body(&mut out);
            // consume to the closing `]` whatever attr_body left behind
            let mut depth = 1usize;
            while depth > 0 && !self.at_eof() {
                if self.peek().is_punct("[") {
                    depth += 1;
                } else if self.peek().is_punct("]") {
                    depth -= 1;
                }
                self.bump();
            }
        }
        out
    }

    fn attr_body(&mut self, out: &mut Attrs) {
        let Some(mut head) = self.take_ident() else { return };
        // Rust 2024 spells exporty attributes `#[unsafe(no_mangle)]`.
        if head == "unsafe" && self.peek().is_punct("(") {
            self.bump();
            match self.take_ident() {
                Some(inner) => head = inner,
                None => return,
            }
        }
        match head.as_str() {
            "no_mangle" => out.no_mangle = true,
            "export_name" | "link_name" if self.eat_punct("=") => {
                if let RsTokenKind::Str(s) = self.peek() {
                    let s = s.clone();
                    if head == "export_name" {
                        out.export_name = Some(s);
                    } else {
                        out.link_name = Some(s);
                    }
                    self.bump();
                }
            }
            "repr" => {
                if !self.peek().is_punct("(") {
                    return;
                }
                self.bump();
                let mut repr = out.repr;
                while !self.peek().is_punct(")") && !self.at_eof() {
                    if let Some(arg) = self.peek().ident().map(String::from) {
                        self.bump();
                        let int_reprs = [
                            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
                            "i128", "isize",
                        ];
                        match arg.as_str() {
                            "C" => repr = Some(Repr::C),
                            "transparent" if repr != Some(Repr::C) => {
                                repr = Some(Repr::Transparent);
                            }
                            "align" | "packed" if self.peek().is_punct("(") => {
                                self.skip_group();
                            }
                            a if int_reprs.contains(&a)
                                && (repr.is_none() || repr == Some(Repr::Rust)) =>
                            {
                                repr = Some(Repr::PrimitiveInt);
                            }
                            _ => {}
                        }
                    } else {
                        self.bump();
                    }
                    self.eat_punct(",");
                }
                out.repr = repr;
            }
            _ => {}
        }
    }

    // ---- items ----------------------------------------------------------

    /// Parses items until EOF (`top` true) or the enclosing `}`.
    fn items(&mut self, top: bool) {
        loop {
            if self.at_eof() {
                return;
            }
            if self.peek().is_punct("}") {
                if top {
                    self.bump(); // stray close at top level: drop it
                    continue;
                }
                return;
            }
            self.item();
        }
    }

    fn item(&mut self) {
        let attrs = self.attrs();
        // visibility
        if self.eat_kw("pub") && self.peek().is_punct("(") {
            self.skip_group(); // pub(crate), pub(in path)
        }
        // leading fn qualifiers; remember the ABI if an `extern` shows up
        let mut abi: Option<String> = None;
        let mut saw_unsafe = false;
        loop {
            if self.eat_kw("const") || self.eat_kw("async") {
                continue;
            }
            if self.peek().is_ident("unsafe") {
                saw_unsafe = true;
                self.bump();
                continue;
            }
            if self.peek().is_ident("extern") {
                self.bump();
                if let RsTokenKind::Str(s) = self.peek() {
                    abi = Some(s.clone());
                    self.bump();
                } else if self.eat_kw("crate") {
                    self.skip_item_rest(); // `extern crate name;`
                    return;
                } else {
                    abi = Some("C".to_string()); // bare `extern` defaults to "C"
                }
                continue;
            }
            break;
        }
        let _ = saw_unsafe;

        match self.peek().clone() {
            // `extern "C" { … }` — a foreign block
            RsTokenKind::Punct("{") if abi.is_some() => {
                let c_abi = is_c_abi(abi.as_deref());
                self.bump();
                self.foreign_block(c_abi);
            }
            RsTokenKind::Ident(kw) => match kw.as_str() {
                "fn" => self.fn_item(&attrs, abi.as_deref()),
                "struct" => self.adt_item(&attrs, AdtKind::Struct),
                "enum" => self.adt_item(&attrs, AdtKind::Enum),
                "union" => self.adt_item(&attrs, AdtKind::Union),
                "type" => self.alias_item(),
                "mod" => {
                    self.bump();
                    let _ = self.take_ident();
                    if self.peek().is_punct("{") {
                        self.bump();
                        self.items(false);
                        self.eat_punct("}");
                    } else {
                        self.eat_punct(";"); // `mod name;` — out-of-line, not our file
                    }
                }
                "impl" | "trait" | "macro_rules" | "macro" | "use" | "static" | "const" => {
                    self.bump();
                    self.skip_item_rest();
                }
                _ => {
                    // Unknown leading token: resynchronize at the next item.
                    let sp = self.span();
                    self.error(sp, format!("unexpected `{kw}` at item position"));
                    self.bump();
                    self.skip_item_rest();
                }
            },
            _ => {
                self.bump(); // stray punctuation: drop and continue
            }
        }
    }

    fn foreign_block(&mut self, c_abi: bool) {
        while !self.at_eof() && !self.peek().is_punct("}") {
            let attrs = self.attrs();
            if self.eat_kw("pub") && self.peek().is_punct("(") {
                self.skip_group();
            }
            self.eat_kw("unsafe");
            if self.eat_kw("fn") {
                let sp = self.span();
                let Some(name) = self.take_ident() else {
                    self.error(sp, "expected function name in extern block");
                    self.skip_item_rest();
                    continue;
                };
                let (params, variadic, ret) = self.fn_signature();
                self.eat_punct(";");
                if c_abi {
                    let link_name = attrs.link_name.clone().unwrap_or_else(|| name.clone());
                    self.out.imports.push(ForeignFn {
                        name,
                        link_name,
                        variadic,
                        params,
                        ret,
                        span: sp,
                    });
                }
            } else if self.eat_kw("static") {
                self.eat_kw("mut");
                let sp = self.span();
                let Some(name) = self.take_ident() else {
                    self.error(sp, "expected static name in extern block");
                    self.skip_item_rest();
                    continue;
                };
                if !self.eat_punct(":") {
                    self.skip_item_rest();
                    continue;
                }
                let ty = self.ty();
                self.eat_punct(";");
                if c_abi {
                    let link_name = attrs.link_name.clone().unwrap_or_else(|| name.clone());
                    self.out.statics.push(ForeignStatic { name, link_name, ty, span: sp });
                }
            } else if self.eat_kw("type") {
                // opaque foreign type (`extern { type Name; }`): skip
                self.skip_item_rest();
            } else {
                let sp = self.span();
                self.error(sp, "unexpected token in extern block");
                self.bump();
                self.skip_item_rest();
            }
        }
        self.eat_punct("}");
    }

    fn fn_item(&mut self, attrs: &Attrs, abi: Option<&str>) {
        self.bump(); // `fn`
        let sp = self.span();
        let Some(name) = self.take_ident() else {
            self.error(sp, "expected function name");
            self.skip_item_rest();
            return;
        };
        if self.peek().is_punct("<") {
            self.skip_generics();
        }
        let (params, _variadic, ret) = self.fn_signature();
        // `where` clause, then body (or `;` for trait-style decls)
        while !self.at_eof()
            && !self.peek().is_punct("{")
            && !self.peek().is_punct(";")
            && !self.peek().is_punct("}")
        {
            self.bump();
        }
        if self.peek().is_punct("{") {
            self.skip_group();
        } else {
            self.eat_punct(";");
        }
        let exported = attrs.no_mangle || attrs.export_name.is_some();
        if exported && is_c_abi(abi) {
            let link_name = attrs.export_name.clone().unwrap_or_else(|| name.clone());
            self.out.exports.push(ExportFn { name, link_name, params, ret, span: sp });
        }
    }

    /// Parses `( params ) [-> ret]`, cursor on `(`. Returns
    /// `(params, variadic, ret)`.
    fn fn_signature(&mut self) -> (Vec<RustType>, bool, RustType) {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.eat_punct("(") {
            while !self.at_eof() && !self.peek().is_punct(")") {
                let _ = self.attrs(); // per-parameter attributes
                if self.eat_punct("...") {
                    variadic = true;
                    self.eat_punct(",");
                    continue;
                }
                self.param_pattern();
                params.push(self.ty());
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.eat_punct(")");
        }
        let ret = if self.eat_punct("->") { self.ty() } else { RustType::Unit };
        (params, variadic, ret)
    }

    /// Consumes an (optional) `pattern :` in front of a parameter type.
    /// Foreign declarations allow bare types, so the colon may be absent.
    fn param_pattern(&mut self) {
        // `mut name:` / `name:` / `_:`
        let lookahead = if self.peek().is_ident("mut") { 1 } else { 0 };
        let is_named = matches!(self.peek_at(lookahead), RsTokenKind::Ident(_))
            && self.peek_at(lookahead + 1).is_punct(":")
            && !self.peek_at(lookahead + 1).is_punct("::");
        if is_named {
            self.pos += lookahead + 2; // pattern + `:`
        }
    }

    fn adt_item(&mut self, attrs: &Attrs, kind: AdtKind) {
        self.bump(); // keyword
        let sp = self.span();
        let Some(name) = self.take_ident() else {
            self.error(sp, "expected type name");
            self.skip_item_rest();
            return;
        };
        let mut generic = false;
        if self.peek().is_punct("<") {
            generic = !self.generics_only_lifetimes();
        }
        // `where` clause
        while !self.at_eof()
            && !self.peek().is_punct("{")
            && !self.peek().is_punct("(")
            && !self.peek().is_punct(";")
        {
            self.bump();
        }
        let repr = attrs.repr.unwrap_or(Repr::Rust);
        let mut fields = Vec::new();
        let mut has_payload = false;
        match kind {
            AdtKind::Struct | AdtKind::Union => {
                if self.peek().is_punct("{") {
                    self.bump();
                    self.named_fields(&mut fields, "");
                    self.eat_punct("}");
                } else if self.peek().is_punct("(") {
                    self.bump();
                    self.tuple_fields(&mut fields, "");
                    self.eat_punct(")");
                    self.eat_punct(";");
                } else {
                    self.eat_punct(";"); // unit struct
                }
            }
            AdtKind::Enum => {
                if self.peek().is_punct("{") {
                    self.bump();
                    while !self.at_eof() && !self.peek().is_punct("}") {
                        let _ = self.attrs();
                        let Some(variant) = self.take_ident() else {
                            self.bump();
                            continue;
                        };
                        if self.peek().is_punct("(") {
                            self.bump();
                            let before = fields.len();
                            self.tuple_fields(&mut fields, &format!("{variant}."));
                            self.eat_punct(")");
                            has_payload |= fields.len() > before;
                        } else if self.peek().is_punct("{") {
                            self.bump();
                            let before = fields.len();
                            self.named_fields(&mut fields, &format!("{variant}."));
                            self.eat_punct("}");
                            has_payload |= fields.len() > before;
                        }
                        if self.eat_punct("=") {
                            // explicit discriminant: skip to `,` / `}`
                            while !self.at_eof()
                                && !self.peek().is_punct(",")
                                && !self.peek().is_punct("}")
                            {
                                if matches!(
                                    self.peek(),
                                    RsTokenKind::Punct("(")
                                        | RsTokenKind::Punct("[")
                                        | RsTokenKind::Punct("{")
                                ) {
                                    self.skip_group();
                                } else {
                                    self.bump();
                                }
                            }
                        }
                        self.eat_punct(",");
                    }
                    self.eat_punct("}");
                } else {
                    self.eat_punct(";");
                }
            }
        }
        self.out.types.push(TypeDecl { name, repr, kind, fields, generic, has_payload, span: sp });
    }

    fn named_fields(&mut self, out: &mut Vec<Field>, prefix: &str) {
        while !self.at_eof() && !self.peek().is_punct("}") {
            let _ = self.attrs();
            if self.eat_kw("pub") && self.peek().is_punct("(") {
                self.skip_group();
            }
            let sp = self.span();
            let Some(fname) = self.take_ident() else {
                self.bump();
                continue;
            };
            if !self.eat_punct(":") {
                continue;
            }
            let ty = self.ty();
            out.push(Field { name: format!("{prefix}{fname}"), ty, span: sp });
            if !self.eat_punct(",") {
                break;
            }
        }
    }

    fn tuple_fields(&mut self, out: &mut Vec<Field>, prefix: &str) {
        let mut i = 0usize;
        while !self.at_eof() && !self.peek().is_punct(")") {
            let _ = self.attrs();
            if self.eat_kw("pub") && self.peek().is_punct("(") {
                self.skip_group();
            }
            let sp = self.span();
            let ty = self.ty();
            out.push(Field { name: format!("{prefix}{i}"), ty, span: sp });
            i += 1;
            if !self.eat_punct(",") {
                break;
            }
        }
    }

    fn alias_item(&mut self) {
        self.bump(); // `type`
        let sp = self.span();
        let Some(name) = self.take_ident() else {
            self.skip_item_rest();
            return;
        };
        if self.peek().is_punct("<") {
            self.skip_generics();
        }
        if !self.eat_punct("=") {
            self.skip_item_rest();
            return;
        }
        let ty = self.ty();
        self.eat_punct(";");
        self.out.aliases.push(TypeAlias { name, ty, span: sp });
    }

    /// Skips a `<…>` generic parameter list, cursor on `<`.
    fn skip_generics(&mut self) {
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && !self.at_eof() {
            match self.peek() {
                RsTokenKind::Punct("<") => {
                    depth += 1;
                    self.bump();
                }
                RsTokenKind::Punct(">") => {
                    depth -= 1;
                    self.bump();
                }
                RsTokenKind::Punct(">>") => {
                    depth = depth.saturating_sub(2);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// Like [`Parser::skip_generics`] but reports whether the list declared
    /// anything other than lifetimes (i.e. real type/const parameters).
    fn generics_only_lifetimes(&mut self) -> bool {
        self.bump();
        let mut depth = 1usize;
        let mut only_lifetimes = true;
        while depth > 0 && !self.at_eof() {
            match self.peek() {
                RsTokenKind::Punct("<") => depth += 1,
                RsTokenKind::Punct(">") => depth -= 1,
                RsTokenKind::Punct(">>") => depth = depth.saturating_sub(2),
                RsTokenKind::Lifetime(_) | RsTokenKind::Punct(",") => {}
                RsTokenKind::Punct(":") => {
                    // lifetime bounds `'a: 'b` — the bound side is lifetimes
                }
                _ => only_lifetimes = false,
            }
            self.bump();
        }
        only_lifetimes
    }

    // ---- types ----------------------------------------------------------

    /// Parses one type expression.
    fn ty(&mut self) -> RustType {
        match self.peek().clone() {
            RsTokenKind::Punct("*") => {
                self.bump();
                let mutable = if self.eat_kw("mut") {
                    true
                } else {
                    self.eat_kw("const");
                    false
                };
                RustType::Ptr { mutable, inner: Box::new(self.ty()) }
            }
            RsTokenKind::Punct("&") | RsTokenKind::Punct("&&") => {
                if self.peek().is_punct("&&") {
                    // split `&&T` into two references
                    self.toks[self.pos].kind = RsTokenKind::Punct("&");
                    return RustType::Ref { mutable: false, inner: Box::new(self.ty()) };
                }
                self.bump();
                if let RsTokenKind::Lifetime(_) = self.peek() {
                    self.bump();
                }
                let mutable = self.eat_kw("mut");
                RustType::Ref { mutable, inner: Box::new(self.ty()) }
            }
            RsTokenKind::Punct("[") => {
                self.bump();
                let inner = self.ty();
                if self.eat_punct(";") {
                    let mut len = String::new();
                    while !self.at_eof() && !self.peek().is_punct("]") {
                        match self.peek() {
                            RsTokenKind::Number(n) => len.push_str(n),
                            RsTokenKind::Ident(s) => len.push_str(s),
                            RsTokenKind::Punct(p) => len.push_str(p),
                            _ => {}
                        }
                        self.bump();
                    }
                    self.eat_punct("]");
                    RustType::Array(Box::new(inner), len)
                } else {
                    self.eat_punct("]");
                    RustType::Slice(Box::new(inner))
                }
            }
            RsTokenKind::Punct("(") => {
                self.bump();
                if self.eat_punct(")") {
                    return RustType::Unit;
                }
                let mut parts = vec![self.ty()];
                let mut trailing_comma = false;
                while self.eat_punct(",") {
                    if self.peek().is_punct(")") {
                        trailing_comma = true;
                        break;
                    }
                    parts.push(self.ty());
                }
                self.eat_punct(")");
                if parts.len() == 1 && !trailing_comma {
                    parts.pop().unwrap() // parenthesized type
                } else {
                    RustType::Tuple(parts)
                }
            }
            RsTokenKind::Punct("!") => {
                self.bump();
                RustType::Never
            }
            RsTokenKind::Ident(kw) if kw == "dyn" || kw == "impl" => {
                self.bump();
                self.skip_bounds();
                if kw == "dyn" {
                    RustType::TraitObject
                } else {
                    RustType::Unknown
                }
            }
            RsTokenKind::Ident(kw) if kw == "for" => {
                // HRTB: `for<'a> fn(&'a u8)`
                self.bump();
                if self.peek().is_punct("<") {
                    self.skip_generics();
                }
                self.ty()
            }
            RsTokenKind::Ident(kw) if kw == "fn" || kw == "unsafe" || kw == "extern" => {
                self.fn_ptr_ty()
            }
            RsTokenKind::Ident(kw) if kw == "str" => {
                self.bump();
                RustType::Str
            }
            RsTokenKind::Ident(kw) if kw == "_" => {
                self.bump();
                RustType::Unknown
            }
            RsTokenKind::Ident(_) => self.path_ty(),
            _ => {
                self.bump();
                RustType::Unknown
            }
        }
    }

    fn fn_ptr_ty(&mut self) -> RustType {
        self.eat_kw("unsafe");
        let mut abi_c = false;
        if self.eat_kw("extern") {
            if let RsTokenKind::Str(s) = self.peek() {
                abi_c = is_c_abi(Some(s));
                self.bump();
            } else {
                abi_c = true;
            }
        }
        if !self.eat_kw("fn") {
            return RustType::Unknown;
        }
        let mut params = Vec::new();
        if self.eat_punct("(") {
            while !self.at_eof() && !self.peek().is_punct(")") {
                if self.eat_punct("...") {
                    self.eat_punct(",");
                    continue;
                }
                self.param_pattern();
                params.push(self.ty());
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.eat_punct(")");
        }
        let ret = if self.eat_punct("->") { self.ty() } else { RustType::Unit };
        RustType::FnPtr { abi_c, params, ret: Box::new(ret) }
    }

    fn path_ty(&mut self) -> RustType {
        let mut full = String::new();
        let mut name = String::new();
        let mut args = Vec::new();
        while let Some(seg) = self.take_ident() {
            if !full.is_empty() {
                full.push_str("::");
            }
            full.push_str(&seg);
            name = seg;
            if self.peek().is_punct("<") {
                args = self.generic_args();
            }
            if self.peek().is_punct("::") {
                self.bump();
                args.clear(); // `Segment<T>::Next` — keep the final segment's args
                continue;
            }
            break;
        }
        RustType::Path { name, full, args }
    }

    /// Parses `<…>` generic arguments into types, cursor on `<`. Lifetimes
    /// and associated-type bindings are skipped.
    fn generic_args(&mut self) -> Vec<RustType> {
        self.bump(); // `<`
        let mut args = Vec::new();
        loop {
            if self.at_eof() || self.eat_gt() {
                break;
            }
            match self.peek().clone() {
                RsTokenKind::Lifetime(_) => {
                    self.bump();
                }
                RsTokenKind::Number(_) | RsTokenKind::Str(_) | RsTokenKind::Char(_) => {
                    self.bump(); // const-generic literal argument
                }
                RsTokenKind::Ident(_)
                    if self.peek_at(1).is_punct("=") && !self.peek_at(1).is_punct("==") =>
                {
                    // associated binding `Item = T`: skip name, `=`, the type
                    self.bump();
                    self.bump();
                    let _ = self.ty();
                }
                _ => args.push(self.ty()),
            }
            if !self.eat_punct(",") {
                if self.eat_gt() {
                    break;
                }
                // malformed: avoid livelock
                if !matches!(self.peek(), RsTokenKind::Lifetime(_)) && !self.at_eof() {
                    self.bump();
                }
            }
        }
        args
    }

    /// Skips trait bounds after `dyn` / `impl` (stops at any token that can
    /// end a type in context).
    fn skip_bounds(&mut self) {
        while !self.at_eof() {
            match self.peek() {
                RsTokenKind::Punct(",")
                | RsTokenKind::Punct(")")
                | RsTokenKind::Punct(";")
                | RsTokenKind::Punct("{")
                | RsTokenKind::Punct("}")
                | RsTokenKind::Punct("]")
                | RsTokenKind::Punct(">")
                | RsTokenKind::Punct(">>")
                | RsTokenKind::Punct("=") => return,
                RsTokenKind::Punct("<") => self.skip_generics(),
                RsTokenKind::Punct("(") => self.skip_group(),
                _ => self.bump(),
            }
        }
    }
}

/// Whether an ABI string names the C ABI family the checker understands.
fn is_c_abi(abi: Option<&str>) -> bool {
    matches!(abi, Some("C") | Some("C-unwind") | Some("system") | Some("cdecl"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedRustFile {
        parse(FileId::from_raw(0), "lib.rs", src)
    }

    #[test]
    fn extern_block_imports() {
        let f = parse_src(
            r#"
            extern "C" {
                pub fn gz_open(path: *const u8, mode: i32) -> *mut GzFile;
                #[link_name = "gz_close_impl"]
                fn gz_close(h: *mut GzFile) -> i32;
                static mut GZ_ERRNO: i32;
                pub fn printf(fmt: *const u8, ...) -> i32;
            }
            "#,
        );
        assert_eq!(f.imports.len(), 3);
        assert_eq!(f.imports[0].name, "gz_open");
        assert_eq!(f.imports[0].params.len(), 2);
        assert_eq!(f.imports[1].link_name, "gz_close_impl");
        assert!(f.imports[2].variadic);
        assert_eq!(f.statics.len(), 1);
        assert_eq!(f.statics[0].name, "GZ_ERRNO");
        assert!(f.errors.is_empty());
    }

    #[test]
    fn no_mangle_exports_with_bodies_skipped() {
        let f = parse_src(
            r#"
            #[no_mangle]
            pub extern "C" fn rb_len(rb: *const RingBuf) -> usize {
                let s = "not } a close";
                if true { nested(); }
                0
            }
            #[export_name = "rb_push_impl"]
            pub unsafe extern "C" fn rb_push(rb: *mut RingBuf, v: u32) {}
            pub extern "C" fn not_exported(x: i32) -> i32 { x }
            fn plain(x: u64) -> u64 { x }
            "#,
        );
        assert_eq!(f.exports.len(), 2);
        assert_eq!(f.exports[0].link_name, "rb_len");
        assert_eq!(f.exports[1].link_name, "rb_push_impl");
        assert!(f.errors.is_empty());
    }

    #[test]
    fn unsafe_extern_block_2024_style() {
        let f = parse_src(
            r#"
            unsafe extern "C" {
                pub safe fn abs(x: i32) -> i32;
            }
            #[unsafe(no_mangle)]
            pub extern "C" fn twice(x: i32) -> i32 { x * 2 }
            "#,
        );
        // `safe` is not modeled; the decl is resynchronized away but the
        // export must still parse.
        assert_eq!(f.exports.len(), 1);
        assert_eq!(f.exports[0].name, "twice");
    }

    #[test]
    fn repr_attributes_and_fields() {
        let f = parse_src(
            r#"
            #[repr(C)]
            pub struct Header { pub len: u32, data: *mut u8 }
            #[repr(transparent)]
            struct Fd(i32);
            #[repr(u8)]
            enum Mode { Read, Write = 3 }
            enum Shape { Dot, Line(f64, f64) }
            pub struct Plain { s: String }
            #[repr(C, packed(4))]
            union Overlay { word: u64, bytes: [u8; 8] }
            "#,
        );
        assert_eq!(f.types.len(), 6);
        assert_eq!(f.types[0].repr, Repr::C);
        assert_eq!(f.types[0].fields.len(), 2);
        assert_eq!(f.types[1].repr, Repr::Transparent);
        assert_eq!(f.types[2].repr, Repr::PrimitiveInt);
        assert!(!f.types[2].has_payload);
        assert_eq!(f.types[3].repr, Repr::Rust);
        assert!(f.types[3].has_payload);
        assert_eq!(f.types[3].fields[0].name, "Line.0");
        assert_eq!(f.types[4].fields[0].ty, RustType::path("String"));
        assert_eq!(f.types[5].repr, Repr::C);
        assert_eq!(f.types[5].kind, AdtKind::Union);
    }

    #[test]
    fn type_shapes() {
        let f = parse_src(
            r#"
            extern "C" {
                fn f(
                    a: Option<&u32>,
                    b: extern "C" fn(i32) -> i32,
                    c: *const *mut core::ffi::c_void,
                    d: [u8; 16],
                    e: &[u8],
                ) -> Option<extern "C" fn()>;
            }
            "#,
        );
        let p = &f.imports[0].params;
        assert_eq!(p.len(), 5);
        match &p[0] {
            RustType::Path { name, args, .. } => {
                assert_eq!(name, "Option");
                assert!(matches!(args[0], RustType::Ref { .. }));
            }
            other => panic!("expected Option path, got {other:?}"),
        }
        assert!(matches!(&p[1], RustType::FnPtr { abi_c: true, .. }));
        assert!(matches!(&p[2], RustType::Ptr { .. }));
        assert!(matches!(&p[3], RustType::Array(..)));
        assert!(matches!(&p[4], RustType::Ref { .. }));
    }

    #[test]
    fn aliases_mods_and_noise() {
        let f = parse_src(
            r#"
            use std::ffi::c_int;
            type Handle = *mut Opaque;
            mod inner {
                extern "C" { fn nested_import(x: i32); }
            }
            impl Foo { fn method(&self) {} }
            macro_rules! noisy { () => { extern "C" { fn not_real(); } } }
            static TABLE: [u8; 4] = [0; 4];
            "#,
        );
        assert_eq!(f.aliases.len(), 1);
        assert_eq!(f.aliases[0].name, "Handle");
        assert_eq!(f.imports.len(), 1);
        assert_eq!(f.imports[0].name, "nested_import");
    }

    #[test]
    fn non_c_abi_is_ignored() {
        let f = parse_src(
            r#"
            extern "Rust" { fn not_ffi(x: i32); }
            #[no_mangle]
            pub fn rust_abi_export(x: i32) -> i32 { x }
            "#,
        );
        assert!(f.imports.is_empty());
        assert!(f.exports.is_empty());
    }
}
