//! AST for the Rust-FFI sublanguage: the boundary-relevant items of a
//! `.rs` source file.
//!
//! Only three item families matter to the analysis — `extern "C"` blocks
//! (imports), `#[no_mangle] extern "C" fn` definitions (exports) and type
//! declarations — plus `type` aliases so signatures can be resolved.
//! Everything else in a file is parsed far enough to be skipped.

use ffisafe_support::Span;

/// A Rust type expression as written in a boundary signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RustType {
    /// A (possibly generic) path; only the final segment is kept for
    /// classification (`std::os::raw::c_int` → `c_int`), with the full
    /// source path retained for messages.
    Path {
        /// Final path segment (the classification key).
        name: String,
        /// Full path as written (for diagnostics).
        full: String,
        /// Generic type arguments (lifetimes dropped).
        args: Vec<RustType>,
    },
    /// `*const T` / `*mut T`.
    Ptr {
        /// `*mut` vs `*const`.
        mutable: bool,
        /// Pointee.
        inner: Box<RustType>,
    },
    /// `&T` / `&mut T` (lifetimes dropped).
    Ref {
        /// `&mut` vs `&`.
        mutable: bool,
        /// Referent.
        inner: Box<RustType>,
    },
    /// `[T]` — unsized slice (only sound behind a wide pointer).
    Slice(Box<RustType>),
    /// `[T; N]` — fixed-size array (length kept as written).
    Array(Box<RustType>, String),
    /// `str` — unsized string slice.
    Str,
    /// `(T, U, …)`; the empty tuple is [`RustType::Unit`].
    Tuple(Vec<RustType>),
    /// `()`.
    Unit,
    /// `!`.
    Never,
    /// `fn(..) -> T` / `extern "C" fn(..) -> T` pointer.
    FnPtr {
        /// Whether the pointer carries an `extern "C"` (or `extern "system"`)
        /// ABI; plain `fn(..)` is a Rust-ABI pointer and FFI-unsafe.
        abi_c: bool,
        /// Parameter types.
        params: Vec<RustType>,
        /// Return type ([`RustType::Unit`] when omitted).
        ret: Box<RustType>,
    },
    /// `dyn Trait` / `impl Trait`.
    TraitObject,
    /// Anything the parser could not classify; treated opaquely.
    Unknown,
}

impl RustType {
    /// Convenience constructor for a bare (non-generic) path type.
    pub fn path(name: &str) -> RustType {
        RustType::Path { name: name.to_string(), full: name.to_string(), args: Vec::new() }
    }

    /// Renders the type roughly as written, for messages.
    pub fn display(&self) -> String {
        match self {
            RustType::Path { full, args, .. } => {
                if args.is_empty() {
                    full.clone()
                } else {
                    let inner: Vec<String> = args.iter().map(|a| a.display()).collect();
                    format!("{full}<{}>", inner.join(", "))
                }
            }
            RustType::Ptr { mutable: true, inner } => format!("*mut {}", inner.display()),
            RustType::Ptr { mutable: false, inner } => format!("*const {}", inner.display()),
            RustType::Ref { mutable: true, inner } => format!("&mut {}", inner.display()),
            RustType::Ref { mutable: false, inner } => format!("&{}", inner.display()),
            RustType::Slice(inner) => format!("[{}]", inner.display()),
            RustType::Array(inner, n) => format!("[{}; {n}]", inner.display()),
            RustType::Str => "str".to_string(),
            RustType::Tuple(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.display()).collect();
                format!("({})", inner.join(", "))
            }
            RustType::Unit => "()".to_string(),
            RustType::Never => "!".to_string(),
            RustType::FnPtr { abi_c, .. } => {
                if *abi_c {
                    "extern \"C\" fn(..)".to_string()
                } else {
                    "fn(..)".to_string()
                }
            }
            RustType::TraitObject => "dyn Trait".to_string(),
            RustType::Unknown => "<unknown>".to_string(),
        }
    }
}

/// The `#[repr(..)]` of a type declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repr {
    /// No `repr` attribute (default Rust layout — unspecified).
    Rust,
    /// `#[repr(C)]` (possibly combined with `align`/`packed`).
    C,
    /// `#[repr(transparent)]`.
    Transparent,
    /// `#[repr(u8)]`, `#[repr(i32)]`, … — a primitive integer repr, which
    /// gives fieldless enums a stable C representation.
    PrimitiveInt,
}

/// Which ADT flavour a [`TypeDecl`] declares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdtKind {
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
}

impl AdtKind {
    /// Lowercase keyword, for messages.
    pub fn keyword(self) -> &'static str {
        match self {
            AdtKind::Struct => "struct",
            AdtKind::Enum => "enum",
            AdtKind::Union => "union",
        }
    }
}

/// One field (or enum-variant payload slot) of a type declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name (tuple fields are `"0"`, `"1"`, …; for enum payloads the
    /// variant name prefixes the slot, e.g. `"Some.0"`).
    pub name: String,
    /// Declared type.
    pub ty: RustType,
    /// Declaration span.
    pub span: Span,
}

/// A `struct`/`enum`/`union` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeDecl {
    /// Type name.
    pub name: String,
    /// Its representation attribute.
    pub repr: Repr,
    /// Struct vs enum vs union.
    pub kind: AdtKind,
    /// Fields (for enums: every variant payload slot; fieldless variants
    /// contribute nothing).
    pub fields: Vec<Field>,
    /// Whether the declaration has generic parameters (generic ADTs never
    /// have a C-stable layout to check against).
    pub generic: bool,
    /// Whether any enum variant carries a payload (data-bearing enums have
    /// no guaranteed discriminant layout even under `#[repr(int)]` alone).
    pub has_payload: bool,
    /// Span of the declaration header.
    pub span: Span,
}

/// One function declared inside an `extern "C" { … }` block (an import).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignFn {
    /// Rust-side name.
    pub name: String,
    /// Link name: `#[link_name = "…"]` override, else the Rust name.
    pub link_name: String,
    /// Whether the declaration is variadic (`...` in the parameter list);
    /// variadic arity is checked as a lower bound.
    pub variadic: bool,
    /// Parameter types.
    pub params: Vec<RustType>,
    /// Return type ([`RustType::Unit`] when omitted).
    pub ret: RustType,
    /// Span of the declaration.
    pub span: Span,
}

/// A `static` declared inside an `extern "C" { … }` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignStatic {
    /// Rust-side name.
    pub name: String,
    /// Link name: `#[link_name = "…"]` override, else the Rust name.
    pub link_name: String,
    /// Declared type.
    pub ty: RustType,
    /// Span of the declaration.
    pub span: Span,
}

/// A `#[no_mangle] extern "C" fn` definition (an export visible to C).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportFn {
    /// Rust-side name.
    pub name: String,
    /// Link name: `#[export_name = "…"]` override, else the Rust name.
    pub link_name: String,
    /// Parameter types.
    pub params: Vec<RustType>,
    /// Return type ([`RustType::Unit`] when omitted).
    pub ret: RustType,
    /// Span of the definition header.
    pub span: Span,
}

/// A `type Alias = T;` item (resolved before classification).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Aliased type.
    pub ty: RustType,
    /// Span of the item.
    pub span: Span,
}

/// Everything boundary-relevant parsed out of one `.rs` file.
#[derive(Clone, Debug, Default)]
pub struct ParsedRustFile {
    /// File name as registered with the session source map.
    pub name: String,
    /// Imported C functions (`extern "C"` blocks).
    pub imports: Vec<ForeignFn>,
    /// Imported C globals (`static` in `extern "C"` blocks).
    pub statics: Vec<ForeignStatic>,
    /// Exported Rust functions (`#[no_mangle] extern "C" fn`).
    pub exports: Vec<ExportFn>,
    /// Type declarations (all of them, whatever their repr).
    pub types: Vec<TypeDecl>,
    /// `type` aliases.
    pub aliases: Vec<TypeAlias>,
    /// Recoverable parse errors (span + message).
    pub errors: Vec<(Span, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_common_shapes() {
        let t = RustType::Ptr { mutable: false, inner: Box::new(RustType::path("u8")) };
        assert_eq!(t.display(), "*const u8");
        let opt = RustType::Path {
            name: "Option".into(),
            full: "Option".into(),
            args: vec![RustType::Ref { mutable: false, inner: Box::new(RustType::path("T")) }],
        };
        assert_eq!(opt.display(), "Option<&T>");
    }
}
